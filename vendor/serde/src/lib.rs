//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serialization framework under the `serde` name: the derive macros
//! `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//! crate) map types to and from an untyped [`Value`] tree, and the sibling
//! `serde_json` crate renders that tree as JSON text.
//!
//! Unlike real serde this is not a zero-copy visitor framework — it is a
//! straightforward value-tree design, which is all the reproduction needs:
//! experiment results and simulator state are serialized for inspection and
//! for byte-identical determinism checks, never on a hot path.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// An untyped tree of serialized data — the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and text formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, map entries).
    Map(Vec<(String, Value)>),
}

/// A deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error(msg.into()))
}

static NULL: Value = Value::Null;

impl Value {
    /// Look up a struct field by name; missing fields read as [`Value::Null`]
    /// so `Option` fields tolerate elision.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => err(format!("expected map with field `{name}`, got {other:?}")),
        }
    }

    /// View the value as a sequence.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => err(format!("expected sequence, got {other:?}")),
        }
    }

    /// View the value as map entries.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => err(format!("expected map, got {other:?}")),
        }
    }

    /// View the value as a float, accepting any numeric representation.
    /// `Null` reads as NaN: non-finite floats serialize to `null` (JSON has
    /// no NaN/Infinity literals), and the round-trip must not fail on them.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(x) => Ok(*x as f64),
            Value::UInt(x) => Ok(*x as f64),
            Value::Null => Ok(f64::NAN),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// View the value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(x) => Ok(*x),
            Value::Int(x) if *x >= 0 => Ok(*x as u64),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
            other => err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    /// View the value as a signed integer.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Int(x) => Ok(*x),
            Value::UInt(x) if *x <= i64::MAX as u64 => Ok(*x as i64),
            Value::Float(x) if x.fract() == 0.0 => Ok(*x as i64),
            other => err(format!("expected integer, got {other:?}")),
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`], reporting any shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> { Ok(v.as_i64()? as $t) }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as u64;
                if x <= i64::MAX as u64 { Value::Int(x as i64) } else { Value::UInt(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> { Ok(v.as_u64()? as $t) }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => err(format!("expected single-char string, got {other:?}")),
        }
    }
}

// ---- container impls ----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Sort for deterministic output regardless of hasher state.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq()?;
                if items.len() != $len {
                    return err(format!("expected {}-tuple, got {} items", $len, items.len()));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A:0; 1);
impl_tuple!(A:0, B:1; 2);
impl_tuple!(A:0, B:1, C:2; 3);
impl_tuple!(A:0, B:1, C:2, D:3; 4);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn non_finite_floats_survive_as_nan() {
        let v = f64::NAN.to_value();
        assert!(f64::from_value(&v).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        let back: BTreeMap<String, f64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let back: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn missing_struct_field_reads_as_null() {
        let v = Value::Map(vec![("present".into(), Value::Int(1))]);
        assert_eq!(v.field("absent").unwrap(), &Value::Null);
        assert!(v.field("present").is_ok());
    }
}
