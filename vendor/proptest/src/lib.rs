//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest surface this workspace uses: the
//! [`proptest!`] macro with `ident in strategy` bindings, range strategies
//! over numeric types, tuple strategies, and [`collection::vec`].  Each
//! property runs `PROPTEST_CASES` (default 64) deterministic cases: the RNG
//! is seeded from the property's name, so failures reproduce exactly and CI
//! runs are stable.  There is no shrinking — the failing inputs are printed
//! by the panic message instead.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic RNG driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary value.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a property name, so each property gets a stable,
    /// independent stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + (((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as u64)
    }
}

/// How many cases each property runs (`PROPTEST_CASES` env var, default 64).
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range");
                (lo + rng.range_u64(0, (hi - lo) as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// A strategy yielding one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A:0);
impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.end > size.start, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

/// Define property tests.
///
/// ```text
/// proptest! {
///     #[test]
///     fn addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __cases = $crate::cases_from_env();
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!("case {}/{}: ", $(stringify!($arg), " = {:?} ",)+),
                        __case + 1, __cases, $(&$arg),+
                    );
                    let __run = || -> () { $body };
                    if let Err(err) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!("proptest failure in `{}` with {}", stringify!($name), __inputs);
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property (maps to `assert!`; the macro wrapper prints the
/// generated inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_respect_ranges() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (0.5f64..1.5).sample(&mut rng);
            assert!((0.5..1.5).contains(&x));
            let n = (1usize..10).sample(&mut rng);
            assert!((1..10).contains(&n));
            let (a, b) = (0.0f64..1.0, 5i32..6).sample(&mut rng);
            assert!((0.0..1.0).contains(&a));
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = TestRng::new(2);
        let strat = collection::vec(0.0f64..1.0, 1..100);
        for _ in 0..200 {
            let xs = strat.sample(&mut rng);
            assert!((1..100).contains(&xs.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(xs in collection::vec(-1e3f64..1e3, 1..50), k in 1usize..5) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..5).contains(&k));
        }
    }
}
