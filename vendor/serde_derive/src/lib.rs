//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! non-generic structs (named, tuple and unit) and enums (unit, tuple and
//! struct variants) by mapping them onto the `serde::Value` tree.  The build
//! environment has no network access, so there is no `syn`/`quote`; the item
//! is parsed directly from the raw token stream, which is sufficient for the
//! shapes this workspace derives on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- item model ---------------------------------------------------------

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing ------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, got {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected item name, got {t}"),
    };
    i += 1;

    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            t => panic!("unsupported struct body for `{name}`: {t:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(&g.stream()))
            }
            t => panic!("unsupported enum body for `{name}`: {t:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, body }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` and friends.
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Consume a type starting at `toks[*i]`, stopping after the comma that
/// terminates it (or at end of stream).  Tracks `<`/`>` nesting; a `->` pair
/// (fn-pointer types) does not close an angle bracket.
fn skip_type_and_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth: i64 = 0;
    let mut prev_dash = false;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' && !prev_dash {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                *i += 1;
                return;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: &TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected field name, got {t}"),
        };
        i += 1; // field name
        i += 1; // ':'
        skip_type_and_comma(&toks, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type_and_comma(&toks, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, got {t}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip any `= discriminant` up to the separating comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- codegen ------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\"))"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = __v.as_seq()?;\n\
                 if __items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error(format!(\"expected {n} items for {name}, got {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        payload_arms.push(format!(
                            "\"{vn}\" => {{\n\
                             let __items = __payload.as_seq()?;\n\
                             if __items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error(format!(\"expected {n} items for {name}::{vn}, got {{}}\", __items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__payload.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let mut arms = Vec::new();
            if !unit_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n{},\n\
                     __other => ::std::result::Result::Err(::serde::Error(format!(\"unknown variant `{{}}` of {name}\", __other)))\n}}",
                    unit_arms.join(",\n")
                ));
            }
            if !payload_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __payload) = &__entries[0];\n\
                     match __tag.as_str() {{\n{},\n\
                     __other => ::std::result::Result::Err(::serde::Error(format!(\"unknown variant `{{}}` of {name}\", __other)))\n}}\n}}",
                    payload_arms.join(",\n")
                ));
            }
            arms.push(format!(
                "__other => ::std::result::Result::Err(::serde::Error(format!(\"unexpected value for {name}: {{:?}}\", __other)))"
            ));
            format!("match __v {{ {} }}", arms.join(",\n"))
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
