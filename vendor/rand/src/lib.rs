//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, fully deterministic implementation of the slice of the `rand`
//! API the simulator uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] sampling methods (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator the real `StdRng` wraps, but statistically strong and, crucially
//! for the reproduction, *stable*: the byte stream for a given seed is part of
//! the repo's determinism contract and must never change silently.

#![warn(missing_docs)]

/// Concrete RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic RNG with the same role as `rand::rngs::StdRng`.
    ///
    /// Internally xoshiro256++ (Blackman & Vigna). Construct it with
    /// [`crate::SeedableRng::seed_from_u64`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG whose entire output stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types that [`Rng::gen`] can produce uniformly at random.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src()
    }
}

impl Standard for u32 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src() & 1 == 1
    }
}

/// Types usable as the bound of [`Rng::gen_range`].
pub trait UniformSample: Sized + PartialOrd + Copy {
    /// Draw a value uniformly from `[lo, hi)`.
    fn sample_range(src: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

impl UniformSample for f64 {
    fn sample_range(src: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        let u = f64::from_u64_source(src);
        lo + (hi - lo) * u
    }
}

impl UniformSample for u64 {
    fn sample_range(src: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        let span = hi - lo;
        assert!(span > 0, "gen_range requires a non-empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // irrelevant for simulation workloads.
        lo + (((src() as u128 * span as u128) >> 64) as u64)
    }
}

impl UniformSample for usize {
    fn sample_range(src: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        u64::sample_range(src, lo as u64, hi as u64) as usize
    }
}

impl UniformSample for u32 {
    fn sample_range(src: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        u64::sample_range(src, lo as u64, hi as u64) as u32
    }
}

impl UniformSample for i64 {
    fn sample_range(src: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        let span = (hi - lo) as u64;
        assert!(span > 0, "gen_range requires a non-empty range");
        lo.wrapping_add(u64::sample_range(src, 0, span) as i64)
    }
}

impl UniformSample for i32 {
    fn sample_range(src: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        i64::sample_range(src, lo as i64, hi as i64) as i32
    }
}

/// Random sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniformly distributed value of type `T` (for `f64`: in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        let mut src = || self.next_u64();
        T::from_u64_source(&mut src)
    }

    /// Uniformly distributed value in the half-open `range`.
    fn gen_range<T: UniformSample>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        let mut src = || self.next_u64();
        T::sample_range(&mut src, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
        }
    }
}
