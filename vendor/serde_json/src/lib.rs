//! JSON text layer for the vendored `serde` stand-in.
//!
//! Renders `serde::Value` trees as JSON and parses JSON back into them,
//! exposing the familiar `to_string` / `to_string_pretty` / `from_str`
//! entry points the workspace uses.  Non-finite floats serialize as `null`
//! (JSON has no NaN/Infinity literals), matching real `serde_json`.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` straight to a `serde::Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Rebuild a `Deserialize` type from a `serde::Value` tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

// ---- writer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's shortest round-trippable formatting.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, '[', ']', items.len(), indent, level, |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Map(entries) => {
            write_compound(out, '{', '}', entries.len(), indent, level, |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, level + 1)
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.seq(),
            b'{' => self.map(),
            _ => self.number(),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                c => return Err(Error(format!("expected `,` or `]`, got `{}`", c as char))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                c => return Err(Error(format!("expected `,` or `}}`, got `{}`", c as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        c => return Err(Error(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Recover the full UTF-8 character starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("bad UTF-8".into()))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut saw_fraction = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    saw_fraction = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if !saw_fraction && text != "-0" {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::Int(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        let s = to_string(&3.25f64).unwrap();
        assert_eq!(s, "3.25");
        assert_eq!(from_str::<f64>(&s).unwrap(), 3.25);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn maps_and_seqs_round_trip() {
        let mut m: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        m.insert("cdf".to_string(), vec![(0.0, 0.0), (1.5, 1.0)]);
        let s = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<(f64, f64)>> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let mut m: BTreeMap<String, f64> = BTreeMap::new();
        m.insert("x".to_string(), 1.0);
        let s = to_string_pretty(&m).unwrap();
        assert!(s.contains("\n  \"x\""));
        let back: BTreeMap<String, f64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn float_text_round_trips_exactly() {
        for &x in &[1.0f64 / 3.0, 6.02e23, -0.0, 1e-300, 48e6] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "λ \"quoted\" \t µ=96Mbit/s";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(from_str::<String>("\"\\u00b5\"").unwrap(), "µ");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<BTreeMap<String, f64>>("{\"a\" 1}").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
    }
}
