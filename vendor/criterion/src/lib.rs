//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_custom`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop: each benchmark is warmed up once, then timed over
//! `sample_size` samples, and the median/min/max per-iteration times are
//! printed.  No statistics engine, no plotting, no baseline storage; the
//! numbers are for the repo's BENCH_*.json perf-trajectory entries.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration and top-level entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self._parent.sample_size);
        run_bench(&full, samples, &mut f);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the measurement loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f` repeatedly, recording per-sample wall-clock durations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: aim for samples of at least ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        let n = self.samples.capacity();
        for _ in 0..n {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Like `iter`, but the closure reports its own duration for `iters`
    /// iterations (used to replay cached one-shot measurements).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.iters_per_sample = 1;
        let n = self.samples.capacity();
        for _ in 0..n {
            self.samples.push(f(1));
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:50} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{name:50} median {:>12} (min {:>12}, max {:>12}, {} samples)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a benchmark group: either `criterion_group!(name, fn1, fn2)` or the
/// long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(10) * (iters as u32))
        });
        g.finish();
    }

    criterion_group!(smoke, quick_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
