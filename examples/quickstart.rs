//! Quickstart: run Nimbus against inelastic cross traffic on an emulated
//! bottleneck and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nimbus_repro::netsim::{FlowConfig, Network, SimConfig, Time};
use nimbus_repro::nimbus::NimbusConfig;
use nimbus_repro::sim::nimbus_flow;
use nimbus_repro::transport::{CcKind, PathInfo, PoissonSource, Sender, SenderConfig};

fn main() {
    // A 48 Mbit/s bottleneck with 50 ms propagation RTT and 100 ms of buffering.
    let mu = 48e6;
    let mut net = Network::new(SimConfig::new(mu, 0.1, 60.0));

    // The monitored flow: Nimbus (Cubic + BasicDelay), told the link rate.
    let nimbus = net.add_flow(
        FlowConfig::primary("nimbus", Time::from_millis(50)),
        Box::new(nimbus_flow(NimbusConfig::default_for_link(mu), "nimbus")),
    );

    // Cross traffic: 24 Mbit/s of Poisson (inelastic) packet arrivals.
    net.add_flow(
        FlowConfig::cross("poisson", Time::from_millis(50), false),
        Box::new(Sender::new(
            SenderConfig::labelled("poisson"),
            CcKind::Unlimited.build(&PathInfo::new(1500)),
            Box::new(PoissonSource::new(24e6, 1500, 7)),
        )),
    );

    net.run();
    let (recorder, _endpoints) = net.finish();
    let slot = recorder.monitored_slot(nimbus.0).unwrap();
    let tput = recorder.throughput_mbps[slot].mean_in_range(10.0, 60.0);
    let delay = recorder.queue_delay_ms[slot].mean_in_range(10.0, 60.0);
    println!("Nimbus vs 24 Mbit/s inelastic cross traffic on a 48 Mbit/s link:");
    println!("  mean throughput : {tput:6.1} Mbit/s (fair share is 24 Mbit/s)");
    println!("  mean queue delay: {delay:6.1} ms (Cubic would sit near 100 ms)");
}
