//! Use the elasticity detector as a stand-alone measurement tool: probe a
//! bottleneck shared with unknown cross traffic and report η over time.
//!
//! The paper suggests exactly this use ("a measurement and diagnostic tool to
//! detect the nature of cross traffic", §1).
//!
//! ```text
//! cargo run --release --example elasticity_probe -- [elastic|inelastic]
//! ```

use nimbus_repro::experiments::runner::nimbus_of;
use nimbus_repro::netsim::{FlowConfig, Network, SimConfig, Time};
use nimbus_repro::nimbus::NimbusConfig;
use nimbus_repro::sim::nimbus_flow;
use nimbus_repro::transport::{
    BackloggedSource, CcKind, PathInfo, PoissonSource, Sender, SenderConfig,
};

fn main() {
    let kind = std::env::args().nth(1).unwrap_or_else(|| "elastic".into());
    let mu = 96e6;
    let mut net = Network::new(SimConfig::new(mu, 0.1, 40.0));
    let probe = net.add_flow(
        FlowConfig::primary("probe", Time::from_millis(50)),
        Box::new(nimbus_flow(NimbusConfig::default_for_link(mu), "probe")),
    );
    match kind.as_str() {
        "inelastic" => {
            net.add_flow(
                FlowConfig::cross("poisson", Time::from_millis(50), false),
                Box::new(Sender::new(
                    SenderConfig::labelled("poisson"),
                    CcKind::Unlimited.build(&PathInfo::new(1500)),
                    Box::new(PoissonSource::new(48e6, 1500, 3)),
                )),
            );
        }
        _ => {
            net.add_flow(
                FlowConfig::cross("cubic", Time::from_millis(50), true),
                Box::new(Sender::new(
                    SenderConfig::labelled("cubic"),
                    CcKind::Cubic.build(&PathInfo::new(1500)),
                    Box::new(BackloggedSource),
                )),
            );
        }
    }
    net.run();
    let (_recorder, endpoints) = net.finish();
    let controller = nimbus_of(endpoints[probe.0].as_ref()).expect("probe is a Nimbus flow");
    println!("cross traffic: {kind}");
    println!("  t(s)    eta   verdict");
    for v in controller.detector().verdicts().iter().step_by(200) {
        println!(
            "  {:5.1}  {:6.2}  {}",
            v.t_s,
            v.eta.min(99.0),
            if v.elastic { "elastic" } else { "inelastic" }
        );
    }
    let frac = controller.detector().elastic_fraction(6.0, 40.0);
    println!("fraction of verdicts judging the traffic elastic: {frac:.2}");
}
