//! Reproduce the Fig. 1 scenario end to end: Nimbus switches to
//! TCP-competitive mode while a Cubic flow shares the link, then back to
//! delay mode when only inelastic traffic remains.
//!
//! ```text
//! cargo run --release --example mode_switching
//! ```

use nimbus_repro::experiments::figures::fig1_cross_traffic;
use nimbus_repro::experiments::runner::{run_scheme_vs_cross, ScenarioSpec};
use nimbus_repro::experiments::SchemeSpec;

fn main() {
    // Quarter-scale Fig. 1: 45 s total, elastic phase 7.5–22.5 s, inelastic
    // phase 22.5–37.5 s.
    let scale = 0.25;
    let spec = ScenarioSpec {
        duration_s: 180.0 * scale,
        seed: 7,
        ..ScenarioSpec::fig1_48mbps(180.0 * scale)
    };
    let cross = fig1_cross_traffic(scale, 24e6, 11);
    let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 2.0);
    let m = &out.flows[0];
    println!("Nimbus on the Fig. 1 scenario (quarter scale):");
    println!("  mean throughput : {:.1} Mbit/s", m.mean_throughput_mbps);
    println!("  mean queue delay: {:.1} ms", m.mean_queue_delay_ms);
    println!(
        "  time in delay mode: {:.0}%",
        m.delay_mode_fraction * 100.0
    );
    println!("  mode switches:");
    for (t, mode) in &m.mode_log {
        println!("    {t:6.1} s -> {mode}");
    }
}
