//! Multiple Nimbus flows sharing one bottleneck: the pulser/watcher protocol
//! (§6 of the paper) keeps exactly one flow pulsing while all of them share
//! the link fairly and keep delays low.
//!
//! ```text
//! cargo run --release --example multiflow_fairness
//! ```

use nimbus_repro::experiments::runner::ScenarioSpec;
use nimbus_repro::experiments::runner::{nimbus_of, run_and_collect};
use nimbus_repro::experiments::SchemeSpec;
use nimbus_repro::netsim::{FlowConfig, Time};
use nimbus_repro::nimbus::MultiflowConfig;
use nimbus_repro::sim::nimbus_flow;

fn main() {
    let spec = ScenarioSpec {
        duration_s: 60.0,
        seed: 16,
        ..ScenarioSpec::default_96mbps(60.0)
    };
    let mut net = spec.build_network();
    let mut handles = Vec::new();
    for i in 0..3usize {
        let cfg = SchemeSpec::nimbus()
            .nimbus_config(spec.link_rate_bps, 40 + i as u64)
            .unwrap()
            .with_multiflow(MultiflowConfig::enabled());
        let h = net.add_flow(
            FlowConfig::primary(&format!("nimbus-{i}"), Time::from_millis(50))
                .starting_at(Time::from_secs_f64(i as f64 * 10.0)),
            Box::new(nimbus_flow(cfg, &format!("nimbus-{i}"))),
        );
        handles.push((h, SchemeSpec::nimbus()));
    }
    let out = run_and_collect(net, &handles, 35.0);
    println!("three Nimbus flows (staggered arrivals) on a 96 Mbit/s link:");
    for (i, m) in out.flows.iter().enumerate() {
        println!(
            "  flow {i}: {:.1} Mbit/s, mean RTT {:.1} ms, delay-mode fraction {:.2}",
            m.mean_throughput_mbps, m.mean_rtt_ms, m.delay_mode_fraction
        );
    }
    let _ = nimbus_of; // see elasticity_probe.rs for role introspection
}
