//! Embedding `nimbus-core` in a host with no simulator anywhere.
//!
//! This is the worked example for the README's "Embedding Nimbus" section:
//! a mock host event loop drives [`NimbusController`] purely through the
//! [`CongestionControl`] callbacks — the same four entry points a real
//! transport stack would call — and observes the algorithm through the
//! [`Publisher`] telemetry hook.  Nothing here imports `nimbus_netsim` or
//! `nimbus_transport`; the "network" is forty lines of arithmetic.
//!
//! The host owns everything the paper's §4.2 user-space agent owns:
//!
//! * the clock (a 10 ms tick loop),
//! * pacing (it reads [`CongestionControl::pacing_rate_bps`] and "sends"
//!   at that rate, which already carries the §4 pulses),
//! * measurement (it synthesizes the CCP-style [`Report`]s a packet-level
//!   host would build with [`nimbus_core::ReportAggregator`]).
//!
//! The mock link runs three phases of cross traffic: an inelastic 12 Mbit/s
//! CBR, then an elastic (ACK-clocked, bandwidth-hungry) competitor, then the
//! CBR again.  Watch the mode transitions: Nimbus pulses, reads the echo in
//! ẑ, switches to TCP-competitive mode while the elastic flow is present,
//! and — one full FFT window after the competitor leaves (§4.1 hysteresis) —
//! returns to delay-control mode.
//!
//! Run with: `cargo run --example embed_core`

use std::collections::VecDeque;

use nimbus_core::cc::{AckEvent, CongestionControl};
use nimbus_core::ccp::Report;
use nimbus_core::{Mode, NimbusConfig, NimbusController, Publisher};
use nimbus_core_types::{format_rate_bps, Time};

/// Bottleneck rate µ.  The paper's baseline assumes the sender knows it (a
/// provisioned access link); hosts that don't would set
/// `cfg.mu = MuEstimatorConfig::learned()` and let the estimator track it.
const MU: f64 = 48e6;
/// Host tick — the CCP report interval (§4.2 uses 10 ms).
const TICK_S: f64 = 0.01;
/// Propagation RTT of the mock path.
const BASE_RTT_S: f64 = 0.05;
const MSS: u32 = 1500;

/// Telemetry observer: prints every mode transition as it happens and the
/// current µ̂/ẑ estimates once per second, straight from the controller's
/// callbacks.
struct Stdout {
    last_mu_print_s: f64,
}

impl Publisher for Stdout {
    fn on_mode_change(&mut self, now_s: f64, mode: Mode) {
        println!("t={now_s:6.2}s  mode -> {mode:?}");
    }

    fn on_estimate(&mut self, now_s: f64, mu_bps: f64, z_bps: f64) {
        if now_s - self.last_mu_print_s >= 1.0 {
            self.last_mu_print_s = now_s;
            println!(
                "t={now_s:6.2}s  mu_hat = {:>8}  z_hat = {:>8}",
                format_rate_bps(mu_bps),
                format_rate_bps(z_bps)
            );
        }
    }
}

/// The mock bottleneck: one FIFO queue shared with scripted cross traffic.
struct MockLink {
    /// Queue backlog in bits.
    backlog_bits: f64,
    /// Recent send rates, for the elastic competitor's one-RTT-lagged view.
    send_history: VecDeque<f64>,
}

impl MockLink {
    fn new() -> Self {
        MockLink {
            backlog_bits: 0.0,
            send_history: VecDeque::new(),
        }
    }

    /// Cross-traffic rate for this tick.  The elastic phase models an
    /// ACK-clocked competitor: it grabs whatever the Nimbus flow left unused
    /// one RTT ago, so the §4 rate pulses echo back in ẑ — exactly the
    /// signature the detector listens for.  The CBR phases ignore us.
    fn cross_rate_bps(&self, t_s: f64) -> f64 {
        let elastic = (12.0..24.0).contains(&t_s);
        if elastic {
            let lag_ticks = (BASE_RTT_S / TICK_S) as usize;
            let n = self.send_history.len();
            let lagged_send = if n > lag_ticks {
                self.send_history[n - 1 - lag_ticks]
            } else {
                0.0
            };
            (0.95 * MU - lagged_send).clamp(0.0, MU)
        } else {
            12e6
        }
    }

    /// Pass one tick of traffic through the bottleneck.  Returns the Nimbus
    /// flow's receive rate and the current queueing-inclusive RTT.
    fn transfer(&mut self, t_s: f64, send_bps: f64) -> (f64, f64) {
        self.send_history.push_back(send_bps);
        if self.send_history.len() > 1000 {
            self.send_history.pop_front();
        }
        let total = send_bps + self.cross_rate_bps(t_s);
        // FIFO: while a backlog stands (or the offered load exceeds µ) the
        // queue serves at µ and each flow's share of the output is its share
        // of the input (Eq. 2's regime); only a truly idle queue passes the
        // send rate through untouched.
        let served = if self.backlog_bits > 0.0 || total > MU {
            MU.min(total + self.backlog_bits / TICK_S)
        } else {
            total
        };
        let recv = if total > 0.0 {
            served * send_bps / total
        } else {
            0.0
        };
        self.backlog_bits = (self.backlog_bits + (total - served) * TICK_S).max(0.0);
        // Cap the standing queue at 200 ms — a real buffer would tail-drop.
        self.backlog_bits = self.backlog_bits.min(0.2 * MU);
        let rtt = BASE_RTT_S + self.backlog_bits / MU;
        (recv, rtt)
    }
}

fn main() {
    let mut cfg = NimbusConfig::default_for_link(MU);
    cfg.mss = MSS;
    let mut ctl = NimbusController::new(cfg);
    ctl.set_publisher(Box::new(Stdout {
        last_mu_print_s: 0.0,
    }));

    let mut link = MockLink::new();
    let mut min_rtt_s = BASE_RTT_S;
    let mut t_s = 0.0;
    println!("phases: 0-12s CBR cross traffic, 12-24s elastic competitor, 24-36s CBR again");
    while t_s < 36.0 {
        t_s += TICK_S;
        let now = Time::from_secs_f64(t_s);

        // 1. Pace at the controller's rate (the §4 pulses are baked in).
        let send_bps = ctl
            .pacing_rate_bps(now)
            .expect("nimbus is rate-based and always paces");

        // 2. The network happens.
        let (recv_bps, rtt_s) = link.transfer(t_s, send_bps);
        min_rtt_s = min_rtt_s.min(rtt_s);

        // 3. Deliver this tick's ACKs.  A packet-level host would call this
        //    once per ACK and let `ReportAggregator` build the report; at
        //    10 ms granularity one aggregate ACK per tick is equivalent.
        let acked_bytes = (recv_bps * TICK_S / 8.0) as u64;
        ctl.on_packet_acked(&AckEvent {
            now,
            newly_acked_packets: acked_bytes / MSS as u64,
            newly_acked_bytes: acked_bytes,
            rtt: Time::from_secs_f64(rtt_s),
            min_rtt: Time::from_secs_f64(min_rtt_s),
            in_flight_packets: ctl.cwnd_packets() as u64,
            mss: MSS,
        });

        // 4. Deliver the CCP measurement report the estimator/detector eat.
        ctl.on_report(&Report {
            now_s: t_s,
            send_rate_bps: send_bps,
            recv_rate_bps: recv_bps,
            acked_bytes,
            lost_packets: 0,
            rtt_s,
            min_rtt_s,
            window_acks: (acked_bytes / MSS as u64) as usize,
            marked_packets: 0,
            marked_bytes: 0,
        });
    }

    println!("\nmode log (t_s, mode):");
    for (t, mode) in ctl.mode_log() {
        println!("  {t:6.2}s  {mode:?}");
    }
    let competitive = ctl.mode_log().iter().any(|&(_, m)| m == Mode::Competitive);
    assert!(
        competitive,
        "the elastic phase should have driven the controller into competitive mode"
    );
}
