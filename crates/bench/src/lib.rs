//! # nimbus-bench
//!
//! Criterion benchmark harness for the Nimbus reproduction.
//!
//! Two families of benchmarks live under `benches/`:
//!
//! * `micro.rs` — micro-benchmarks of the hot building blocks: the FFT plan,
//!   the elasticity metric, the cross-traffic estimator and the raw simulator
//!   event loop.
//! * `figures.rs` — one benchmark group per paper table/figure, each running
//!   the corresponding experiment from `nimbus-experiments` in its quick
//!   (scaled-down) configuration, so `cargo bench` regenerates the shape of
//!   every result in the evaluation.
//!
//! This library crate only hosts shared helpers for those benches.

#![warn(missing_docs)]

use nimbus_experiments::ExperimentResult;

/// Run a named experiment in quick mode and panic if it is unknown — the
/// benches use this so a typo fails loudly rather than silently measuring
/// nothing.
pub fn run_quick(name: &str) -> ExperimentResult {
    nimbus_experiments::run_experiment(name, true)
        .unwrap_or_else(|| panic!("unknown experiment {name}"))
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn unknown_experiment_panics() {
        let _ = super::run_quick("not-an-experiment");
    }
}
