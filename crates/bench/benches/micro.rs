//! Micro-benchmarks of the hot building blocks: the FFT, the elasticity
//! metric, the cross-traffic estimator and the raw simulator event loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nimbus_core::{CrossTrafficEstimator, ElasticityConfig, ElasticityDetector};
use nimbus_dsp::{fft_real, Fft, PulseGenerator, Spectrum};
use nimbus_netsim::{FlowConfig, Network, SimConfig, Time};
use nimbus_transport::{BackloggedSource, CcKind, Sender, SenderConfig};

fn bench_fft(c: &mut Criterion) {
    let signal: Vec<f64> = (0..500)
        .map(|i| (i as f64 * 0.31).sin() + 0.2 * (i as f64 * 1.7).cos())
        .collect();
    c.bench_function("fft_500_point_bluestein", |b| {
        b.iter(|| fft_real(black_box(&signal)))
    });
    let plan = Fft::new(500);
    c.bench_function("fft_500_point_planned", |b| {
        b.iter(|| plan.forward_real(black_box(&signal)))
    });
    c.bench_function("spectrum_with_dc_removal", |b| {
        b.iter(|| Spectrum::of_signal(black_box(&signal), 100.0, true))
    });
}

fn bench_detector(c: &mut Criterion) {
    let cfg = ElasticityConfig::default();
    let det = ElasticityDetector::new(cfg.clone());
    let gen = PulseGenerator::asymmetric(5.0, 24e6);
    let z: Vec<f64> = (0..cfg.window_samples())
        .map(|i| 48e6 - 0.3 * gen.offset_at(i as f64 * 0.01 - 0.05))
        .collect();
    c.bench_function("elasticity_metric_eta", |b| {
        b.iter(|| det.eta(black_box(&z)))
    });
    let est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
    c.bench_function("cross_traffic_estimate", |b| {
        b.iter(|| est.estimate(black_box(40e6), black_box(60e6)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulate_cubic_10s_48mbps", |b| {
        b.iter(|| {
            let mut net = Network::new(SimConfig::new(48e6, 0.1, 10.0));
            net.add_flow(
                FlowConfig::primary("cubic", Time::from_millis(50)),
                Box::new(Sender::new(
                    SenderConfig::labelled("cubic"),
                    CcKind::Cubic.build(1500),
                    Box::new(BackloggedSource),
                )),
            );
            net.run();
            black_box(net.events_processed())
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_fft, bench_detector, bench_simulator
}
criterion_main!(micro);
