//! Micro-benchmarks of the hot building blocks: the FFT, the elasticity
//! metric, the cross-traffic estimator, the event queue and the raw
//! simulator event loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nimbus_core::{CrossTrafficEstimator, ElasticityConfig, ElasticityDetector};
use nimbus_dsp::{fft_real, Fft, PulseGenerator, Spectrum};
use nimbus_netsim::{CalendarQueue, FlowConfig, Network, SimConfig, Time};
use nimbus_transport::{BackloggedSource, CcKind, PathInfo, Sender, SenderConfig};

fn bench_fft(c: &mut Criterion) {
    let signal: Vec<f64> = (0..500)
        .map(|i| (i as f64 * 0.31).sin() + 0.2 * (i as f64 * 1.7).cos())
        .collect();
    c.bench_function("fft_500_point_bluestein", |b| {
        b.iter(|| fft_real(black_box(&signal)))
    });
    let plan = Fft::new(500);
    c.bench_function("fft_500_point_planned", |b| {
        b.iter(|| plan.forward_real(black_box(&signal)))
    });
    c.bench_function("spectrum_with_dc_removal", |b| {
        b.iter(|| Spectrum::of_signal(black_box(&signal), 100.0, true))
    });
}

fn bench_detector(c: &mut Criterion) {
    let cfg = ElasticityConfig::default();
    let det = ElasticityDetector::new(cfg.clone());
    let gen = PulseGenerator::asymmetric(5.0, 24e6);
    let z: Vec<f64> = (0..cfg.window_samples())
        .map(|i| 48e6 - 0.3 * gen.offset_at(i as f64 * 0.01 - 0.05))
        .collect();
    c.bench_function("elasticity_metric_eta", |b| {
        b.iter(|| det.eta(black_box(&z)))
    });
    let est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
    c.bench_function("cross_traffic_estimate", |b| {
        b.iter(|| est.estimate(black_box(40e6), black_box(60e6)))
    });
}

fn bench_eventq(c: &mut Criterion) {
    // The engine's push pattern: events land a serialization-or-RTT ahead of
    // `now` (tens of µs to tens of ms), so pushes stay inside the wheel
    // horizon and pops advance monotonically.  The LCG is the same cheap
    // mixer the queue's own unit tests use; jitter snaps to a grid so
    // same-timestamp ties occur.
    let schedule: Vec<(u64, u64)> = {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        (0..4096)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let jitter = (x >> 33) % 40_000_000; // 0..40 ms
                (jitter / 7 * 7, x)
            })
            .collect()
    };
    c.bench_function("eventq_push_pop_4096", |b| {
        b.iter(|| {
            let mut q: CalendarQueue<u64> = CalendarQueue::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for &(jitter, payload) in &schedule {
                seq += 1;
                q.push(Time(now + jitter), seq, payload);
                // Interleave: pop every other push, like the run loop.
                if seq.is_multiple_of(2) {
                    let (at, _, p) = q.pop().expect("queue non-empty");
                    now = at.0;
                    black_box(p);
                }
            }
            while let Some((_, _, p)) = q.pop() {
                black_box(p);
            }
        })
    });
    // Reschedule pattern: a timer is "moved" by pushing a replacement and
    // letting the stale entry pop through (generation-tag skip), so one
    // logical reschedule costs two pushes and two pops.
    c.bench_function("eventq_reschedule_4096", |b| {
        b.iter(|| {
            let mut q: CalendarQueue<u64> = CalendarQueue::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for &(jitter, payload) in &schedule {
                seq += 1;
                q.push(Time(now + jitter), seq, payload);
                seq += 1;
                q.push(Time(now + jitter + 700_000), seq, payload ^ 1);
                let (at, _, p) = q.pop().expect("queue non-empty");
                now = at.0;
                black_box(p);
            }
            while let Some((_, _, p)) = q.pop() {
                black_box(p);
            }
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulate_cubic_10s_48mbps", |b| {
        b.iter(|| {
            let mut net = Network::new(SimConfig::new(48e6, 0.1, 10.0));
            net.add_flow(
                FlowConfig::primary("cubic", Time::from_millis(50)),
                Box::new(Sender::new(
                    SenderConfig::labelled("cubic"),
                    CcKind::Cubic.build(&PathInfo::new(1500)),
                    Box::new(BackloggedSource),
                )),
            );
            net.run();
            black_box(net.events_processed())
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_fft, bench_detector, bench_eventq, bench_simulator
}
criterion_main!(micro);
