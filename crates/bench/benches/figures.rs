//! Benchmarks that regenerate (scaled-down versions of) the paper's figures.
//!
//! Each benchmark runs the corresponding experiment from `nimbus-experiments`
//! in its quick configuration and reports how long regeneration takes, so
//! `cargo bench` doubles as a smoke-test that the evaluation still runs end
//! to end.  The full-size figures are regenerated with the
//! `nimbus-experiments` binary (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use nimbus_bench::run_quick;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// The cheaper experiments are benchmarked through Criterion directly.
fn bench_quick_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);
    {
        let name = "fig07";
        group.bench_function(name, |b| b.iter(|| run_quick(name)));
    }
    group.finish();
}

/// Cache of one-shot regeneration times: each heavy experiment is executed
/// exactly once per `cargo bench` invocation and its wall time is replayed
/// for Criterion's remaining samples.
fn regen_duration(name: &str) -> Duration {
    static CACHE: Mutex<Option<HashMap<String, Duration>>> = Mutex::new(None);
    let mut guard = CACHE.lock().unwrap();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(d) = map.get(name) {
        return *d;
    }
    let start = std::time::Instant::now();
    let result = run_quick(name);
    assert!(!result.rows.is_empty(), "{name} produced no rows");
    let elapsed = start.elapsed();
    map.insert(name.to_string(), elapsed);
    elapsed
}

/// The remaining figures are regenerated once each so the whole evaluation is
/// exercised by `cargo bench` without multiplying multi-minute simulations by
/// Criterion's sample count.
fn bench_figure_regeneration(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_regen_once");
    group.sample_size(10);
    for name in ["fig04", "fig05", "fig14", "fig23"] {
        group.bench_function(name, |b| {
            b.iter_custom(|iters| regen_duration(name) * (iters as u32))
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default();
    targets = bench_quick_figures, bench_figure_regeneration
}
criterion_main!(figures);
