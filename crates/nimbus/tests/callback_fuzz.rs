//! Adversarial host-callback fuzzing for the Nimbus controller.
//!
//! `nimbus-core` is now embeddable: any host — not just the in-repo
//! simulator — may drive [`NimbusController`] through the
//! [`CongestionControl`] callbacks.  A real host delivers ACKs out of order,
//! compresses them into bursts, reports zero-byte cumulative-ACK advances,
//! measures nonsense RTTs during clock steps, and sends loss/timeout events
//! at the worst possible moments.  The simulator never does any of that, so
//! this harness generates the abuse synthetically:
//!
//! * every µ strategy × ẑ-filter combination (3 × 3 = 9 combos), plus the
//!   bare DCTCP controller (the CCA most exposed to CE abuse);
//! * ≥ 256 randomized callback sequences per combo, mixing reordered and
//!   timestamp-compressed ACKs, zero-byte ACKs, zero/near-zero RTTs,
//!   zero-rate and extreme-rate reports, loss storms and RTO events, CE-echo
//!   storms, CE on zero-byte ACKs, and CE back-to-back with RTOs;
//! * after **every** callback the controller must report a finite, positive
//!   cwnd and a finite, positive pacing rate (when one is given);
//! * after every sequence the mode log must respect the §4.1 asymmetric
//!   hysteresis: a Competitive→Delay switch may happen no earlier than
//!   `fft_duration_s` after the preceding Delay→Competitive switch (the
//!   detector holds competitive mode for at least one full FFT window after
//!   the last elastic verdict).
//!
//! Everything is seeded — a failure reproduces by rerunning the test.

use nimbus_core::cc::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use nimbus_core::ccp::Report;
use nimbus_core::{
    LearnedMuConfig, Mode, MuEstimatorConfig, NimbusConfig, NimbusController, ProbingConfig,
    ZFilterConfig,
};
use nimbus_core_types::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEQUENCES_PER_COMBO: usize = 256;
const EVENTS_PER_SEQUENCE: usize = 120;
const MU: f64 = 48e6;

fn mu_configs() -> Vec<(&'static str, MuEstimatorConfig)> {
    vec![
        ("configured", MuEstimatorConfig::Configured { mu_bps: MU }),
        ("learned", MuEstimatorConfig::learned()),
        (
            "probing",
            MuEstimatorConfig::Learned(LearnedMuConfig::Probing(ProbingConfig::default())),
        ),
    ]
}

fn z_filters() -> Vec<(&'static str, ZFilterConfig)> {
    vec![
        ("raw", ZFilterConfig::None),
        ("notch", ZFilterConfig::notch(0.1)),
        ("adaptive", ZFilterConfig::adaptive()),
    ]
}

/// One adversarial callback, with the wall-clock it claims to occur at.
#[derive(Debug)]
enum Event {
    Ack(AckEvent),
    Loss(LossEvent),
    Rto(Time),
    /// A receiver-echoed CE mark (`CongestionEvent::EcnCe`).
    EcnCe(Time, u64),
    Report(Report),
}

/// Push `ticks` coherent 10 ms CCP reports in which ẑ = µ·S/R − S traces a
/// sinusoid of amplitude `z_amp_frac·µ` at `freq_hz` — the frequency the
/// detector listens at.  With amplitude well above the 1%-of-µ minimum peak
/// this reads as elastic cross traffic; with zero amplitude, inelastic.
fn push_coherent_reports(
    events: &mut Vec<Event>,
    now_s: &mut f64,
    ticks: usize,
    freq_hz: f64,
    z_amp_frac: f64,
) {
    for _ in 0..ticks {
        *now_s += 0.01;
        let send = MU * 0.5;
        let z = MU * 0.25 + MU * z_amp_frac * (2.0 * std::f64::consts::PI * freq_hz * *now_s).sin();
        let recv = MU * send / (send + z);
        events.push(Event::Report(Report {
            now_s: *now_s,
            send_rate_bps: send,
            recv_rate_bps: recv,
            acked_bytes: 12_000,
            lost_packets: 0,
            rtt_s: 0.05,
            min_rtt_s: 0.05,
            window_acks: 40,
            marked_packets: 0,
            marked_bytes: 0,
        }));
    }
}

/// Generate one randomized sequence.  Report time advances (sometimes by
/// zero — compressed ticks); ACK timestamps jitter around it, including
/// *backwards* (reordering).  Magnitudes span zero, sane, and absurd.
///
/// Half the sequences open with a coherent elastic warmup (ẑ oscillating at
/// the pulse frequency) so the chaos attacks a controller that has actually
/// switched to competitive mode, and half of *those* close with a quiet
/// inelastic tail long enough to force the Competitive→Delay edge through
/// the §4.1 hysteresis — without these phases the mode log stays empty and
/// the hysteresis assertion is vacuous.
fn generate_sequence(rng: &mut StdRng, pulse_freq_hz: f64) -> Vec<Event> {
    let mut events = Vec::with_capacity(EVENTS_PER_SEQUENCE);
    let mut now_s: f64 = 0.0;
    let warmup = rng.gen_bool(0.5);
    if warmup {
        // One full FFT window (500 samples) plus slack to cross the verdict.
        let ticks = rng.gen_range(520usize..650);
        push_coherent_reports(&mut events, &mut now_s, ticks, pulse_freq_hz, 0.2);
    }
    for _ in 0..EVENTS_PER_SEQUENCE {
        // Mostly 10 ms CCP ticks, sometimes compressed to nothing,
        // sometimes a multi-second stall.
        now_s += match rng.gen_range(0u32..10) {
            0 => 0.0,
            1..=7 => 0.01,
            8 => rng.gen::<f64>() * 0.1,
            _ => rng.gen::<f64>() * 3.0,
        };
        let kind = rng.gen_range(0u32..12);
        match kind {
            // ACKs (the most frequent callback in any host).
            0..=3 => {
                // Reordered: the claimed arrival may lag the report clock.
                let ack_now = (now_s - rng.gen::<f64>() * 0.2).max(0.0);
                // Zero-RTT-adjacent: clock steps make hosts measure 0.
                let rtt_s = match rng.gen_range(0u32..5) {
                    0 => 0.0,
                    1 => 1e-9,
                    _ => 0.01 + rng.gen::<f64>() * 0.2,
                };
                let newly_acked_packets = rng.gen_range(0u64..4);
                events.push(Event::Ack(AckEvent {
                    now: Time::from_secs_f64(ack_now),
                    newly_acked_packets,
                    // Zero-byte ACKs: pure-SACK or window-update segments.
                    newly_acked_bytes: newly_acked_packets * rng.gen_range(0u64..1501),
                    rtt: Time::from_secs_f64(rtt_s),
                    min_rtt: Time::from_secs_f64(rtt_s.min(0.05)),
                    in_flight_packets: rng.gen_range(0u64..10_000),
                    mss: 1500,
                }));
                // CE on a zero-byte ACK: a pure window update whose echo
                // still carries the mark bit.
                if newly_acked_packets == 0 && rng.gen_bool(0.5) {
                    events.push(Event::EcnCe(Time::from_secs_f64(now_s), 0));
                }
            }
            4 => {
                events.push(Event::Loss(LossEvent {
                    now: Time::from_secs_f64(now_s),
                    // Loss storms: a whole flight gone in one callback.
                    lost_packets: rng.gen_range(0u64..2_000),
                    in_flight_packets: rng.gen_range(0u64..10_000),
                }));
            }
            5 => {
                events.push(Event::Rto(Time::from_secs_f64(now_s)));
                // CE interleaved with the timeout: marks that were in
                // flight when the RTO fired arrive right after it.
                if rng.gen_bool(0.5) {
                    events.push(Event::EcnCe(Time::from_secs_f64(now_s), 1500));
                }
            }
            6 => {
                // CE storm: a whole flight's worth of marked ACK echoes
                // compressed into one burst, with degenerate byte counts.
                for _ in 0..rng.gen_range(1usize..200) {
                    let marked_bytes = match rng.gen_range(0u32..4) {
                        0 => 0,
                        1 => rng.gen_range(0u64..10),
                        _ => 1500,
                    };
                    events.push(Event::EcnCe(Time::from_secs_f64(now_s), marked_bytes));
                }
            }
            // Reports: the estimator/detector path.
            _ => {
                let scale = match rng.gen_range(0u32..6) {
                    0 => 0.0,                    // dead interval
                    1 => 1e-6,                   // near-zero rates
                    2 => 1e4,                    // 1000× the link rate
                    _ => rng.gen::<f64>() * 2.0, // sane-ish
                };
                let send = MU * scale * rng.gen::<f64>();
                let recv = MU * scale * rng.gen::<f64>();
                let rtt_s = match rng.gen_range(0u32..5) {
                    0 => 0.0,
                    _ => 0.01 + rng.gen::<f64>() * 0.3,
                };
                events.push(Event::Report(Report {
                    now_s,
                    send_rate_bps: send,
                    recv_rate_bps: recv,
                    acked_bytes: rng.gen_range(0u64..100_000),
                    lost_packets: if rng.gen_bool(0.2) {
                        rng.gen_range(0u64..100)
                    } else {
                        0
                    },
                    rtt_s,
                    min_rtt_s: rtt_s.min(0.05),
                    window_acks: rng.gen_range(0usize..200),
                    // Sometimes-marked reports drive the mark-rate
                    // cross-validation path under the same chaos.
                    marked_packets: if rng.gen_bool(0.3) {
                        rng.gen_range(0u64..50)
                    } else {
                        0
                    },
                    marked_bytes: rng.gen_range(0u64..75_000),
                }));
            }
        }
    }
    if warmup && rng.gen_bool(0.5) {
        // Quiet tail: > one FFT window of inelastic reports, so a controller
        // still in competitive mode must take the hysteresis-gated exit.
        let ticks = rng.gen_range(520usize..600);
        push_coherent_reports(&mut events, &mut now_s, ticks, pulse_freq_hz, 0.0);
    }
    events
}

/// The invariant checked after every single callback.
fn assert_sane(ctl: &dyn CongestionControl, now: Time, combo: &str, seq: usize, step: usize) {
    let cwnd = ctl.cwnd_packets();
    assert!(
        cwnd.is_finite() && cwnd > 0.0,
        "[{combo} seq {seq} step {step}] cwnd {cwnd} is not finite-positive"
    );
    if let Some(rate) = ctl.pacing_rate_bps(now) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "[{combo} seq {seq} step {step}] pacing rate {rate} is not finite-positive"
        );
    }
}

/// §4.1 asymmetric hysteresis over the mode log: Competitive→Delay no
/// earlier than `fft_duration_s` after the preceding Delay→Competitive.
fn assert_hysteresis(ctl: &NimbusController, fft_duration_s: f64, combo: &str, seq: usize) {
    let log = ctl.mode_log();
    for pair in log.windows(2) {
        let ((t_enter, mode_enter), (t_exit, mode_exit)) = (pair[0], pair[1]);
        if mode_enter == Mode::Competitive && mode_exit == Mode::Delay {
            assert!(
                t_exit - t_enter >= fft_duration_s - 1e-9,
                "[{combo} seq {seq}] mode flap: entered competitive at {t_enter:.3}s, \
                 back to delay at {t_exit:.3}s — under the {fft_duration_s}s hysteresis window"
            );
        }
    }
}

/// Fuzz every sequence of one (µ strategy, ẑ filter) combo; returns how many
/// sequences actually exercised a mode switch, so the caller can assert the
/// hysteresis check is not vacuous.
fn fuzz_combo(mu_label: &str, mu: &MuEstimatorConfig, z_label: &str, zf: &ZFilterConfig) -> usize {
    let combo = format!("mu={mu_label},zfilter={z_label}");
    let mut switched = 0;
    for seq in 0..SEQUENCES_PER_COMBO {
        // A distinct, reproducible stream per (combo, sequence).
        let seed = (mu_label.len() as u64) << 32 ^ (z_label.len() as u64) << 16 ^ seq as u64;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut cfg = NimbusConfig::default_for_link(MU);
        cfg.mu = *mu;
        cfg.z_filter = *zf;
        cfg.seed = seq as u64 + 1;
        let fft_duration_s = cfg.elasticity.fft_duration_s;
        let pulse_freq_hz = cfg.elasticity.pulse_freq_hz;
        let mut ctl = NimbusController::new(cfg);
        let mut last_now = Time::ZERO;
        for (step, event) in generate_sequence(&mut rng, pulse_freq_hz)
            .into_iter()
            .enumerate()
        {
            match event {
                Event::Ack(ack) => {
                    last_now = last_now.max(ack.now);
                    ctl.on_packet_acked(&ack);
                }
                Event::Loss(loss) => {
                    last_now = last_now.max(loss.now);
                    ctl.on_packets_lost(&loss);
                }
                Event::Rto(now) => {
                    last_now = last_now.max(now);
                    ctl.on_congestion_event(&CongestionEvent::Rto { now });
                }
                Event::EcnCe(now, marked_bytes) => {
                    last_now = last_now.max(now);
                    ctl.on_congestion_event(&CongestionEvent::EcnCe { now, marked_bytes });
                }
                Event::Report(report) => {
                    last_now = last_now.max(Time::from_secs_f64(report.now_s));
                    ctl.on_report(&report);
                }
            }
            assert_sane(&ctl, last_now, &combo, seq, step);
        }
        assert_hysteresis(&ctl, fft_duration_s, &combo, seq);
        if ctl.mode_log().len() > 1 {
            switched += 1;
        }
    }
    switched
}

// One test per µ strategy so the nine combos run on three threads and a
// failure names its strategy in the test name, not just the panic message.

#[test]
fn fuzz_callbacks_configured_mu() {
    let (label, mu) = &mu_configs()[0];
    let mut switched = 0;
    for (z_label, zf) in &z_filters() {
        switched += fuzz_combo(label, mu, z_label, zf);
    }
    // The warmup phase must actually drive mode switches somewhere in this
    // strategy's combos, or the hysteresis assertion above checked nothing.
    assert!(switched > 0, "mu={label}: no sequence ever switched mode");
}

#[test]
fn fuzz_callbacks_learned_mu() {
    let (label, mu) = &mu_configs()[1];
    let mut switched = 0;
    for (z_label, zf) in &z_filters() {
        switched += fuzz_combo(label, mu, z_label, zf);
    }
    // The warmup phase must actually drive mode switches somewhere in this
    // strategy's combos, or the hysteresis assertion above checked nothing.
    assert!(switched > 0, "mu={label}: no sequence ever switched mode");
}

#[test]
fn fuzz_callbacks_probing_mu() {
    let (label, mu) = &mu_configs()[2];
    let mut switched = 0;
    for (z_label, zf) in &z_filters() {
        switched += fuzz_combo(label, mu, z_label, zf);
    }
    // The warmup phase must actually drive mode switches somewhere in this
    // strategy's combos, or the hysteresis assertion above checked nothing.
    assert!(switched > 0, "mu={label}: no sequence ever switched mode");
}

#[test]
fn fuzz_callbacks_dctcp() {
    use nimbus_core::cc::dctcp::Dctcp;
    for seq in 0..SEQUENCES_PER_COMBO {
        let mut rng = StdRng::seed_from_u64((seq as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut cc = Dctcp::new();
        let mut last_now = Time::ZERO;
        for (step, event) in generate_sequence(&mut rng, 5.0).into_iter().enumerate() {
            match event {
                Event::Ack(ack) => {
                    last_now = last_now.max(ack.now);
                    cc.on_packet_acked(&ack);
                }
                Event::Loss(loss) => {
                    last_now = last_now.max(loss.now);
                    cc.on_packets_lost(&loss);
                }
                Event::Rto(now) => {
                    last_now = last_now.max(now);
                    cc.on_congestion_event(&CongestionEvent::Rto { now });
                }
                Event::EcnCe(now, marked_bytes) => {
                    last_now = last_now.max(now);
                    cc.on_congestion_event(&CongestionEvent::EcnCe { now, marked_bytes });
                }
                Event::Report(report) => {
                    last_now = last_now.max(Time::from_secs_f64(report.now_s));
                    cc.on_report(&report);
                }
            }
            assert_sane(&cc, last_now, "dctcp", seq, step);
            let alpha = cc.alpha();
            assert!(
                (0.0..=1.0).contains(&alpha),
                "[dctcp seq {seq} step {step}] alpha {alpha} left [0, 1]"
            );
        }
    }
}
