//! Property tests for the elasticity detector: across random pulse
//! frequencies, a ẑ series that oscillates *at* the pulse frequency (cross
//! traffic reacting to the pulses) must be classified elastic, and white
//! noise (non-reacting cross traffic) must not.

use nimbus_core::{ElasticityConfig, ElasticityDetector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn config_with_pulse(f_p: f64) -> ElasticityConfig {
    ElasticityConfig {
        pulse_freq_hz: f_p,
        ..ElasticityConfig::default()
    }
}

/// ẑ = base + A·sin(2π f t + φ) + noise, sampled at the detector's rate for
/// one full window.
fn sinusoid_plus_noise(
    cfg: &ElasticityConfig,
    freq_hz: f64,
    amplitude: f64,
    phase: f64,
    noise_amp: f64,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cfg.window_samples())
        .map(|i| {
            let t = i as f64 * cfg.sample_interval_s;
            let osc = amplitude * (2.0 * std::f64::consts::PI * freq_hz * t + phase).sin();
            let noise = noise_amp * (rng.gen::<f64>() - 0.5) * 2.0;
            (48e6 + osc + noise).max(0.0)
        })
        .collect()
}

proptest! {
    #[test]
    fn pure_sinusoid_at_fp_is_elastic_for_any_pulse_frequency(
        f_p in 1.5f64..10.0,
        phase in 0.0f64..std::f64::consts::TAU,
        seed in 0u64..1_000_000,
    ) {
        let cfg = config_with_pulse(f_p);
        let mut det = ElasticityDetector::new(cfg.clone());
        // 8 Mbit/s oscillation against 2 Mbit/s of noise.
        let z = sinusoid_plus_noise(&cfg, f_p, 8e6, phase, 2e6, seed);
        let v = det.evaluate(5.0, &z).expect("full window");
        prop_assert!(v.elastic, "f_p={f_p} phase={phase} seed={seed}: eta={}", v.eta);
    }

    #[test]
    fn white_noise_is_inelastic_for_any_pulse_frequency(
        f_p in 1.5f64..10.0,
        seed in 0u64..1_000_000,
    ) {
        let cfg = config_with_pulse(f_p);
        let mut det = ElasticityDetector::new(cfg.clone());
        // Noise only: no component at f_p beyond chance.
        let z = sinusoid_plus_noise(&cfg, f_p, 0.0, 0.0, 6e6, seed);
        let v = det.evaluate(5.0, &z).expect("full window");
        prop_assert!(!v.elastic, "f_p={f_p} seed={seed}: eta={}", v.eta);
    }

    #[test]
    fn oscillation_away_from_fp_is_not_mistaken_for_elasticity(
        f_p in 2.0f64..5.0,
        offset_factor in 1.3f64..1.9,
        seed in 0u64..1_000_000,
    ) {
        // A strong oscillation inside the comparison band (f_p, 2 f_p) —
        // e.g. another flow's unrelated periodicity — must push η *down*,
        // not trigger detection.
        let cfg = config_with_pulse(f_p);
        let mut det = ElasticityDetector::new(cfg.clone());
        let z = sinusoid_plus_noise(&cfg, f_p * offset_factor, 8e6, 0.0, 2e6, seed);
        let v = det.evaluate(5.0, &z).expect("full window");
        prop_assert!(!v.elastic, "f_p={f_p} offset={offset_factor} seed={seed}: eta={}", v.eta);
    }
}
