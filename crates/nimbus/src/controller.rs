//! The Nimbus mode-switching congestion controller (§4 of the paper).
//!
//! Nimbus layers four pieces on top of the generic sender machinery:
//!
//! * an inner **TCP-competitive** controller (Cubic or NewReno), used when
//!   elastic cross traffic is present;
//! * an inner **delay-controlling** controller ([`BasicDelay`], Vegas or the
//!   Copa default mode), used when it is not;
//! * the **cross-traffic estimator** and **elasticity detector** that decide
//!   which of the two should be driving;
//! * the **pulse modulation** applied to whatever rate the active inner
//!   controller wants, so the detector has something to measure.
//!
//! Mode switching details from §4.1 that matter for fidelity:
//!
//! * The elasticity verdict is re-evaluated continuously from the FFT over
//!   the last 5 seconds of ẑ samples, and the mode follows the verdict.
//! * When switching into TCP-competitive mode, the competitive controller is
//!   (re)initialized to the rate the flow was sending **5 seconds ago** —
//!   the elastic competitor has spent the detection delay stealing bandwidth
//!   from the delay-mode rate, so resuming from the current rate would
//!   concede it.
//! * In competitive mode the pulse frequency is `f_pc` (5 Hz); in delay mode
//!   it is `f_pd` (6 Hz), so watcher flows can follow the pulser's mode (§6).

use crate::basic_delay::{BasicDelay, BasicDelayConfig};
use crate::cc::{AckEvent, CcKind, CongestionControl, CongestionEvent, LossEvent, PathInfo};
use crate::ccp::Report;
use crate::detector::{DetectorVerdict, ElasticityConfig, ElasticityDetector};
use crate::estimator::{CrossTrafficEstimator, MuEstimatorConfig, ZFilterConfig};
use crate::multiflow::{Multiflow, MultiflowConfig, Role};
use nimbus_core_types::Time;
use nimbus_dsp::Biquad;
use nimbus_dsp::PulseGenerator;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which algorithm fills the TCP-competitive role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpScheme {
    /// TCP Cubic (the paper's default).
    Cubic,
    /// TCP NewReno.
    NewReno,
    /// DCTCP: scalable ECN reaction for L4S-style marking queues.
    Dctcp,
}

/// Which algorithm fills the delay-controlling role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayScheme {
    /// The paper's BasicDelay rule (Eq. 4).
    BasicDelay,
    /// TCP Vegas.
    Vegas,
    /// Copa's default mode.
    CopaDefault,
}

/// Nimbus's operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Delay-controlling mode (no elastic cross traffic detected).
    Delay,
    /// TCP-competitive mode (elastic cross traffic detected).
    Competitive,
}

/// Nimbus configuration.
#[derive(Debug, Clone)]
pub struct NimbusConfig {
    /// Where the bottleneck rate µ comes from: configured up front, or one
    /// of the pluggable learned-µ strategies of §4.2 and beyond (see
    /// [`crate::estimator`] for the strategy catalogue).
    pub mu: MuEstimatorConfig,
    /// ẑ conditioning between the estimator and the detector (none, a notch
    /// at the link-variation frequency, or µ-uncertainty-scaled thresholds).
    pub z_filter: ZFilterConfig,
    /// Maximum segment size of the flow, bytes.
    pub mss: u32,
    /// Pulse amplitude as a fraction of µ (0.25 by default).
    pub pulse_amplitude_fraction: f64,
    /// Elasticity-detector settings (pulse frequency, FFT duration, threshold).
    pub elasticity: ElasticityConfig,
    /// Pulse frequency used while in delay mode, Hz (`f_pd`, 6 Hz).
    pub pulse_freq_delay_hz: f64,
    /// TCP-competitive inner scheme.
    pub tcp_scheme: TcpScheme,
    /// Delay-controlling inner scheme.
    pub delay_scheme: DelayScheme,
    /// BasicDelay parameters (used when `delay_scheme` is BasicDelay).
    pub basic_delay: BasicDelayConfig,
    /// Multi-flow (pulser/watcher) coordination.
    pub multiflow: MultiflowConfig,
    /// Seed for the controller's randomized decisions.
    pub seed: u64,
    /// Cross-validate the elasticity verdict against the ECN mark rate: a
    /// persistent mark fraction plus a non-trivial ẑ flips the controller to
    /// competitive mode without waiting for a full FFT window.  Inert on
    /// paths that never mark (the EWMA stays exactly zero).
    pub ecn_mark_validation: bool,
}

impl NimbusConfig {
    /// The paper's default configuration for a known link rate: Cubic +
    /// BasicDelay, 0.25·µ pulses at 5/6 Hz, 5-second FFT, η threshold 2.
    pub fn default_for_link(mu_bps: f64) -> Self {
        NimbusConfig {
            mu: MuEstimatorConfig::Configured { mu_bps },
            z_filter: ZFilterConfig::None,
            mss: 1500,
            pulse_amplitude_fraction: 0.25,
            elasticity: ElasticityConfig::default(),
            pulse_freq_delay_hz: 6.0,
            tcp_scheme: TcpScheme::Cubic,
            delay_scheme: DelayScheme::BasicDelay,
            basic_delay: BasicDelayConfig::paper_defaults(mu_bps),
            multiflow: MultiflowConfig::default(),
            seed: 1,
            ecn_mark_validation: true,
        }
    }

    /// Use a different TCP-competitive scheme.
    pub fn with_tcp_scheme(mut self, scheme: TcpScheme) -> Self {
        self.tcp_scheme = scheme;
        self
    }

    /// Use a different delay-controlling scheme.
    pub fn with_delay_scheme(mut self, scheme: DelayScheme) -> Self {
        self.delay_scheme = scheme;
        self
    }

    /// Enable pulser/watcher coordination (for multiple Nimbus flows).
    pub fn with_multiflow(mut self, multiflow: MultiflowConfig) -> Self {
        self.multiflow = multiflow;
        self
    }

    /// Change the pulse amplitude fraction.
    pub fn with_pulse_amplitude(mut self, fraction: f64) -> Self {
        self.pulse_amplitude_fraction = fraction;
        self
    }

    /// Change the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable ECN mark-rate cross-validation (on by default; a
    /// no-op on paths that never mark).
    pub fn with_ecn_mark_validation(mut self, on: bool) -> Self {
        self.ecn_mark_validation = on;
        self
    }

    /// Learn µ at runtime from the max receive rate (§4.2) instead of
    /// trusting a configured link rate.  BasicDelay keeps the paper defaults
    /// derived from the nominal rate; the estimator and pulse amplitude
    /// follow the learned value.
    pub fn with_learned_mu(self) -> Self {
        self.with_mu_estimator(MuEstimatorConfig::learned())
    }

    /// Select an arbitrary µ-estimation strategy (see [`crate::estimator`]).
    pub fn with_mu_estimator(mut self, mu: MuEstimatorConfig) -> Self {
        self.mu = mu;
        self
    }

    /// Install a ẑ-conditioning stage between the estimator and the detector.
    pub fn with_z_filter(mut self, z_filter: ZFilterConfig) -> Self {
        self.z_filter = z_filter;
        self
    }

    /// Disable mode switching: the controller stays in delay mode forever
    /// (the paper's "Nimbus delay" baseline) by setting an unreachable
    /// elasticity threshold.
    pub fn without_switching(mut self) -> Self {
        self.elasticity.eta_threshold = f64::INFINITY;
        self
    }
}

/// A `(time, mode)` entry in the mode log.
pub type ModeLogEntry = (f64, Mode);

/// Observer hook for the controller's internal telemetry (the s2n-quic
/// "publisher" shape): a host installs one with
/// [`NimbusController::set_publisher`] to stream mode transitions, µ̂/ẑ
/// estimates and detector verdicts without polling the logs.  Every method
/// has an empty default, so implementors subscribe only to what they need;
/// with no publisher installed the controller's behaviour is bit-for-bit
/// what it was before the hook existed.
pub trait Publisher: Send {
    /// The controller switched operating mode at `now_s`.
    fn on_mode_change(&mut self, _now_s: f64, _mode: Mode) {}

    /// A new estimator sample: the current µ̂ and cross-traffic estimate ẑ
    /// (both bits/s).
    fn on_estimate(&mut self, _now_s: f64, _mu_bps: f64, _z_bps: f64) {}

    /// The elasticity detector issued a verdict.
    fn on_verdict(&mut self, _now_s: f64, _verdict: &DetectorVerdict) {}
}

/// The concrete delay-mode controller (an enum rather than a trait object so
/// Nimbus can hand the cross-traffic estimate to BasicDelay, which needs it).
enum DelayCtl {
    Basic(BasicDelay),
    Other(Box<dyn CongestionControl>),
}

impl DelayCtl {
    fn as_cc(&self) -> &dyn CongestionControl {
        match self {
            DelayCtl::Basic(b) => b,
            DelayCtl::Other(o) => o.as_ref(),
        }
    }
    fn as_cc_mut(&mut self) -> &mut dyn CongestionControl {
        match self {
            DelayCtl::Basic(b) => b,
            DelayCtl::Other(o) => o.as_mut(),
        }
    }
}

/// The Nimbus controller.  Implements [`CongestionControl`], so it plugs into
/// any host sender machinery (in the simulator: `nimbus_transport::Sender`).
pub struct NimbusController {
    cfg: NimbusConfig,
    mode: Mode,
    competitive: Box<dyn CongestionControl>,
    delay: DelayCtl,
    estimator: CrossTrafficEstimator,
    detector: ElasticityDetector,
    multiflow: Multiflow,
    pulse: PulseGenerator,
    /// Smoothed RTT from ACKs (seconds), for rate/window conversions.
    srtt_s: f64,
    /// Rate history for the 5-seconds-ago reset: `(time_s, rate_bps)`.
    rate_history: VecDeque<(f64, f64)>,
    /// Current time as of the last report (seconds).
    now_s: f64,
    /// Log of mode switches.
    mode_log: Vec<ModeLogEntry>,
    /// Time of the most recent *elastic* verdict, for the switch-back
    /// hysteresis (§4.1): competitive → delay only after the detector has
    /// seen nothing elastic for a full FFT window.
    last_elastic_s: f64,
    /// Log of detector verdicts exposed for experiments (`detector` also keeps them).
    last_verdict: Option<DetectorVerdict>,
    /// EWMA-smoothed rate used while this flow is a watcher.
    watcher_rate_bps: Option<f64>,
    /// Sliding window of `(t_s, marked, acked)` packet counts from recent
    /// measurement reports, trimmed to the FFT duration.  Stays empty until
    /// the first CE mark arrives, keeping non-ECN runs bit-identical.
    mark_window: VecDeque<(f64, u64, u64)>,
    /// Consecutive informative reports where the mark fraction and ẑ agreed.
    mark_streak: u64,
    /// Telemetry observer, if the host installed one.
    publisher: Option<Box<dyn Publisher>>,
}

impl NimbusController {
    /// Create a Nimbus controller.
    pub fn new(cfg: NimbusConfig) -> Self {
        let path = match cfg.mu.configured_mu_bps() {
            Some(mu) => PathInfo::new(cfg.mss).with_nominal_mu(mu),
            None => PathInfo::new(cfg.mss),
        };
        let competitive: Box<dyn CongestionControl> = match cfg.tcp_scheme {
            TcpScheme::Cubic => CcKind::Cubic.build(&path),
            TcpScheme::NewReno => CcKind::NewReno.build(&path),
            TcpScheme::Dctcp => CcKind::Dctcp.build(&path),
        };
        let delay: DelayCtl = match cfg.delay_scheme {
            DelayScheme::BasicDelay => DelayCtl::Basic(BasicDelay::new(cfg.basic_delay)),
            DelayScheme::Vegas => DelayCtl::Other(CcKind::Vegas.build(&path)),
            DelayScheme::CopaDefault => DelayCtl::Other(CcKind::Copa.build(&path)),
        };
        let mut estimator =
            CrossTrafficEstimator::from_config(&cfg.mu, cfg.elasticity.fft_duration_s * 2.0);
        if let ZFilterConfig::Notch { freq_hz, q } = cfg.z_filter {
            estimator.set_z_prefilter(Some(Biquad::notch(
                freq_hz,
                q,
                cfg.elasticity.sample_rate_hz(),
            )));
        }
        let detector = ElasticityDetector::new(cfg.elasticity.clone());
        let multiflow = Multiflow::new(
            cfg.multiflow.clone(),
            cfg.elasticity.fft_duration_s,
            cfg.seed,
        );
        let amplitude = cfg.pulse_amplitude_fraction * cfg.mu.configured_mu_bps().unwrap_or(0.0);
        let pulse = PulseGenerator::asymmetric(cfg.elasticity.pulse_freq_hz, amplitude);
        let mut controller = NimbusController {
            cfg,
            mode: Mode::Delay,
            competitive,
            delay,
            estimator,
            detector,
            multiflow,
            pulse,
            srtt_s: 0.0,
            rate_history: VecDeque::new(),
            now_s: 0.0,
            mode_log: Vec::new(),
            last_elastic_s: f64::NEG_INFINITY,
            last_verdict: None,
            watcher_rate_bps: None,
            mark_window: VecDeque::new(),
            mark_streak: 0,
            publisher: None,
        };
        controller.mode_log.push((0.0, Mode::Delay));
        controller
    }

    /// Install a telemetry observer (see [`Publisher`]); replaces any
    /// previous one.  The publisher only *observes* — installing one cannot
    /// change the controller's decisions.
    pub fn set_publisher(&mut self, publisher: Box<dyn Publisher>) {
        self.publisher = Some(publisher);
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The current pulser/watcher role.
    pub fn role(&self) -> Role {
        self.multiflow.role()
    }

    /// The fraction of ACKed packets that carried a CE echo over the last
    /// FFT window (exactly 0.0 on a path that has never marked).
    pub fn mark_fraction(&self) -> f64 {
        let marked: u64 = self.mark_window.iter().map(|&(_, m, _)| m).sum();
        let acked: u64 = self.mark_window.iter().map(|&(_, _, a)| a).sum();
        if acked == 0 {
            0.0
        } else {
            marked as f64 / acked.max(marked) as f64
        }
    }

    /// Every mode switch as `(time_s, new_mode)`.
    pub fn mode_log(&self) -> &[ModeLogEntry] {
        &self.mode_log
    }

    /// The elasticity detector (verdict history, η time series).
    pub fn detector(&self) -> &ElasticityDetector {
        &self.detector
    }

    /// The cross-traffic estimator (ẑ history).
    pub fn estimator(&self) -> &CrossTrafficEstimator {
        &self.estimator
    }

    /// The most recent detector verdict.
    pub fn last_verdict(&self) -> Option<DetectorVerdict> {
        self.last_verdict
    }

    /// Fraction of time spent in delay mode between `t0_s` and `t1_s`
    /// (computed from the mode log).
    pub fn delay_mode_fraction(&self, t0_s: f64, t1_s: f64) -> f64 {
        if t1_s <= t0_s {
            return 0.0;
        }
        let mut total_delay = 0.0;
        let mut current_mode = Mode::Delay;
        let mut current_start = t0_s;
        for &(t, mode) in &self.mode_log {
            if t <= t0_s {
                current_mode = mode;
                continue;
            }
            if t >= t1_s {
                break;
            }
            if current_mode == Mode::Delay {
                total_delay += t - current_start;
            }
            current_mode = mode;
            current_start = t;
        }
        if current_mode == Mode::Delay {
            total_delay += t1_s - current_start;
        }
        total_delay / (t1_s - t0_s)
    }

    /// The bottleneck-rate estimate in use.
    pub fn mu_bps(&self) -> f64 {
        self.estimator.mu_bps()
    }

    fn active(&self) -> &dyn CongestionControl {
        match self.mode {
            Mode::Delay => self.delay.as_cc(),
            Mode::Competitive => self.competitive.as_ref(),
        }
    }

    /// The unmodulated rate the active inner controller wants right now.
    fn base_rate_bps(&self, now: Time) -> f64 {
        match self.active().pacing_rate_bps(now) {
            Some(rate) => rate,
            None => {
                // Window-based inner controller (Cubic/NewReno): convert the
                // window to an equivalent rate over the smoothed RTT.
                let rtt = if self.srtt_s > 0.0 { self.srtt_s } else { 0.1 };
                self.active().cwnd_packets() * self.cfg.mss as f64 * 8.0 / rtt
            }
        }
    }

    /// Rate the flow was using `lookback_s` seconds ago (for the reset on
    /// switching to competitive mode).
    fn rate_at_lookback(&self, lookback_s: f64) -> Option<f64> {
        let target = self.now_s - lookback_s;
        self.rate_history
            .iter()
            .find(|(t, _)| *t >= target)
            .map(|&(_, r)| r)
    }

    /// Current pulse frequency.  A lone Nimbus flow always pulses at `f_p`;
    /// with multi-flow coordination enabled the pulser uses `f_pc` in
    /// competitive mode and `f_pd` in delay mode so watchers can read its
    /// mode out of their receive-rate spectrum (§6).
    fn current_pulse_freq(&self) -> f64 {
        if !self.cfg.multiflow.enabled {
            return self.cfg.elasticity.pulse_freq_hz;
        }
        match self.mode {
            Mode::Competitive => self.cfg.elasticity.pulse_freq_hz,
            Mode::Delay => self.cfg.pulse_freq_delay_hz,
        }
    }

    /// The pacing multiplier a probing µ estimator wants right now.  Probe
    /// epochs only run in delay mode: there the flow is self-limited and a
    /// max filter can never see past its own pace, while in competitive
    /// mode the inner TCP already probes the link by design.
    fn probe_gain(&self, now_s: f64) -> f64 {
        match self.mode {
            Mode::Delay => self.estimator.pace_gain(now_s),
            Mode::Competitive => 1.0,
        }
    }

    fn switch_mode(&mut self, new_mode: Mode) {
        if new_mode == self.mode {
            return;
        }
        if new_mode == Mode::Competitive {
            // §4.1: reset to the rate from one detection period (5 s) ago.
            let lookback = self.cfg.elasticity.fft_duration_s;
            let rate = self
                .rate_at_lookback(lookback)
                .unwrap_or_else(|| self.base_rate_bps(Time::from_secs_f64(self.now_s)));
            let rtt = if self.srtt_s > 0.0 { self.srtt_s } else { 0.05 };
            self.competitive.reinitialize(rate, rtt, self.cfg.mss);
        } else {
            // Entering delay mode: start the delay controller from the rate
            // the flow is currently achieving so it does not spike the queue.
            let rate = self.base_rate_bps(Time::from_secs_f64(self.now_s));
            let rtt = if self.srtt_s > 0.0 { self.srtt_s } else { 0.05 };
            self.delay.as_cc_mut().reinitialize(rate, rtt, self.cfg.mss);
        }
        self.mode = new_mode;
        self.mode_log.push((self.now_s, new_mode));
        if let Some(p) = &mut self.publisher {
            p.on_mode_change(self.now_s, new_mode);
        }
    }
}

impl CongestionControl for NimbusController {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let rtt = ack.rtt.as_secs_f64();
        self.srtt_s = if self.srtt_s == 0.0 {
            rtt
        } else {
            0.875 * self.srtt_s + 0.125 * rtt
        };
        // Both inner controllers observe every ACK so that whichever is
        // activated next starts from sane state.
        self.competitive.on_packet_acked(ack);
        self.delay.as_cc_mut().on_packet_acked(ack);
    }

    fn on_packets_lost(&mut self, loss: &LossEvent) {
        self.competitive.on_packets_lost(loss);
        self.delay.as_cc_mut().on_packets_lost(loss);
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        self.competitive.on_congestion_event(event);
        self.delay.as_cc_mut().on_congestion_event(event);
    }

    fn on_report(&mut self, report: &Report) {
        self.now_s = report.now_s;
        // 1. Feed the measurement pipeline.  Probe epochs only pace in delay
        // mode (`probe_gain`), so the estimator's ẑ sample-and-hold must
        // follow the same gate — in competitive mode there is no probe burst
        // to blank out, and holding anyway would starve the detector of the
        // very samples that tell it the competition went away.
        self.estimator.set_probing_paced(self.mode == Mode::Delay);
        let sample = self.estimator.on_report(report);
        if let Some(s) = sample {
            if let Some(p) = &mut self.publisher {
                p.on_estimate(report.now_s, self.estimator.mu_bps(), s.z_bps);
            }
            if let DelayCtl::Basic(bd) = &mut self.delay {
                bd.set_cross_traffic_estimate(s.z_bps);
            }
        }
        // 2. Let both inner controllers see the report.
        self.competitive.on_report(report);
        self.delay.as_cc_mut().on_report(report);

        // 2b. ECN mark-rate cross-validation.  A queue that keeps marking
        // while we sit in delay mode is a queue somebody else keeps full —
        // and the ẑ estimate says who.  When both signals agree (persistent
        // mark fraction AND ẑ a non-trivial share of µ) the controller can
        // call the cross traffic elastic in a few hundred milliseconds
        // instead of waiting out a full FFT window.  The fraction is counted
        // over a sliding window of ACKed packets (the way DCTCP computes α)
        // rather than EWMA-smoothed per report: a starved flow's reports are
        // mostly empty, and folding those in as "zero marks" would erase a
        // perfectly persistent mark signal exactly when it matters most.
        // The whole block is provably inert without ECN: `marked_packets` is
        // 0 on every report, the window stays empty, and no state changes.
        if self.cfg.ecn_mark_validation
            && (report.marked_packets > 0 || !self.mark_window.is_empty())
        {
            let acked_pkts = report.acked_bytes / self.cfg.mss.max(1) as u64;
            if report.marked_packets > 0 || acked_pkts > 0 {
                self.mark_window
                    .push_back((report.now_s, report.marked_packets, acked_pkts));
            }
            let horizon = report.now_s - self.cfg.elasticity.fft_duration_s;
            while let Some(&(t, _, _)) = self.mark_window.front() {
                if t < horizon {
                    self.mark_window.pop_front();
                } else {
                    break;
                }
            }
            let marked: u64 = self.mark_window.iter().map(|&(_, m, _)| m).sum();
            let acked: u64 = self.mark_window.iter().map(|&(_, _, a)| a).sum();
            let span_s = match (self.mark_window.front(), self.mark_window.back()) {
                (Some(&(t0, _, _)), Some(&(t1, _, _))) => t1 - t0,
                _ => 0.0,
            };
            let frac = if acked == 0 {
                0.0
            } else {
                marked as f64 / acked.max(marked) as f64
            };
            let mu_now = self.estimator.mu_bps();
            let z_now = self
                .estimator
                .z_series_conditioned(self.cfg.elasticity.fft_duration_s);
            let z_mean = if z_now.is_empty() {
                0.0
            } else {
                z_now.iter().sum::<f64>() / z_now.len() as f64
            };
            let z_agrees = mu_now > 0.0 && z_mean > 0.05 * mu_now;
            // Don't trust ẑ before the first FFT window has filled: the
            // slow-start transient inflates both ẑ and the mark rate, and a
            // solo flow on a shallow marking queue would misread its own
            // startup as an elastic competitor.
            let warmed = report.now_s >= self.cfg.elasticity.fft_duration_s;
            // A couple of marked packets per window is already abnormal for
            // a delay-mode flow that targets a sub-threshold queue, so the
            // fraction bar is low (2%); the false-positive guards are the
            // ẑ agreement, the warm-up, the minimum evidence (≥ 8 ACKed
            // packets spanning ≥ 250 ms), and the persistence streak — a
            // transient ẑ crossing on a solo flow must not flip the mode,
            // so both signals have to hold across 25 informative reports
            // (~250 ms at the CCP cadence, a few seconds when starved).
            if warmed
                && self.mode == Mode::Delay
                && acked >= 8
                && span_s >= 0.25
                && frac > 0.02
                && z_agrees
            {
                self.mark_streak += 1;
                if self.mark_streak >= 25 {
                    self.last_elastic_s = report.now_s;
                    self.switch_mode(Mode::Competitive);
                }
            } else {
                self.mark_streak = 0;
            }
        }

        // 3. Record the rate history (for the 5-seconds-ago reset).
        let now_t = Time::from_secs_f64(report.now_s);
        let rate_now = self.base_rate_bps(now_t);
        self.rate_history.push_back((report.now_s, rate_now));
        let horizon = report.now_s - 2.0 * self.cfg.elasticity.fft_duration_s;
        while let Some(&(t, _)) = self.rate_history.front() {
            if t < horizon {
                self.rate_history.pop_front();
            } else {
                break;
            }
        }

        // 4. Multi-flow coordination.
        let mu = self.estimator.mu_bps();
        let sample_rate = 1.0 / self.cfg.elasticity.sample_interval_s;
        let window_s = self.cfg.elasticity.fft_duration_s;
        if self.cfg.multiflow.enabled {
            match self.multiflow.role() {
                Role::Watcher => {
                    // Smooth this flow's own rate so the pulser does not
                    // mistake it for elastic cross traffic (§6).
                    self.watcher_rate_bps = Some(self.multiflow.shape_rate(rate_now));
                    let recv = self.estimator.recv_rate_series(window_s);
                    let presence = self.multiflow.detect_pulser(&recv, sample_rate);
                    use crate::multiflow::PulserPresence;
                    match presence {
                        PulserPresence::Competitive => self.switch_mode(Mode::Competitive),
                        PulserPresence::Delay => self.switch_mode(Mode::Delay),
                        PulserPresence::None => {
                            let recv_rate = report.recv_rate_bps;
                            self.multiflow
                                .maybe_become_pulser(report.now_s, false, recv_rate, mu);
                        }
                    }
                    // Watchers never pulse.
                    self.pulse.enabled = false;
                    return;
                }
                Role::Pulser => {
                    self.watcher_rate_bps = None;
                    self.pulse.enabled = true;
                }
            }
        }

        // 5. Pulser path: evaluate elasticity and pick the mode.  The
        // minimum-peak guard tracks the current µ estimate (which may be
        // learned at runtime): a configured value of 0 means "automatic",
        // i.e. the f_p oscillation in ẑ must reach ~2% of µ peak-to-peak
        // before the cross traffic can be called elastic.
        let z_series = self.estimator.z_series_conditioned(window_s);
        // The adaptive ẑ-conditioning stage raises the detection bars (η
        // threshold and minimum peak) with the µ̂ uncertainty: when µ̂ is off
        // by a fraction u, the flow's own pulse leaks into ẑ with amplitude
        // ∝ u·0.25·µ̂ and η values in exactly the genuine-elasticity range.
        // The leak can only masquerade as cross traffic when there is not
        // much *actual* cross traffic — a real competitor fills ẑ itself —
        // so the scaling is damped to nothing as mean ẑ approaches 25% of
        // µ̂.  Without the damping a competitor that squeezes the flow also
        // widens the recv-rate spread, the raised bar suppresses the
        // genuine verdict, and the starvation becomes self-reinforcing.
        let bar_scale = match self.cfg.z_filter {
            ZFilterConfig::Adaptive { k } if mu > 0.0 && !z_series.is_empty() => {
                let mean_z = z_series.iter().sum::<f64>() / z_series.len() as f64;
                let damp = (1.0 - mean_z / (0.25 * mu)).clamp(0.0, 1.0);
                1.0 + k * self.estimator.mu_uncertainty() * damp
            }
            _ => 1.0,
        };
        if self.cfg.elasticity.min_peak_bps == 0.0 && mu > 0.0 {
            self.detector.set_min_peak_bps(0.01 * mu * bar_scale);
        }
        self.detector.set_eta_scale(bar_scale);
        if let Some(verdict) = self.detector.evaluate(report.now_s, &z_series) {
            self.last_verdict = Some(verdict);
            if let Some(p) = &mut self.publisher {
                p.on_verdict(report.now_s, &verdict);
            }
            // Multi-pulser conflict check: compare the pulse-frequency content
            // of ẑ against our own receive rate.
            if self.cfg.multiflow.enabled {
                let recv = self.estimator.recv_rate_series(window_s);
                if recv.len() >= self.cfg.elasticity.window_samples() {
                    let recv_spectrum = nimbus_dsp::Spectrum::of_signal(&recv, sample_rate, true);
                    let recv_peak = recv_spectrum.peak_near(
                        self.current_pulse_freq(),
                        self.cfg.elasticity.peak_tolerance_hz,
                    );
                    if self
                        .multiflow
                        .maybe_step_down(report.now_s, verdict.peak_at_fp, recv_peak)
                    {
                        self.pulse.enabled = false;
                        return;
                    }
                }
            }
            // Asymmetric hysteresis (§4.1): elastic cross traffic flips the
            // controller to competitive mode immediately (every tick in delay
            // mode concedes throughput), but it only returns to delay mode
            // after a full FFT window without a single elastic verdict — a
            // competitor briefly backing off (e.g. Cubic right after a loss)
            // must not bounce Nimbus back into the mode it gets starved in.
            if verdict.elastic {
                self.last_elastic_s = report.now_s;
                self.switch_mode(Mode::Competitive);
            } else if report.now_s - self.last_elastic_s >= self.cfg.elasticity.fft_duration_s {
                self.switch_mode(Mode::Delay);
            }
        }

        // 6. Keep the pulse generator aligned with the current mode and µ.
        self.pulse.freq_hz = self.current_pulse_freq();
        self.pulse.amplitude = self.cfg.pulse_amplitude_fraction * mu;
        // The detector always listens at the competitive-mode frequency?  No:
        // it listens at whatever frequency we are currently pulsing at.
        self.detector.set_pulse_freq(self.current_pulse_freq());
    }

    fn cwnd_packets(&self) -> f64 {
        // The window of the active controller, with enough head-room that the
        // window never clips the pulse's positive excursion — pacing (which
        // carries the pulse) must stay the binding constraint.  Without this
        // a starved delay-mode flow has a window of a few packets, the pulse
        // never reaches the wire, and the detector goes blind exactly when it
        // is needed most.
        let inner = match self.mode {
            Mode::Competitive => self.competitive.cwnd_packets(),
            Mode::Delay => self.delay.as_cc().cwnd_packets(),
        };
        let rtt = if self.srtt_s > 0.0 { self.srtt_s } else { 0.1 };
        // A probe-up epoch must fit through the window as well as the pulse:
        // the estimator's pace gain scales the headroom exactly as it scales
        // the paced rate (gain is 1.0 outside probing estimators).
        let gain = self.probe_gain(self.now_s);
        let peak_rate =
            (self.base_rate_bps(Time::from_secs_f64(self.now_s)) + self.pulse.amplitude) * gain;
        let pulse_headroom = 2.0 * peak_rate * rtt / (8.0 * self.cfg.mss as f64);
        let cwnd = inner.max(pulse_headroom);
        // A probing estimator's delivery cap bounds the *window* as well as
        // the pace: retransmissions are never paced (only cwnd-gated), so
        // after a timeout an inner controller whose rate has rebounded off
        // the nominal µ would flood the whole go-back-N queue into a faded
        // link and wedge it again.  Two delivery-BDPs of window keep
        // recovery ACK-clocked at the rate the link actually carries (the
        // same 2× that BBR's cwnd gain uses, covering the probe epochs too).
        match (self.mode, self.estimator.pace_cap_bps()) {
            (Mode::Delay, Some(cap_bps)) => {
                let cap_window = 2.0 * cap_bps * rtt / (8.0 * self.cfg.mss as f64);
                cwnd.min(cap_window.max(4.0))
            }
            _ => cwnd,
        }
    }

    fn pacing_rate_bps(&self, now: Time) -> Option<f64> {
        let base = self.base_rate_bps(now);
        let shaped = if self.cfg.multiflow.enabled && self.multiflow.role() == Role::Watcher {
            // Watchers smooth their rate (EWMA, updated on the report path)
            // instead of pulsing.
            self.watcher_rate_bps.unwrap_or(base)
        } else {
            self.pulse.modulate(base, now.as_secs_f64())
        };
        // A probing estimator's delivery-informed cap bounds the cruise rate
        // in delay mode: a rate-based inner controller chasing a nominal or
        // crest-riding µ paces straight into a rate fade, melts the queue
        // down and wedges the transport in RTO backoff (the ROADMAP cellular
        // deadlock's other half).  Probe epochs then multiply *after* both
        // the cap and the pacing floor, so probing remains the one way to
        // pace above recent delivery — and the floor (the exact fixed point
        // µ̂ deadlocks at) can never mask the escape mechanism.
        let shaped = match (self.mode, self.estimator.pace_cap_bps()) {
            (Mode::Delay, Some(cap)) => shaped.min(cap),
            _ => shaped,
        };
        let gain = self.probe_gain(now.as_secs_f64());
        Some(shaped.max(self.cfg.mss as f64 * 8.0 / 0.1) * gain)
    }

    fn reinitialize(&mut self, rate_bps: f64, rtt_s: f64, mss: u32) {
        self.competitive.reinitialize(rate_bps, rtt_s, mss);
        self.delay.as_cc_mut().reinitialize(rate_bps, rtt_s, mss);
    }

    fn name(&self) -> &'static str {
        "nimbus"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(now_s: f64, s_bps: f64, r_bps: f64, rtt_s: f64) -> Report {
        Report {
            now_s,
            send_rate_bps: s_bps,
            recv_rate_bps: r_bps,
            acked_bytes: 12_000,
            lost_packets: 0,
            rtt_s,
            min_rtt_s: 0.05,
            window_acks: 40,
            marked_packets: 0,
            marked_bytes: 0,
        }
    }

    fn ack(now_s: f64, rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_secs_f64(now_s),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis_f64(rtt_ms),
            min_rtt: Time::from_millis_f64(50.0),
            in_flight_packets: 50,
            mss: 1500,
        }
    }

    #[test]
    fn mark_rate_cross_validation_flips_competitive_before_one_window() {
        let mut ctl = NimbusController::new(NimbusConfig::default_for_link(96e6));
        // S = 40, R = 60 on a 96 Mbit/s link: Eq. 1 says z = 24 Mbit/s of
        // cross traffic, well above the 5% agreement bar; every report also
        // carries CE marks on most of its ACKed packets.  The validator only
        // trusts ẑ once the first FFT window has filled (t ≥ 5 s), so start
        // the marked reports there: the flip must then come in a few hundred
        // milliseconds, not after another full window.
        let mut t = 5.0;
        while t < 6.0 {
            t += 0.01;
            ctl.on_packet_acked(&ack(t, 50.0));
            let mut r = report(t, 40e6, 60e6, 0.05);
            r.marked_packets = 5;
            r.marked_bytes = 7_500;
            ctl.on_report(&r);
            if ctl.mode() == Mode::Competitive {
                break;
            }
        }
        assert_eq!(ctl.mode(), Mode::Competitive);
        // The FFT window is 5 s; the cross-validated flip must beat a fresh
        // window's worth of post-arrival data by a wide margin.
        assert!(t < 6.0, "flipped at {t}s, faster than the FFT window");
        assert!(ctl.mark_fraction() > 0.05);
    }

    #[test]
    fn marks_without_cross_traffic_do_not_flip_the_mode() {
        let mut ctl = NimbusController::new(NimbusConfig::default_for_link(96e6));
        // S == R == µ: no cross traffic, so ẑ stays near zero and the marks
        // (our own pulse brushing a shallow threshold) must not flip us.
        let mut t = 5.0;
        while t < 6.0 {
            t += 0.01;
            ctl.on_packet_acked(&ack(t, 50.0));
            let mut r = report(t, 96e6, 96e6, 0.05);
            r.marked_packets = 5;
            r.marked_bytes = 7_500;
            ctl.on_report(&r);
        }
        assert_eq!(ctl.mode(), Mode::Delay);
    }

    #[test]
    fn starts_in_delay_mode_as_pulser() {
        let ctl = NimbusController::new(NimbusConfig::default_for_link(96e6));
        assert_eq!(ctl.mode(), Mode::Delay);
        assert_eq!(ctl.role(), Role::Pulser);
        assert_eq!(ctl.mode_log().len(), 1);
        assert!((ctl.mu_bps() - 96e6).abs() < 1.0);
    }

    #[test]
    fn pacing_rate_is_pulsed_around_the_base_rate() {
        let mut ctl = NimbusController::new(NimbusConfig::default_for_link(96e6));
        ctl.on_packet_acked(&ack(0.0, 50.0));
        // Collect the pacing rate over one pulse period and check it swings.
        let mut rates = Vec::new();
        for i in 0..200 {
            let t = i as f64 * 0.001;
            rates.push(ctl.pacing_rate_bps(Time::from_secs_f64(t)).unwrap());
        }
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 5e6, "pulse swing {} too small", max - min);
        // Mean stays near the base rate (pulses cancel over a period).
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let base = rates[0];
        assert!(mean < base * 3.0 && mean > base / 3.0);
    }

    /// Drive the controller open-loop with reports synthesized from a given
    /// cross-traffic behaviour and return the final mode.
    fn drive_with_cross_traffic(elastic: bool, secs: f64) -> NimbusController {
        let mu = 96e6;
        let mut ctl = NimbusController::new(NimbusConfig::default_for_link(mu));
        ctl.on_packet_acked(&ack(0.0, 60.0));
        let pulse_probe = PulseGenerator::asymmetric(5.0, 0.25 * mu);
        let mut t = 0.0;
        while t < secs {
            t += 0.01;
            ctl.on_packet_acked(&ack(t, 60.0));
            // Our own send rate follows the pulsed pacing rate.
            let s = ctl.pacing_rate_bps(Time::from_secs_f64(t)).unwrap().min(mu);
            // Cross traffic: 48 Mbit/s that either reacts inversely to the
            // pulses one RTT later (elastic) or ignores them (inelastic).
            let z = if elastic {
                48e6 - 0.4 * pulse_probe.offset_at(t - 0.05)
            } else {
                48e6
            };
            // The receiver sees R = µ·S/(S+z) when the link is saturated.
            let r = mu * s / (s + z);
            ctl.on_report(&report(t, s, r, 0.06));
        }
        ctl
    }

    #[test]
    fn elastic_cross_traffic_switches_to_competitive_mode() {
        let ctl = drive_with_cross_traffic(true, 12.0);
        assert_eq!(ctl.mode(), Mode::Competitive);
        assert!(
            ctl.mode_log().len() >= 2,
            "should have switched at least once"
        );
        // The switch must not have happened before a full FFT window existed.
        let first_switch = ctl.mode_log()[1].0;
        assert!(first_switch >= 4.95, "switched too early at {first_switch}");
        assert!(ctl.last_verdict().unwrap().eta >= 2.0);
    }

    #[test]
    fn inelastic_cross_traffic_stays_in_delay_mode() {
        let ctl = drive_with_cross_traffic(false, 12.0);
        assert_eq!(ctl.mode(), Mode::Delay);
        assert!(ctl.delay_mode_fraction(0.0, 12.0) > 0.95);
    }

    #[test]
    fn mode_switch_resets_competitive_rate_to_five_seconds_ago() {
        // Build a controller, keep the delay-mode rate high early and low
        // late; on the switch the competitive window must reflect the early
        // (5-seconds-ago) rate rather than the depressed current one.
        let mu = 96e6;
        let mut ctl = NimbusController::new(NimbusConfig::default_for_link(mu));
        ctl.on_packet_acked(&ack(0.0, 50.0));
        let pulse_probe = PulseGenerator::asymmetric(5.0, 0.25 * mu);
        let mut t = 0.0;
        while t < 11.0 {
            t += 0.01;
            ctl.on_packet_acked(&ack(t, 55.0));
            // Delay-mode base rate: pretend the flow sent 60 Mbit/s early,
            // 20 Mbit/s late (as if an elastic competitor was squeezing it).
            let s = if t < 6.0 { 60e6 } else { 20e6 };
            let z = 30e6 - 0.4 * pulse_probe.offset_at(t - 0.05);
            let r = mu * s / (s + z);
            ctl.on_report(&report(t, s, r, 0.06));
        }
        assert_eq!(ctl.mode(), Mode::Competitive);
        // The competitive controller was reinitialized from the rate history;
        // its window should correspond to something well above the late
        // 20 Mbit/s rate (20 Mbit/s over 55 ms RTT ≈ 92 packets).
        let cwnd = ctl.cwnd_packets();
        assert!(
            cwnd > 120.0,
            "cwnd {cwnd} suggests the reset used the depressed rate"
        );
    }

    #[test]
    fn delay_mode_fraction_accounting() {
        let mut ctl = NimbusController::new(NimbusConfig::default_for_link(48e6));
        // Fabricate a mode log: delay 0-10, competitive 10-20, delay 20-30.
        ctl.mode_log.push((10.0, Mode::Competitive));
        ctl.mode_log.push((20.0, Mode::Delay));
        assert!((ctl.delay_mode_fraction(0.0, 30.0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((ctl.delay_mode_fraction(10.0, 20.0) - 0.0).abs() < 1e-9);
        assert!((ctl.delay_mode_fraction(20.0, 30.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn publisher_sees_mode_changes_and_estimates() {
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Log {
            modes: Vec<(f64, Mode)>,
            estimates: usize,
            verdicts: usize,
        }
        struct Recorder(Arc<Mutex<Log>>);
        impl Publisher for Recorder {
            fn on_mode_change(&mut self, now_s: f64, mode: Mode) {
                self.0.lock().unwrap().modes.push((now_s, mode));
            }
            fn on_estimate(&mut self, _now_s: f64, mu_bps: f64, z_bps: f64) {
                assert!(mu_bps.is_finite() && z_bps.is_finite());
                self.0.lock().unwrap().estimates += 1;
            }
            fn on_verdict(&mut self, _now_s: f64, verdict: &DetectorVerdict) {
                assert!(
                    verdict.eta.is_finite() || verdict.eta.is_nan() || verdict.eta.is_infinite()
                );
                self.0.lock().unwrap().verdicts += 1;
            }
        }

        let log = Arc::new(Mutex::new(Log::default()));
        let mu = 96e6;
        let mut ctl = NimbusController::new(NimbusConfig::default_for_link(mu));
        ctl.set_publisher(Box::new(Recorder(Arc::clone(&log))));
        ctl.on_packet_acked(&ack(0.0, 60.0));
        let pulse_probe = PulseGenerator::asymmetric(5.0, 0.25 * mu);
        let mut t = 0.0;
        while t < 12.0 {
            t += 0.01;
            ctl.on_packet_acked(&ack(t, 60.0));
            let s = ctl.pacing_rate_bps(Time::from_secs_f64(t)).unwrap().min(mu);
            let z = 48e6 - 0.4 * pulse_probe.offset_at(t - 0.05);
            let r = mu * s / (s + z);
            ctl.on_report(&report(t, s, r, 0.06));
        }
        let log = log.lock().unwrap();
        // The publisher saw the same switches the mode log recorded (minus
        // the constructor's initial delay-mode entry).
        assert_eq!(ctl.mode_log().len(), log.modes.len() + 1);
        assert!(log.modes.iter().any(|&(_, m)| m == Mode::Competitive));
        assert!(log.estimates > 100, "estimates {}", log.estimates);
        assert!(log.verdicts > 0);
    }
}
