//! Round-trip-time estimation.
//!
//! Standard RFC 6298 SRTT/RTTVAR smoothing with an RTO floor, plus a windowed
//! minimum used as the propagation-delay estimate by the delay-based
//! controllers (Vegas, Copa, BasicDelay) and by Nimbus.

use nimbus_core_types::Time;
use nimbus_dsp::WindowedMin;

/// SRTT / RTTVAR / RTO estimator plus min-RTT tracking.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    latest: Option<Time>,
    min_filter: WindowedMin,
    global_min: Option<Time>,
    rto_floor: Time,
}

impl RttEstimator {
    /// Create an estimator. `min_window_s` bounds how long a min-RTT sample
    /// is believed (BBR uses 10 s; delay-based schemes often keep it forever —
    /// pass `f64::INFINITY`-ish large values for that).
    pub fn new(min_window_s: f64) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            latest: None,
            min_filter: WindowedMin::new(min_window_s.max(1e-3)),
            global_min: None,
            rto_floor: Time::from_millis(200),
        }
    }

    /// Feed an RTT sample observed at time `now`.
    pub fn on_sample(&mut self, rtt: Time, now: Time) {
        let r = rtt.as_secs_f64();
        self.latest = Some(rtt);
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                // RFC 6298 with alpha=1/8, beta=1/4.
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        self.min_filter.update(now.as_secs_f64(), r);
        self.global_min = Some(match self.global_min {
            None => rtt,
            Some(m) => m.min(rtt),
        });
    }

    /// Smoothed RTT, if at least one sample has been seen.
    pub fn srtt(&self) -> Option<Time> {
        self.srtt.map(Time::from_secs_f64)
    }

    /// The most recent raw RTT sample.
    pub fn latest(&self) -> Option<Time> {
        self.latest
    }

    /// Windowed minimum RTT (the propagation-delay estimate).
    pub fn min_rtt(&self) -> Option<Time> {
        self.min_filter.min().map(Time::from_secs_f64)
    }

    /// Minimum RTT ever observed (never expires).
    pub fn global_min_rtt(&self) -> Option<Time> {
        self.global_min
    }

    /// Retransmission timeout: `SRTT + 4·RTTVAR`, floored.
    pub fn rto(&self) -> Time {
        match self.srtt {
            None => Time::from_millis(1000),
            Some(srtt) => {
                let rto = Time::from_secs_f64(srtt + 4.0 * self.rttvar.max(0.001));
                rto.max(self.rto_floor)
            }
        }
    }

    /// Queueing-delay estimate: latest RTT minus minimum RTT.
    pub fn queueing_delay(&self) -> Option<Time> {
        match (self.latest, self.global_min) {
            (Some(l), Some(m)) => Some(l.saturating_sub(m)),
            _ => None,
        }
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_srtt() {
        let mut e = RttEstimator::default();
        assert!(e.srtt().is_none());
        e.on_sample(Time::from_millis(100), Time::ZERO);
        assert_eq!(e.srtt().unwrap(), Time::from_millis(100));
        assert_eq!(e.latest().unwrap(), Time::from_millis(100));
    }

    #[test]
    fn srtt_smooths_towards_samples() {
        let mut e = RttEstimator::default();
        e.on_sample(Time::from_millis(100), Time::ZERO);
        for i in 1..200 {
            e.on_sample(Time::from_millis(50), Time::from_millis(i * 10));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!((srtt - 50.0).abs() < 1.0, "srtt {srtt}");
    }

    #[test]
    fn min_rtt_tracks_smallest_sample() {
        let mut e = RttEstimator::new(1e6);
        e.on_sample(Time::from_millis(80), Time::from_secs_f64(0.0));
        e.on_sample(Time::from_millis(52), Time::from_secs_f64(1.0));
        e.on_sample(Time::from_millis(95), Time::from_secs_f64(2.0));
        assert_eq!(e.min_rtt().unwrap(), Time::from_millis(52));
        assert_eq!(e.global_min_rtt().unwrap(), Time::from_millis(52));
        assert_eq!(e.queueing_delay().unwrap(), Time::from_millis(43));
    }

    #[test]
    fn windowed_min_expires_but_global_does_not() {
        let mut e = RttEstimator::new(10.0);
        e.on_sample(Time::from_millis(40), Time::from_secs_f64(0.0));
        for s in 1..30 {
            e.on_sample(Time::from_millis(90), Time::from_secs_f64(s as f64));
        }
        // The 40 ms sample is outside the 10 s window.
        assert_eq!(e.min_rtt().unwrap(), Time::from_millis(90));
        assert_eq!(e.global_min_rtt().unwrap(), Time::from_millis(40));
    }

    #[test]
    fn rto_has_floor_and_grows_with_variance() {
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(), Time::from_millis(1000));
        e.on_sample(Time::from_millis(10), Time::ZERO);
        assert!(e.rto() >= Time::from_millis(200));
        // Large variance inflates the RTO.
        let mut noisy = RttEstimator::default();
        for i in 0..50 {
            let r = if i % 2 == 0 { 50 } else { 350 };
            noisy.on_sample(Time::from_millis(r), Time::from_millis(i * 100));
        }
        assert!(noisy.rto() > Time::from_millis(400));
    }
}
