//! The elasticity detector (§3.3–§3.4 of the paper).
//!
//! The detector watches the estimated cross-traffic rate `ẑ(t)`, sampled on
//! every measurement tick, over a sliding window (5 seconds by default).  It
//! computes the FFT of that window and forms the elasticity metric
//!
//! ```text
//! η = |FFT_ẑ(f_p)| / max_{f ∈ (f_p, 2·f_p)} |FFT_ẑ(f)|        (Eq. 3)
//! ```
//!
//! If the cross traffic contains ACK-clocked (elastic) flows they oscillate
//! at the pulse frequency `f_p`, producing a pronounced peak there; inelastic
//! traffic spreads its energy over all frequencies.  A hard threshold
//! `η ≥ η_thresh` (2 by default, chosen in §3.4 from the Fig. 6 CDFs) yields
//! the binary verdict.
//!
//! The time-domain cross-correlation detector that the paper describes — and
//! rejects — as its first attempt (§3.3) is also implemented
//! ([`ElasticityDetector::cross_correlation`]) so the ablation benches can
//! compare the two.

use nimbus_dsp::{Fft, Spectrum, WindowFunction};
use serde::{Deserialize, Serialize};

/// Detector configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticityConfig {
    /// Pulse frequency `f_p` to look for, Hz (5 Hz by default).
    pub pulse_freq_hz: f64,
    /// Length of the FFT window, seconds (5 s by default, §3.4).
    pub fft_duration_s: f64,
    /// Sample interval of the ẑ series, seconds (10 ms: the CCP report tick).
    pub sample_interval_s: f64,
    /// Decision threshold `η_thresh ≥ 1` (2 by default).
    pub eta_threshold: f64,
    /// Tolerance around `f_p` when locating its peak, Hz.
    pub peak_tolerance_hz: f64,
    /// Window function applied before the FFT.
    pub window: WindowFunction,
    /// Minimum spectral magnitude at `f_p` (signal units, i.e. bits/s; a
    /// sinusoid of amplitude `A` has magnitude `A/2`) for an *elastic*
    /// verdict.  With no cross traffic ẑ is numerically tiny, and η — a ratio
    /// of two near-zero magnitudes — is meaningless noise; requiring the
    /// oscillation to be physically significant suppresses those spurious
    /// verdicts.  `0.0` disables the guard when the detector is used
    /// stand-alone; the Nimbus controller treats `0.0` as "automatic" and
    /// keeps it at 1% of its current µ estimate (known or learned).
    pub min_peak_bps: f64,
}

impl Default for ElasticityConfig {
    fn default() -> Self {
        ElasticityConfig {
            pulse_freq_hz: 5.0,
            fft_duration_s: 5.0,
            sample_interval_s: 0.01,
            eta_threshold: 2.0,
            peak_tolerance_hz: 0.25,
            window: WindowFunction::Rectangular,
            min_peak_bps: 0.0,
        }
    }
}

impl ElasticityConfig {
    /// Number of samples in a full detection window.
    pub fn window_samples(&self) -> usize {
        (self.fft_duration_s / self.sample_interval_s).round() as usize
    }

    /// Sampling rate of the ẑ series in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        1.0 / self.sample_interval_s
    }
}

/// The detector's output for one evaluation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorVerdict {
    /// Evaluation time (seconds).
    pub t_s: f64,
    /// The elasticity metric η.
    pub eta: f64,
    /// η compared against the threshold.
    pub elastic: bool,
    /// |FFT_ẑ(f_p)| (diagnostics).
    pub peak_at_fp: f64,
    /// max over the comparison band (diagnostics).
    pub band_max: f64,
}

/// The elasticity detector.
#[derive(Debug, Clone)]
pub struct ElasticityDetector {
    cfg: ElasticityConfig,
    fft_plan: Fft,
    /// Multiplier on the η threshold (and the controller scales the
    /// minimum-peak guard by the same factor): the µ-error-aware
    /// ẑ-conditioning stage raises the detection bar when the µ estimate is
    /// uncertain.  `1.0` (the default) reproduces the paper's fixed
    /// threshold exactly.
    eta_scale: f64,
    /// Log of every verdict, for experiment post-processing.
    verdicts: Vec<DetectorVerdict>,
}

impl ElasticityDetector {
    /// Create a detector.
    pub fn new(cfg: ElasticityConfig) -> Self {
        let n = cfg.window_samples().max(8);
        ElasticityDetector {
            cfg,
            fft_plan: Fft::new(n),
            eta_scale: 1.0,
            verdicts: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ElasticityConfig {
        &self.cfg
    }

    /// Change the pulse frequency being looked for (used by watchers that
    /// track the pulser's mode, and by the 2 Hz slow-pulse variant of App. F).
    pub fn set_pulse_freq(&mut self, freq_hz: f64) {
        self.cfg.pulse_freq_hz = freq_hz;
    }

    /// Update the minimum-peak guard (the Nimbus controller keeps this at a
    /// fraction of its µ estimate, which may itself be learned at runtime).
    pub fn set_min_peak_bps(&mut self, min_peak_bps: f64) {
        self.cfg.min_peak_bps = min_peak_bps;
    }

    /// Scale the η threshold (µ-error-aware ẑ conditioning,
    /// [`crate::estimator::ZFilterConfig::Adaptive`]).  `1.0` restores the
    /// configured threshold exactly.
    pub fn set_eta_scale(&mut self, scale: f64) {
        self.eta_scale = scale;
    }

    /// Compute the elasticity metric η for a ẑ series sampled at the
    /// configured rate.  Returns `None` until a full window of samples exists.
    pub fn eta(&self, z_series: &[f64]) -> Option<(f64, f64, f64)> {
        let needed = self.cfg.window_samples();
        if z_series.len() < needed {
            return None;
        }
        let window = &z_series[z_series.len() - needed..];
        let mut buf: Vec<f64> = window.to_vec();
        self.cfg.window.apply(&mut buf);
        let spectrum =
            Spectrum::of_signal_with_plan(&self.fft_plan, &buf, self.cfg.sample_rate_hz(), true);
        let fp = self.cfg.pulse_freq_hz;
        let peak = spectrum.peak_near(fp, self.cfg.peak_tolerance_hz);
        // The comparison band (f_p, 2 f_p): start just above the peak
        // tolerance so the pulse's own leakage is not counted.
        let band = spectrum.peak_in_open_band(fp + self.cfg.peak_tolerance_hz, 2.0 * fp);
        let eta = if band > 0.0 {
            peak / band
        } else {
            f64::INFINITY
        };
        Some((eta, peak, band))
    }

    /// Evaluate the detector at time `t_s` on the current ẑ series and record
    /// the verdict.  Returns `None` until a full window of samples exists.
    pub fn evaluate(&mut self, t_s: f64, z_series: &[f64]) -> Option<DetectorVerdict> {
        let (eta, peak, band) = self.eta(z_series)?;
        let verdict = DetectorVerdict {
            t_s,
            eta,
            elastic: eta >= self.cfg.eta_threshold * self.eta_scale
                && peak >= self.cfg.min_peak_bps,
            peak_at_fp: peak,
            band_max: band,
        };
        self.verdicts.push(verdict);
        Some(verdict)
    }

    /// The most recent verdict, if any.
    pub fn last_verdict(&self) -> Option<DetectorVerdict> {
        self.verdicts.last().copied()
    }

    /// Every verdict recorded so far.
    pub fn verdicts(&self) -> &[DetectorVerdict] {
        &self.verdicts
    }

    /// Fraction of recorded verdicts (in `[t0, t1]`) that judged the traffic elastic.
    pub fn elastic_fraction(&self, t0_s: f64, t1_s: f64) -> f64 {
        let in_range: Vec<&DetectorVerdict> = self
            .verdicts
            .iter()
            .filter(|v| v.t_s >= t0_s && v.t_s <= t1_s)
            .collect();
        if in_range.is_empty() {
            return 0.0;
        }
        in_range.iter().filter(|v| v.elastic).count() as f64 / in_range.len() as f64
    }

    /// The time-domain alternative the paper discards (§3.3): normalized
    /// cross-correlation between the pulse waveform `s(t)` and `ẑ(t)`,
    /// maximized over lags up to `max_lag_s`.  Exposed for the ablation bench.
    pub fn cross_correlation(&self, pulse_series: &[f64], z_series: &[f64], max_lag_s: f64) -> f64 {
        let n = pulse_series.len().min(z_series.len());
        if n < 8 {
            return 0.0;
        }
        let s = &pulse_series[pulse_series.len() - n..];
        let z = &z_series[z_series.len() - n..];
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let ms = mean(s);
        let mz = mean(z);
        let norm_s: f64 = s.iter().map(|x| (x - ms) * (x - ms)).sum::<f64>().sqrt();
        let norm_z: f64 = z.iter().map(|x| (x - mz) * (x - mz)).sum::<f64>().sqrt();
        if norm_s < 1e-12 || norm_z < 1e-12 {
            return 0.0;
        }
        let max_lag = ((max_lag_s / self.cfg.sample_interval_s) as usize).min(n / 2);
        let mut best: f64 = 0.0;
        for lag in 0..=max_lag {
            let mut acc = 0.0;
            for i in 0..n - lag {
                acc += (s[i] - ms) * (z[i + lag] - mz);
            }
            best = best.max((acc / (norm_s * norm_z)).abs());
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_dsp::PulseGenerator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesize a ẑ series: `base + reaction·pulse(t - lag) + noise`.
    fn synthetic_z(
        cfg: &ElasticityConfig,
        secs: f64,
        base: f64,
        reaction_amp: f64,
        lag_s: f64,
        noise_amp: f64,
        seed: u64,
    ) -> Vec<f64> {
        let gen = PulseGenerator::asymmetric(cfg.pulse_freq_hz, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (secs / cfg.sample_interval_s) as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 * cfg.sample_interval_s;
                // Elastic cross traffic reacts inversely to the pulse, one RTT later.
                let reaction = -reaction_amp * gen.offset_at(t - lag_s);
                let noise = noise_amp * (rng.gen::<f64>() - 0.5) * 2.0;
                (base + reaction + noise).max(0.0)
            })
            .collect()
    }

    #[test]
    fn needs_a_full_window_before_deciding() {
        let cfg = ElasticityConfig::default();
        let mut det = ElasticityDetector::new(cfg.clone());
        let short = vec![1e6; cfg.window_samples() - 1];
        assert!(det.evaluate(1.0, &short).is_none());
        let full = vec![1e6; cfg.window_samples()];
        assert!(det.evaluate(2.0, &full).is_some());
        assert_eq!(det.verdicts().len(), 1);
    }

    #[test]
    fn reacting_cross_traffic_is_classified_elastic() {
        let cfg = ElasticityConfig::default();
        let mut det = ElasticityDetector::new(cfg.clone());
        // Cross traffic reacting (after a 50 ms RTT) with amplitude 8 Mbit/s,
        // noise 2 Mbit/s.
        let z = synthetic_z(&cfg, 6.0, 48e6, 8e6, 0.05, 2e6, 1);
        let v = det.evaluate(6.0, &z).unwrap();
        assert!(v.elastic, "eta = {}", v.eta);
        assert!(v.eta > 2.0);
    }

    #[test]
    fn non_reacting_cross_traffic_is_classified_inelastic() {
        let cfg = ElasticityConfig::default();
        let mut det = ElasticityDetector::new(cfg.clone());
        // Pure noise around a constant rate: no component at f_p beyond chance.
        let z = synthetic_z(&cfg, 6.0, 48e6, 0.0, 0.0, 6e6, 2);
        let v = det.evaluate(6.0, &z).unwrap();
        assert!(!v.elastic, "eta = {}", v.eta);
    }

    #[test]
    fn detection_is_robust_to_the_cross_traffic_rtt() {
        // §3.3: the frequency-domain method does not need to know the cross
        // traffic's RTT.  Sweep the reaction lag from 10 ms to 200 ms.
        let cfg = ElasticityConfig::default();
        for lag_ms in [10.0, 50.0, 100.0, 150.0, 200.0] {
            let mut det = ElasticityDetector::new(cfg.clone());
            let z = synthetic_z(&cfg, 6.0, 48e6, 8e6, lag_ms / 1000.0, 2e6, 3);
            let v = det.evaluate(6.0, &z).unwrap();
            assert!(v.elastic, "lag {lag_ms} ms: eta = {}", v.eta);
        }
    }

    #[test]
    fn eta_grows_with_the_elastic_fraction() {
        // Fig. 6: the more of the cross traffic is elastic, the higher η.
        let cfg = ElasticityConfig::default();
        let det = ElasticityDetector::new(cfg.clone());
        let eta_for = |amp: f64| {
            let z = synthetic_z(&cfg, 6.0, 48e6, amp, 0.05, 3e6, 7);
            det.eta(&z).unwrap().0
        };
        let none = eta_for(0.0);
        let some = eta_for(4e6);
        let lots = eta_for(12e6);
        assert!(some > none, "{some} vs {none}");
        assert!(lots > some, "{lots} vs {some}");
    }

    #[test]
    fn mixed_rtts_superimpose_rather_than_cancel() {
        // Two elastic responses with different RTTs still produce a peak at f_p.
        let cfg = ElasticityConfig::default();
        let mut det = ElasticityDetector::new(cfg.clone());
        let a = synthetic_z(&cfg, 6.0, 24e6, 5e6, 0.03, 1e6, 11);
        let b = synthetic_z(&cfg, 6.0, 24e6, 5e6, 0.17, 1e6, 12);
        let z: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        let v = det.evaluate(6.0, &z).unwrap();
        assert!(v.elastic, "eta = {}", v.eta);
    }

    #[test]
    fn verdict_log_and_fraction() {
        let cfg = ElasticityConfig::default();
        let mut det = ElasticityDetector::new(cfg.clone());
        let elastic = synthetic_z(&cfg, 6.0, 48e6, 8e6, 0.05, 2e6, 4);
        let inelastic = synthetic_z(&cfg, 6.0, 48e6, 0.0, 0.0, 6e6, 5);
        det.evaluate(1.0, &elastic);
        det.evaluate(2.0, &elastic);
        det.evaluate(3.0, &inelastic);
        assert_eq!(det.verdicts().len(), 3);
        assert!((det.elastic_fraction(0.0, 10.0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((det.elastic_fraction(2.5, 10.0) - 0.0).abs() < 1e-9);
        assert!(det.last_verdict().is_some());
    }

    #[test]
    fn changing_pulse_frequency_moves_the_detection_band() {
        // A detector listening at 2 Hz must not fire on a 5 Hz reaction
        // (and vice versa) — this is what Appendix F exploits.
        let cfg5 = ElasticityConfig::default();
        let z5 = synthetic_z(&cfg5, 6.0, 48e6, 8e6, 0.05, 2e6, 21);
        let mut det2 = ElasticityDetector::new(ElasticityConfig {
            pulse_freq_hz: 2.0,
            ..ElasticityConfig::default()
        });
        let v = det2.evaluate(6.0, &z5).unwrap();
        assert!(
            !v.elastic,
            "2 Hz detector fired on 5 Hz reaction: eta {}",
            v.eta
        );
    }

    #[test]
    fn cross_correlation_needs_alignment_but_fft_does_not() {
        // The time-domain method degrades with unknown lag; the FFT does not.
        let cfg = ElasticityConfig::default();
        let det = ElasticityDetector::new(cfg.clone());
        let gen = PulseGenerator::asymmetric(cfg.pulse_freq_hz, 1.0);
        let n = (6.0 / cfg.sample_interval_s) as usize;
        let pulses: Vec<f64> = (0..n)
            .map(|i| gen.offset_at(i as f64 * cfg.sample_interval_s))
            .collect();
        let aligned = synthetic_z(&cfg, 6.0, 48e6, 8e6, 0.0, 1e6, 31);
        let late = synthetic_z(&cfg, 6.0, 48e6, 8e6, 0.13, 1e6, 31);
        // With zero allowed lag the correlation collapses for the late signal...
        let c_aligned = det.cross_correlation(&pulses, &aligned, 0.0);
        let c_late = det.cross_correlation(&pulses, &late, 0.0);
        assert!(c_aligned > c_late * 1.5, "{c_aligned} vs {c_late}");
        // ...while η stays high for both.
        let eta_late = det.eta(&late).unwrap().0;
        assert!(eta_late > 2.0);
    }
}
