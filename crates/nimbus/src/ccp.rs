//! CCP-style measurement reports.
//!
//! The paper implements Nimbus on CCP \[23\], whose datapath reports aggregate
//! measurements to the user-space controller every 10 ms (§4.2): bytes acked,
//! losses, the RTT, and — crucially for Nimbus — the send rate `S` and receive
//! rate `R` measured over the most recent window of packets (Eq. 2).
//!
//! [`ReportAggregator`] reproduces that interface.  The sender machinery feeds
//! it one record per ACK; congestion controllers receive a [`Report`] on every
//! tick.  `S` and `R` are computed over the ACKs received in the last
//! `measurement_window` (one RTT by default, per §3.4: "we measure rates over
//! an RTT because sub-RTT measurements are confounded by burstiness").

use nimbus_core_types::Time;
use std::collections::VecDeque;

/// One per-ACK record kept by the aggregator.
#[derive(Debug, Clone, Copy)]
struct AckRecord {
    /// When the data packet was sent.
    sent_at: Time,
    /// When its ACK arrived back at the sender.
    acked_at: Time,
    /// Bytes covered by this ACK (newly acknowledged).
    bytes: u64,
}

/// Aggregate measurements delivered to a congestion controller on each tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Report timestamp (seconds).
    pub now_s: f64,
    /// Send rate `S` over the measurement window, bits/s (Eq. 2).
    pub send_rate_bps: f64,
    /// Receive rate `R` over the measurement window, bits/s (Eq. 2).
    pub recv_rate_bps: f64,
    /// Bytes newly acknowledged since the previous report.
    pub acked_bytes: u64,
    /// Packets detected lost since the previous report.
    pub lost_packets: u64,
    /// Latest RTT sample (seconds), 0 if none yet.
    pub rtt_s: f64,
    /// Minimum RTT observed so far (seconds), 0 if none yet.
    pub min_rtt_s: f64,
    /// Number of ACKs in the measurement window.
    pub window_acks: usize,
    /// ACKs carrying a CE echo since the previous report (0 on non-ECN
    /// flows, so mark-aware consumers stay inert there).
    pub marked_packets: u64,
    /// Bytes of the CE-marked data segments behind those echoes.
    pub marked_bytes: u64,
}

/// Builds [`Report`]s from per-ACK records.
#[derive(Debug, Clone)]
pub struct ReportAggregator {
    records: VecDeque<AckRecord>,
    /// Length of the S/R measurement window.
    measurement_window: Time,
    acked_since_report: u64,
    lost_since_report: u64,
    marked_packets_since_report: u64,
    marked_bytes_since_report: u64,
    latest_rtt: Time,
    min_rtt: Option<Time>,
}

impl ReportAggregator {
    /// Create an aggregator with the given S/R measurement window
    /// (typically one RTT; it can be updated as the RTT estimate moves).
    pub fn new(measurement_window: Time) -> Self {
        ReportAggregator {
            records: VecDeque::new(),
            measurement_window,
            acked_since_report: 0,
            lost_since_report: 0,
            marked_packets_since_report: 0,
            marked_bytes_since_report: 0,
            latest_rtt: Time::ZERO,
            min_rtt: None,
        }
    }

    /// Update the measurement window (e.g. to track the current RTT).
    pub fn set_measurement_window(&mut self, w: Time) {
        // Clamp to something sane so a bogus RTT estimate cannot blow up memory.
        self.measurement_window = w.max(Time::from_millis(10)).min(Time::from_millis(2000));
    }

    /// The current measurement window.
    pub fn measurement_window(&self) -> Time {
        self.measurement_window
    }

    /// Record one acknowledgement.
    pub fn on_ack(&mut self, sent_at: Time, acked_at: Time, newly_acked_bytes: u64, rtt: Time) {
        self.acked_since_report += newly_acked_bytes;
        self.latest_rtt = rtt;
        self.min_rtt = Some(match self.min_rtt {
            None => rtt,
            Some(m) => m.min(rtt),
        });
        if newly_acked_bytes > 0 {
            self.records.push_back(AckRecord {
                sent_at,
                acked_at,
                bytes: newly_acked_bytes,
            });
        }
        // Evict records older than ~4 windows so memory stays bounded even if
        // reports stop being drawn.
        let horizon = acked_at.saturating_sub(self.measurement_window.mul_f64(4.0));
        while let Some(front) = self.records.front() {
            if front.acked_at < horizon {
                self.records.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record detected losses (fast retransmit or timeout).
    pub fn on_loss(&mut self, packets: u64) {
        self.lost_since_report += packets;
    }

    /// Record one CE echo (an ACK whose triggering segment arrived marked).
    pub fn on_mark(&mut self, bytes: u64) {
        self.marked_packets_since_report += 1;
        self.marked_bytes_since_report += bytes;
    }

    /// Compute the send and receive rates (bits/s) over ACKs whose arrival
    /// falls within the measurement window ending at `now`, following Eq. 2:
    /// the same set of packets is used for both rates.
    pub fn rates(&self, now: Time) -> (f64, f64, usize) {
        let start = now.saturating_sub(self.measurement_window);
        let window: Vec<&AckRecord> = self
            .records
            .iter()
            .filter(|r| r.acked_at >= start)
            .collect();
        if window.len() < 2 {
            return (0.0, 0.0, window.len());
        }
        let first = window.first().unwrap();
        let last = window.last().unwrap();
        // Bytes covered by packets after the first (rate over n-1 gaps).
        let bytes: u64 = window.iter().skip(1).map(|r| r.bytes).sum();
        let send_span = last.sent_at.saturating_sub(first.sent_at).as_secs_f64();
        let recv_span = last.acked_at.saturating_sub(first.acked_at).as_secs_f64();
        let s = if send_span > 1e-9 {
            bytes as f64 * 8.0 / send_span
        } else {
            0.0
        };
        let r = if recv_span > 1e-9 {
            bytes as f64 * 8.0 / recv_span
        } else {
            0.0
        };
        (s, r, window.len())
    }

    /// Produce the report for the tick at `now` and reset the per-report counters.
    pub fn report(&mut self, now: Time) -> Report {
        let (s, r, n) = self.rates(now);
        let rep = Report {
            now_s: now.as_secs_f64(),
            send_rate_bps: s,
            recv_rate_bps: r,
            acked_bytes: self.acked_since_report,
            lost_packets: self.lost_since_report,
            rtt_s: self.latest_rtt.as_secs_f64(),
            min_rtt_s: self.min_rtt.map(|m| m.as_secs_f64()).unwrap_or(0.0),
            window_acks: n,
            marked_packets: self.marked_packets_since_report,
            marked_bytes: self.marked_bytes_since_report,
        };
        self.acked_since_report = 0;
        self.lost_since_report = 0;
        self.marked_packets_since_report = 0;
        self.marked_bytes_since_report = 0;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed ACKs for packets sent at a constant rate and acked at a constant
    /// (possibly different) rate, and check S and R.
    fn feed_constant(
        agg: &mut ReportAggregator,
        n: usize,
        send_gap_ms: f64,
        ack_gap_ms: f64,
        bytes: u64,
        ack_start_ms: f64,
    ) -> Time {
        let mut last_ack = Time::ZERO;
        for i in 0..n {
            let sent = Time::from_millis_f64(i as f64 * send_gap_ms);
            let acked = Time::from_millis_f64(ack_start_ms + i as f64 * ack_gap_ms);
            let rtt = acked.saturating_sub(sent);
            agg.on_ack(sent, acked, bytes, rtt);
            last_ack = acked;
        }
        last_ack
    }

    #[test]
    fn send_and_receive_rates_match_construction() {
        let mut agg = ReportAggregator::new(Time::from_millis(500));
        // 1500-byte packets sent every 1 ms (12 Mbit/s), acked every 2 ms (6 Mbit/s).
        let now = feed_constant(&mut agg, 100, 1.0, 2.0, 1500, 50.0);
        let (s, r, n) = agg.rates(now);
        assert!(n > 50);
        assert!((s - 12e6).abs() < 0.5e6, "S {s}");
        assert!((r - 6e6).abs() < 0.3e6, "R {r}");
    }

    #[test]
    fn rates_use_only_the_window() {
        let mut agg = ReportAggregator::new(Time::from_millis(100));
        // Early slow phase then a fast phase; the window should only see the
        // fast phase.
        feed_constant(&mut agg, 50, 10.0, 10.0, 1500, 20.0); // 1.2 Mbit/s for 0.5 s
                                                             // Fast phase starting at 600 ms: 12 Mbit/s.
        for i in 0..100u64 {
            let sent = Time::from_millis_f64(600.0 + i as f64);
            let acked = Time::from_millis_f64(620.0 + i as f64);
            agg.on_ack(sent, acked, 1500, Time::from_millis(20));
        }
        let now = Time::from_millis_f64(720.0);
        let (s, _r, _) = agg.rates(now);
        assert!((s - 12e6).abs() < 1e6, "S {s}");
    }

    #[test]
    fn report_resets_counters() {
        let mut agg = ReportAggregator::new(Time::from_millis(200));
        agg.on_ack(
            Time::ZERO,
            Time::from_millis(10),
            3000,
            Time::from_millis(10),
        );
        agg.on_loss(2);
        let rep = agg.report(Time::from_millis(10));
        assert_eq!(rep.acked_bytes, 3000);
        assert_eq!(rep.lost_packets, 2);
        assert!((rep.rtt_s - 0.01).abs() < 1e-9);
        let rep2 = agg.report(Time::from_millis(20));
        assert_eq!(rep2.acked_bytes, 0);
        assert_eq!(rep2.lost_packets, 0);
    }

    #[test]
    fn too_few_acks_give_zero_rates() {
        let mut agg = ReportAggregator::new(Time::from_millis(100));
        let (s, r, n) = agg.rates(Time::from_millis(50));
        assert_eq!((s, r, n), (0.0, 0.0, 0));
        agg.on_ack(
            Time::ZERO,
            Time::from_millis(10),
            1500,
            Time::from_millis(10),
        );
        let (s, r, n) = agg.rates(Time::from_millis(50));
        assert_eq!((s, r), (0.0, 0.0));
        assert_eq!(n, 1);
    }

    #[test]
    fn min_rtt_is_preserved_across_reports() {
        let mut agg = ReportAggregator::new(Time::from_millis(100));
        agg.on_ack(
            Time::ZERO,
            Time::from_millis(50),
            1500,
            Time::from_millis(50),
        );
        agg.on_ack(
            Time::ZERO,
            Time::from_millis(100),
            1500,
            Time::from_millis(100),
        );
        let rep = agg.report(Time::from_millis(100));
        assert!((rep.min_rtt_s - 0.05).abs() < 1e-9);
        assert!((rep.rtt_s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn measurement_window_is_clamped() {
        let mut agg = ReportAggregator::new(Time::from_millis(100));
        agg.set_measurement_window(Time::from_secs_f64(100.0));
        assert_eq!(agg.measurement_window(), Time::from_millis(2000));
        agg.set_measurement_window(Time::ZERO);
        assert_eq!(agg.measurement_window(), Time::from_millis(10));
    }
}
