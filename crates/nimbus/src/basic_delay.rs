//! BasicDelay: the paper's simple delay-controlling algorithm (Eq. 4, §4.1).
//!
//! On every measurement update the rate is set to
//!
//! ```text
//! rate ← S + α·(µ − S − ẑ) + (β·µ/x)·(x_min + d_t − x)
//! ```
//!
//! where `S` is the send rate over the last window, `ẑ` the cross-traffic
//! estimate, `x` the current RTT, `x_min` the minimum RTT and `d_t` a target
//! queueing delay.  The first correction chases the spare capacity
//! (`µ − S − ẑ`); the second holds the queueing delay near `d_t`, which keeps
//! the bottleneck busy — a non-empty queue is exactly what the cross-traffic
//! estimator needs (Eq. 1 is only valid while the link is busy).
//!
//! The paper's WAN experiments use `α = 0.8`, `β = 0.5`, `d_t = 12.5 ms`.

use crate::cc::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use crate::ccp::Report;
use nimbus_core_types::Time;
use serde::{Deserialize, Serialize};

/// BasicDelay parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BasicDelayConfig {
    /// Gain on the spare-capacity term (`α < 1`).
    pub alpha: f64,
    /// Gain on the delay-error term (`β < 1`).
    pub beta: f64,
    /// Target queueing delay `d_t`, seconds.
    pub target_queue_delay_s: f64,
    /// Bottleneck link rate `µ`, bits/s.
    pub mu_bps: f64,
    /// Floor on the rate so the flow can always keep probing, bits/s.
    pub min_rate_bps: f64,
}

impl BasicDelayConfig {
    /// The paper's parameters (§8.1) for a link of rate `mu_bps`.
    pub fn paper_defaults(mu_bps: f64) -> Self {
        BasicDelayConfig {
            alpha: 0.8,
            beta: 0.5,
            target_queue_delay_s: 0.0125,
            mu_bps,
            min_rate_bps: mu_bps / 50.0,
        }
    }
}

/// The BasicDelay controller.
///
/// It needs the cross-traffic estimate ẑ, which the Nimbus controller feeds
/// it via [`BasicDelay::set_cross_traffic_estimate`]; run standalone (without
/// Nimbus) it assumes ẑ = 0 and behaves like a pure delay-target controller.
#[derive(Debug, Clone)]
pub struct BasicDelay {
    cfg: BasicDelayConfig,
    rate_bps: f64,
    z_bps: f64,
    min_rtt_s: f64,
    last_rtt_s: f64,
    last_send_rate_bps: f64,
}

impl BasicDelay {
    /// Create a BasicDelay controller.
    pub fn new(cfg: BasicDelayConfig) -> Self {
        let initial = (cfg.mu_bps / 10.0).max(cfg.min_rate_bps);
        BasicDelay {
            cfg,
            rate_bps: initial,
            z_bps: 0.0,
            min_rtt_s: f64::INFINITY,
            last_rtt_s: 0.0,
            last_send_rate_bps: initial,
        }
    }

    /// Provide the latest cross-traffic estimate ẑ (bits/s).
    pub fn set_cross_traffic_estimate(&mut self, z_bps: f64) {
        self.z_bps = z_bps.max(0.0);
    }

    /// The current target rate (bits/s).
    pub fn current_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Directly set the rate (used by Nimbus when switching modes).
    pub fn set_rate(&mut self, rate_bps: f64) {
        self.rate_bps = rate_bps.max(self.cfg.min_rate_bps);
    }

    /// Apply Eq. 4 given the latest measurements.
    fn update_rate(&mut self, send_rate_bps: f64, rtt_s: f64) {
        if rtt_s <= 0.0 || !self.min_rtt_s.is_finite() {
            return;
        }
        let s = if send_rate_bps > 0.0 {
            send_rate_bps
        } else {
            self.rate_bps
        };
        let spare = self.cfg.mu_bps - s - self.z_bps;
        let delay_err = self.min_rtt_s + self.cfg.target_queue_delay_s - rtt_s;
        let rate = s + self.cfg.alpha * spare + self.cfg.beta * self.cfg.mu_bps / rtt_s * delay_err;
        self.rate_bps = rate.clamp(self.cfg.min_rate_bps, self.cfg.mu_bps * 1.05);
    }
}

impl CongestionControl for BasicDelay {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let rtt = ack.rtt.as_secs_f64();
        self.last_rtt_s = rtt;
        self.min_rtt_s = self.min_rtt_s.min(rtt);
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        // Delay is the primary signal; on loss just ease off multiplicatively.
        self.rate_bps = (self.rate_bps * 0.9).max(self.cfg.min_rate_bps);
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.rate_bps = self.cfg.min_rate_bps;
            }
            // Pure delay controller: the RTT term is its congestion signal.
            CongestionEvent::EcnCe { .. } => {}
        }
    }

    fn on_report(&mut self, report: &Report) {
        if report.rtt_s > 0.0 {
            self.last_rtt_s = report.rtt_s;
            self.min_rtt_s = self.min_rtt_s.min(report.rtt_s);
        }
        if report.send_rate_bps > 0.0 {
            self.last_send_rate_bps = report.send_rate_bps;
        }
        let rtt = if report.rtt_s > 0.0 {
            report.rtt_s
        } else {
            self.last_rtt_s
        };
        if rtt > 0.0 {
            self.update_rate(self.last_send_rate_bps, rtt);
        }
    }

    fn cwnd_packets(&self) -> f64 {
        // A generous cap of 2·rate·RTT keeps the window from limiting the
        // paced rate while still bounding the worst case.
        let rtt = if self.last_rtt_s > 0.0 {
            self.last_rtt_s
        } else {
            0.1
        };
        (2.0 * self.rate_bps * rtt / 8.0 / 1500.0).max(4.0)
    }

    fn pacing_rate_bps(&self, _now: Time) -> Option<f64> {
        Some(self.rate_bps)
    }

    fn reinitialize(&mut self, rate_bps: f64, _rtt_s: f64, _mss: u32) {
        self.set_rate(rate_bps);
    }

    fn name(&self) -> &'static str {
        "basic-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(now_s: f64, s_bps: f64, rtt_s: f64) -> Report {
        Report {
            now_s,
            send_rate_bps: s_bps,
            recv_rate_bps: s_bps,
            acked_bytes: 0,
            lost_packets: 0,
            rtt_s,
            min_rtt_s: 0.05,
            window_acks: 30,
            marked_packets: 0,
            marked_bytes: 0,
        }
    }

    fn ack(rtt_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis_f64(100.0),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis_f64(rtt_ms),
            min_rtt: Time::from_millis_f64(50.0),
            in_flight_packets: 10,
            mss: 1500,
        }
    }

    #[test]
    fn rate_climbs_towards_spare_capacity() {
        let mut cc = BasicDelay::new(BasicDelayConfig::paper_defaults(96e6));
        cc.on_packet_acked(&ack(50.0));
        // No cross traffic, RTT at the minimum: the rate should converge to ~µ.
        let mut s = cc.current_rate_bps();
        for i in 0..200 {
            cc.on_report(&report(i as f64 * 0.01, s, 0.0505));
            s = cc.current_rate_bps();
        }
        assert!(s > 90e6, "rate {s}");
    }

    #[test]
    fn rate_leaves_room_for_cross_traffic() {
        let mut cc = BasicDelay::new(BasicDelayConfig::paper_defaults(96e6));
        cc.on_packet_acked(&ack(50.0));
        cc.set_cross_traffic_estimate(48e6);
        // Hold the RTT exactly at x_min + d_t so the delay term vanishes and
        // the spare-capacity term alone sets the equilibrium: rate → µ − z.
        let mut s = cc.current_rate_bps();
        for i in 0..300 {
            cc.on_report(&report(i as f64 * 0.01, s, 0.0625));
            s = cc.current_rate_bps();
        }
        assert!((s - 48e6).abs() < 8e6, "rate {s} should hover near µ − z");
    }

    #[test]
    fn high_delay_pushes_the_rate_down() {
        let mut cc = BasicDelay::new(BasicDelayConfig::paper_defaults(96e6));
        cc.on_packet_acked(&ack(50.0));
        cc.set_rate(90e6);
        // RTT far above min + target: strong negative correction.
        cc.on_report(&report(0.0, 90e6, 0.120));
        assert!(cc.current_rate_bps() < 90e6);
    }

    #[test]
    fn queue_is_kept_slightly_full_not_empty() {
        // At exactly x = x_min + d_t the delay term vanishes; below the target
        // the correction is positive (keep the queue from emptying).
        let cfg = BasicDelayConfig::paper_defaults(96e6);
        let mut cc = BasicDelay::new(cfg);
        cc.on_packet_acked(&ack(50.0));
        cc.set_cross_traffic_estimate(96e6 - 40e6); // spare ≈ 0 when S = 40M
        cc.on_report(&report(0.0, 40e6, 0.050)); // queue empty: x == x_min
        assert!(
            cc.current_rate_bps() > 40e6,
            "should push the rate up to build the target queue"
        );
    }

    #[test]
    fn loss_and_timeout_back_off() {
        let mut cc = BasicDelay::new(BasicDelayConfig::paper_defaults(48e6));
        cc.set_rate(40e6);
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 10,
        });
        assert!(cc.current_rate_bps() < 40e6);
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!(cc.current_rate_bps() <= 48e6 / 50.0 + 1.0);
    }

    #[test]
    fn rate_is_always_within_physical_bounds() {
        let cfg = BasicDelayConfig::paper_defaults(96e6);
        let mut cc = BasicDelay::new(cfg);
        cc.on_packet_acked(&ack(50.0));
        cc.set_cross_traffic_estimate(200e6); // absurd estimate
        cc.on_report(&report(0.0, 96e6, 0.3));
        assert!(cc.current_rate_bps() >= cfg.min_rate_bps);
        assert!(cc.current_rate_bps() <= 96e6 * 1.05);
        assert!(cc.pacing_rate_bps(Time::ZERO).unwrap() > 0.0);
        assert!(cc.cwnd_packets() >= 4.0);
    }

    #[test]
    fn reinitialize_sets_the_rate() {
        let mut cc = BasicDelay::new(BasicDelayConfig::paper_defaults(96e6));
        cc.reinitialize(30e6, 0.05, 1500);
        assert!((cc.current_rate_bps() - 30e6).abs() < 1.0);
    }
}
