//! Pulser/watcher coordination for multiple Nimbus flows (§6 of the paper).
//!
//! When several Nimbus flows share a bottleneck, exactly one of them should
//! pulse (the *pulser*); the others (*watchers*) must neither pulse nor react
//! to the pulser's oscillation (or the pulser would classify them as elastic
//! and everyone would get stuck in TCP-competitive mode).  Coordination is
//! implicit — no communication channel exists:
//!
//! * The pulser pulses at `f_pc` (5 Hz) in TCP-competitive mode and `f_pd`
//!   (6 Hz) in delay mode, so watchers can read the pulser's mode out of
//!   their own receive-rate spectrum.
//! * A watcher smooths its transmission rate with an EWMA whose cutoff lies
//!   below `min(f_pc, f_pd)` so it does not echo the pulses.
//! * If no pulser is detected, each flow volunteers with probability
//!   `p_i = (κ·τ / FFT duration) · (R_i / µ)` every `τ = 10 ms` (Eq. 5),
//!   which bounds the expected number of new pulsers per FFT window by `κ`.
//! * A pulser that sees *more* oscillation at `f_p` in the cross traffic than
//!   in its own receive rate concludes another pulser exists and steps down
//!   with a fixed probability.

use nimbus_dsp::{Ewma, Spectrum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The role a Nimbus flow currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// This flow modulates its rate with pulses and runs the elasticity detector.
    Pulser,
    /// This flow watches the pulser's pulses in its own receive rate.
    Watcher,
}

/// Multi-flow coordination parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiflowConfig {
    /// Whether coordination is enabled at all.  Disabled (single-flow mode)
    /// the flow is always the pulser.
    pub enabled: bool,
    /// Pulse frequency used in TCP-competitive mode (`f_pc`, 5 Hz).
    pub freq_competitive_hz: f64,
    /// Pulse frequency used in delay mode (`f_pd`, 6 Hz).
    pub freq_delay_hz: f64,
    /// Expected number of volunteers per FFT window (κ).
    pub kappa: f64,
    /// Decision interval τ, seconds.
    pub decision_interval_s: f64,
    /// Peak-to-band ratio above which a pulser is considered present in the
    /// receive-rate spectrum.
    pub presence_threshold: f64,
    /// Probability of stepping down when multiple pulsers are suspected.
    pub step_down_probability: f64,
    /// EWMA cutoff (Hz) applied to a watcher's transmission rate.
    pub watcher_cutoff_hz: f64,
}

impl Default for MultiflowConfig {
    fn default() -> Self {
        MultiflowConfig {
            enabled: false,
            freq_competitive_hz: 5.0,
            freq_delay_hz: 6.0,
            kappa: 1.0,
            decision_interval_s: 0.01,
            presence_threshold: 4.0,
            step_down_probability: 0.5,
            watcher_cutoff_hz: 2.0,
        }
    }
}

impl MultiflowConfig {
    /// A configuration with coordination enabled and the paper's frequencies.
    pub fn enabled() -> Self {
        MultiflowConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// What a watcher read out of its receive-rate spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PulserPresence {
    /// No pulser detected at either frequency.
    None,
    /// A pulser pulsing at `f_pc` (competitive mode) was detected.
    Competitive,
    /// A pulser pulsing at `f_pd` (delay mode) was detected.
    Delay,
}

/// The multi-flow coordination state machine for one Nimbus flow.
#[derive(Debug)]
pub struct Multiflow {
    cfg: MultiflowConfig,
    role: Role,
    rng: StdRng,
    /// EWMA on the transmission rate for watcher smoothing.
    rate_smoother: Ewma,
    /// Log of `(time, role)` changes for experiment post-processing.
    role_log: Vec<(f64, Role)>,
    last_decision_s: f64,
    /// FFT duration used in the election probability (Eq. 5).
    fft_duration_s: f64,
}

impl Multiflow {
    /// Create the coordination state for one flow.
    ///
    /// With coordination disabled the flow is a permanent [`Role::Pulser`];
    /// with it enabled every flow starts as a [`Role::Watcher`] and must win
    /// the election to start pulsing (§6: "Each new flow begins as a watcher").
    pub fn new(cfg: MultiflowConfig, fft_duration_s: f64, seed: u64) -> Self {
        let role = if cfg.enabled {
            Role::Watcher
        } else {
            Role::Pulser
        };
        let sample_interval = cfg.decision_interval_s;
        let cutoff = cfg.watcher_cutoff_hz;
        let mut mf = Multiflow {
            cfg,
            role,
            rng: StdRng::seed_from_u64(seed ^ 0x853c49e6748fea9b),
            rate_smoother: Ewma::with_cutoff(cutoff, sample_interval),
            role_log: Vec::new(),
            last_decision_s: 0.0,
            fft_duration_s,
        };
        mf.role_log.push((0.0, role));
        mf
    }

    /// The flow's current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Role change history as `(time_s, role)` pairs.
    pub fn role_log(&self) -> &[(f64, Role)] {
        &self.role_log
    }

    /// Smooth the transmission rate for watcher flows; pulser rates pass through.
    pub fn shape_rate(&mut self, raw_rate_bps: f64) -> f64 {
        if self.role == Role::Watcher && self.cfg.enabled {
            self.rate_smoother.update(raw_rate_bps)
        } else {
            // Keep the smoother warm so a role change does not start cold.
            self.rate_smoother.update(raw_rate_bps);
            raw_rate_bps
        }
    }

    /// Inspect the receive-rate series for a pulser's signature and return
    /// which (if any) pulsing frequency dominates.
    ///
    /// Presence is judged against the *median* spectral magnitude of the
    /// surrounding band rather than its maximum: the asymmetric pulse has
    /// harmonics at multiples of `f_p`, and a max-based background would let
    /// the pulser's own harmonics mask its fundamental.
    pub fn detect_pulser(&self, recv_rate_series: &[f64], sample_rate_hz: f64) -> PulserPresence {
        if recv_rate_series.len() < 64 {
            return PulserPresence::None;
        }
        let spectrum = Spectrum::of_signal(recv_rate_series, sample_rate_hz, true);
        let tol = 0.3;
        let fc = self.cfg.freq_competitive_hz;
        let fd = self.cfg.freq_delay_hz;
        let peak_c = spectrum.peak_near(fc, tol);
        let peak_d = spectrum.peak_near(fd, tol);
        // Background: median magnitude between 1 Hz and 2·max(fc, fd),
        // excluding the neighbourhoods of fc and fd themselves.
        let hi = fc.max(fd);
        let mut background_bins: Vec<f64> = Vec::new();
        for (bin, &mag) in spectrum.magnitudes.iter().enumerate() {
            let f = spectrum.frequency_of_bin(bin);
            if f <= 1.0 || f >= 2.0 * hi {
                continue;
            }
            if (f - fc).abs() <= tol || (f - fd).abs() <= tol {
                continue;
            }
            background_bins.push(mag);
        }
        let background = nimbus_dsp::stats::median(&background_bins).max(1e-9);
        let c_present = peak_c / background >= self.cfg.presence_threshold;
        let d_present = peak_d / background >= self.cfg.presence_threshold;
        match (c_present, d_present) {
            (false, false) => PulserPresence::None,
            _ => {
                if peak_c >= peak_d {
                    PulserPresence::Competitive
                } else {
                    PulserPresence::Delay
                }
            }
        }
    }

    /// Run one watcher election decision (Eq. 5).  `recv_rate_bps` is this
    /// flow's receive rate `R_i`, `mu_bps` the bottleneck rate.  Returns true
    /// if the flow just became the pulser.
    pub fn maybe_become_pulser(
        &mut self,
        now_s: f64,
        pulser_detected: bool,
        recv_rate_bps: f64,
        mu_bps: f64,
    ) -> bool {
        if !self.cfg.enabled || self.role == Role::Pulser {
            return false;
        }
        if now_s - self.last_decision_s < self.cfg.decision_interval_s {
            return false;
        }
        self.last_decision_s = now_s;
        if pulser_detected || mu_bps <= 0.0 {
            return false;
        }
        let p = (self.cfg.kappa * self.cfg.decision_interval_s / self.fft_duration_s)
            * (recv_rate_bps / mu_bps).clamp(0.0, 1.0);
        if self.rng.gen::<f64>() < p {
            self.role = Role::Pulser;
            self.role_log.push((now_s, Role::Pulser));
            true
        } else {
            false
        }
    }

    /// Pulser-side conflict resolution: if the cross traffic shows a stronger
    /// component at the pulsing frequency than the flow's own receive rate,
    /// another pulser probably exists; step down with a fixed probability.
    pub fn maybe_step_down(&mut self, now_s: f64, z_peak_at_fp: f64, recv_peak_at_fp: f64) -> bool {
        if !self.cfg.enabled || self.role != Role::Pulser {
            return false;
        }
        if z_peak_at_fp > recv_peak_at_fp && self.rng.gen::<f64>() < self.cfg.step_down_probability
        {
            self.role = Role::Watcher;
            self.role_log.push((now_s, Role::Watcher));
            true
        } else {
            false
        }
    }

    /// Force the role (used when coordination is disabled or in tests).
    pub fn set_role(&mut self, now_s: f64, role: Role) {
        if role != self.role {
            self.role = role;
            self.role_log.push((now_s, role));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_dsp::PulseGenerator;

    fn recv_series_with_pulses(freq: f64, secs: f64, amp: f64) -> Vec<f64> {
        let gen = PulseGenerator::asymmetric(freq, amp);
        (0..(secs * 100.0) as usize)
            .map(|i| 20e6 + gen.offset_at(i as f64 * 0.01))
            .collect()
    }

    #[test]
    fn disabled_config_is_always_pulser() {
        let mf = Multiflow::new(MultiflowConfig::default(), 5.0, 1);
        assert_eq!(mf.role(), Role::Pulser);
    }

    #[test]
    fn enabled_config_starts_as_watcher() {
        let mf = Multiflow::new(MultiflowConfig::enabled(), 5.0, 1);
        assert_eq!(mf.role(), Role::Watcher);
        assert_eq!(mf.role_log().len(), 1);
    }

    #[test]
    fn watcher_detects_pulser_and_its_mode() {
        let mf = Multiflow::new(MultiflowConfig::enabled(), 5.0, 2);
        let competitive = recv_series_with_pulses(5.0, 6.0, 6e6);
        let delay = recv_series_with_pulses(6.0, 6.0, 6e6);
        let silent: Vec<f64> = vec![20e6; 600];
        assert_eq!(
            mf.detect_pulser(&competitive, 100.0),
            PulserPresence::Competitive
        );
        assert_eq!(mf.detect_pulser(&delay, 100.0), PulserPresence::Delay);
        assert_eq!(mf.detect_pulser(&silent, 100.0), PulserPresence::None);
    }

    #[test]
    fn election_eventually_elects_exactly_someone() {
        // With no pulser present, a watcher receiving a decent share of the
        // link must volunteer within a few FFT durations.
        let mut mf = Multiflow::new(MultiflowConfig::enabled(), 5.0, 3);
        let mut become_at = None;
        let mut t = 0.0;
        while t < 60.0 {
            t += 0.01;
            if mf.maybe_become_pulser(t, false, 48e6, 96e6) {
                become_at = Some(t);
                break;
            }
        }
        assert!(become_at.is_some(), "never became pulser");
        assert_eq!(mf.role(), Role::Pulser);
        assert!(mf.role_log().len() >= 2);
    }

    #[test]
    fn election_respects_the_expected_rate_bound() {
        // Expected number of volunteers per FFT duration ≈ κ·(R/µ).  Over many
        // trials with R/µ = 0.5 and κ = 1, roughly half the 5-second windows
        // should produce a volunteer — certainly not all of them instantly.
        let mut elected_within_one_window = 0;
        let trials = 200;
        for seed in 0..trials {
            let mut mf = Multiflow::new(MultiflowConfig::enabled(), 5.0, seed);
            let mut t = 0.0;
            while t < 5.0 {
                t += 0.01;
                if mf.maybe_become_pulser(t, false, 48e6, 96e6) {
                    elected_within_one_window += 1;
                    break;
                }
            }
        }
        let frac = elected_within_one_window as f64 / trials as f64;
        assert!(frac > 0.2 && frac < 0.7, "election fraction {frac}");
    }

    #[test]
    fn no_election_while_a_pulser_is_detected() {
        let mut mf = Multiflow::new(MultiflowConfig::enabled(), 5.0, 5);
        let mut t = 0.0;
        while t < 30.0 {
            t += 0.01;
            assert!(!mf.maybe_become_pulser(t, true, 96e6, 96e6));
        }
        assert_eq!(mf.role(), Role::Watcher);
    }

    #[test]
    fn pulser_steps_down_on_conflict_evidence() {
        let cfg = MultiflowConfig {
            enabled: true,
            step_down_probability: 1.0,
            ..MultiflowConfig::enabled()
        };
        let mut mf = Multiflow::new(cfg, 5.0, 6);
        mf.set_role(0.0, Role::Pulser);
        // Cross traffic oscillates harder at f_p than our own receive rate.
        assert!(mf.maybe_step_down(1.0, 10e6, 3e6));
        assert_eq!(mf.role(), Role::Watcher);
        // And never steps down on the opposite evidence.
        mf.set_role(2.0, Role::Pulser);
        assert!(!mf.maybe_step_down(3.0, 1e6, 5e6));
        assert_eq!(mf.role(), Role::Pulser);
    }

    #[test]
    fn watcher_rate_shaping_removes_fast_oscillation() {
        let mut mf = Multiflow::new(MultiflowConfig::enabled(), 5.0, 7);
        // A 5 Hz oscillating raw rate should come out much smoother.
        let gen = PulseGenerator::asymmetric(5.0, 12e6);
        let mut min_out = f64::MAX;
        let mut max_out = f64::MIN;
        for i in 0..2000 {
            let t = i as f64 * 0.01;
            let raw = 24e6 + gen.offset_at(t);
            let out = mf.shape_rate(raw);
            if i > 500 {
                min_out = min_out.min(out);
                max_out = max_out.max(out);
            }
        }
        assert!(
            max_out - min_out < 6e6,
            "smoothed swing {} should be well below the raw 16 Mbit/s swing",
            max_out - min_out
        );
    }
}
