//! Compound TCP (Tan et al. — the paper's references [28, 29]).
//!
//! Compound maintains a loss-based window (Reno-style `cwnd`) and a
//! delay-based window (`dwnd`); the send window is their sum.  The delay
//! window grows aggressively (binomially) when the estimated queue is small
//! and shrinks when queueing exceeds a threshold γ, but the loss window keeps
//! Compound TCP-competitive.  The paper uses Compound as a baseline that
//! "ramps up its rate quickly when it detects low delays, but behaves like
//! TCP Reno otherwise" (Fig. 8) and therefore still bufferbloats.

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};

/// Compound's delay threshold γ in packets.
const GAMMA: f64 = 30.0;
/// Binomial increase parameters (k = 0.75, α = 0.125 per the paper's draft).
const ALPHA: f64 = 0.125;
const K: f64 = 0.75;
/// Multiplicative decrease for the delay window on congestion.
const ETA: f64 = 0.5;

/// Compound TCP.
#[derive(Debug, Clone)]
pub struct Compound {
    /// Loss-based (Reno) window.
    cwnd: f64,
    /// Delay-based window.
    dwnd: f64,
    ssthresh: f64,
}

impl Compound {
    /// A Compound controller with an initial window of 10 segments.
    pub fn new() -> Self {
        Compound {
            cwnd: 10.0,
            dwnd: 0.0,
            ssthresh: f64::INFINITY,
        }
    }

    /// The loss-based component (diagnostics).
    pub fn loss_window(&self) -> f64 {
        self.cwnd
    }

    /// The delay-based component (diagnostics).
    pub fn delay_window(&self) -> f64 {
        self.dwnd
    }
}

impl Default for Compound {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Compound {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let acked = ack.newly_acked_packets as f64;
        let total = self.cwnd + self.dwnd;
        // Reno component.
        if self.cwnd < self.ssthresh {
            self.cwnd += acked;
        } else {
            self.cwnd += acked / total.max(1.0);
        }
        // Delay component: estimate queued packets like Vegas.
        let rtt = ack.rtt.as_secs_f64();
        let base = ack.min_rtt.as_secs_f64();
        if rtt <= 0.0 || base <= 0.0 {
            return;
        }
        let expected = total / base;
        let actual = total / rtt;
        let diff = (expected - actual) * base;
        if diff < GAMMA {
            // Binomial increase: dwnd += α·win^k per RTT (scaled per ACK).
            self.dwnd += (ALPHA * total.powf(K) - 1.0).max(0.0) * acked / total.max(1.0);
        } else {
            // Back off the delay window when queueing builds.
            self.dwnd = (self.dwnd - ETA * diff).max(0.0);
        }
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        let total = self.cwnd + self.dwnd;
        self.ssthresh = (total / 2.0).max(2.0);
        self.cwnd = (self.cwnd / 2.0).max(2.0);
        self.dwnd = (total * (1.0 - ETA) - self.cwnd).max(0.0);
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.ssthresh = ((self.cwnd + self.dwnd) / 2.0).max(2.0);
                self.cwnd = 2.0;
                self.dwnd = 0.0;
            }
            // The delay window drains on its own when queues build; the loss
            // window reacts to losses, not marks.
            CongestionEvent::EcnCe { .. } => {}
        }
    }

    fn cwnd_packets(&self) -> f64 {
        (self.cwnd + self.dwnd).max(1.0)
    }

    fn name(&self) -> &'static str {
        "compound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core_types::Time;

    fn ack(now_ms: u64, rtt_ms: u64, min_rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis(rtt_ms),
            min_rtt: Time::from_millis(min_rtt_ms),
            in_flight_packets: 10,
            mss: 1500,
        }
    }

    #[test]
    fn delay_window_grows_fast_when_delays_are_low() {
        let mut cc = Compound::new();
        cc.ssthresh = 10.0; // out of slow start
        let mut now = 0;
        for _ in 0..500 {
            now += 5;
            cc.on_packet_acked(&ack(now, 50, 50));
        }
        assert!(cc.delay_window() > 5.0, "dwnd {}", cc.delay_window());
        // Total window grows noticeably faster than pure Reno would
        // (Reno adds ~1 per RTT = ~50 packets in 500 acks of window >= 10).
        assert!(cc.cwnd_packets() > 30.0);
    }

    #[test]
    fn delay_window_retreats_under_queueing() {
        let mut cc = Compound::new();
        cc.ssthresh = 10.0;
        cc.dwnd = 50.0;
        cc.cwnd = 50.0;
        let mut now = 0;
        // Heavy queueing: RTT at 3x the base.
        for _ in 0..200 {
            now += 5;
            cc.on_packet_acked(&ack(now, 150, 50));
        }
        assert!(cc.delay_window() < 1.0, "dwnd {}", cc.delay_window());
        // But the loss window keeps it TCP-like (still grows slowly).
        assert!(cc.loss_window() >= 50.0);
    }

    #[test]
    fn loss_halves_total_window() {
        let mut cc = Compound::new();
        cc.cwnd = 40.0;
        cc.dwnd = 40.0;
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 80,
        });
        let total = cc.cwnd_packets();
        assert!((total - 40.0).abs() < 2.0, "total {total}");
    }

    #[test]
    fn timeout_collapses_both_windows() {
        let mut cc = Compound::new();
        cc.cwnd = 40.0;
        cc.dwnd = 40.0;
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!(cc.cwnd_packets() <= 2.0);
        assert_eq!(cc.delay_window(), 0.0);
    }

    #[test]
    fn pure_ack_clocked_no_pacing() {
        let cc = Compound::new();
        assert!(cc.pacing_rate_bps(Time::ZERO).is_none());
    }
}
