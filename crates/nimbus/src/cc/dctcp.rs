//! DCTCP-style ECN congestion control.
//!
//! DCTCP (Alizadeh et al., SIGCOMM 2010) reacts to the *fraction* of marked
//! packets rather than treating any mark as a loss: the receiver echoes every
//! CE mark, the sender keeps an EWMA `α` of the per-window mark fraction, and
//! once per window cuts `cwnd ← cwnd · (1 − α/2)`.  Under a shallow step
//! marker (the L4S profile in `netsim`) this yields a small, proportional
//! decrease every RTT instead of NewReno's halving — the behaviour the
//! L4S/Prague experiments need from their scalable competitor, and the model
//! the paper's elasticity detector must classify when it shares a queue with
//! an ECN flow.
//!
//! Without marks DCTCP grows exactly like Reno (slow start, then one segment
//! per RTT), so [`CcKind::expected_elastic`](super::CcKind::expected_elastic)
//! reports it elastic.

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};

/// EWMA gain `g` for the mark-fraction estimate (the DCTCP paper's 1/16).
const G: f64 = 1.0 / 16.0;

/// DCTCP: ECN mark-fraction EWMA with proportional window cuts.
#[derive(Debug, Clone)]
pub struct Dctcp {
    cwnd: f64,
    ssthresh: f64,
    initial_cwnd: f64,
    /// EWMA of the fraction of a window's bytes that carried CE marks.
    alpha: f64,
    /// Bytes acknowledged in the current observation window.
    window_acked_bytes: u64,
    /// Bytes of those that arrived CE-marked.
    window_marked_bytes: u64,
    /// ACKed packets still to count before the window closes (one cwnd's
    /// worth of ACKs approximates one RTT of feedback).
    acks_to_window_end: f64,
    /// Whether the current window may still apply its proportional cut
    /// (at most one decrease per window, like RFC 3168's gate).
    cut_armed: bool,
}

impl Dctcp {
    /// A DCTCP controller with the Linux-default initial window.
    pub fn new() -> Self {
        Dctcp {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            initial_cwnd: 10.0,
            alpha: 0.0,
            window_acked_bytes: 0,
            window_marked_bytes: 0,
            acks_to_window_end: 10.0,
            cut_armed: true,
        }
    }

    /// Whether the controller is currently in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// The current mark-fraction EWMA `α` (0 when no marks have been seen).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Close the observation window: fold the measured mark fraction into
    /// `α` and start the next window.
    fn close_window(&mut self) {
        if self.window_acked_bytes > 0 {
            // Clamped: the callback API does not force hosts to couple CE
            // echoes to ACKed bytes (a CE echo may ride a zero-byte window
            // update), so the window can report more marked than ACKed
            // bytes; a fraction is still at most 1.
            let f = (self.window_marked_bytes as f64 / self.window_acked_bytes as f64).min(1.0);
            self.alpha = (1.0 - G) * self.alpha + G * f;
        }
        self.window_acked_bytes = 0;
        self.window_marked_bytes = 0;
        self.acks_to_window_end = self.cwnd.max(1.0);
        self.cut_armed = true;
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Dctcp {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let acked = ack.newly_acked_packets as f64;
        self.window_acked_bytes += ack.newly_acked_bytes;
        if self.in_slow_start() {
            self.cwnd += acked;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            self.cwnd += acked / self.cwnd;
        }
        self.acks_to_window_end -= acked;
        if self.acks_to_window_end <= 0.0 {
            self.close_window();
        }
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        // Loss still means loss: fall back to the Reno halving.
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.initial_cwnd.min(self.ssthresh).max(1.0);
                // The feedback the open window accumulated predates the
                // timeout; restart measurement cleanly.
                self.window_acked_bytes = 0;
                self.window_marked_bytes = 0;
                self.acks_to_window_end = self.cwnd.max(1.0);
                self.cut_armed = true;
            }
            CongestionEvent::EcnCe { marked_bytes, .. } => {
                self.window_marked_bytes += marked_bytes;
                // The first mark ends slow start: from here on the
                // proportional law governs.
                if self.in_slow_start() {
                    self.ssthresh = self.cwnd.max(2.0);
                }
                if self.cut_armed {
                    // Bootstrap: α starts at 0, so the very first window of
                    // marks would otherwise cut nothing.  Use the incoming
                    // fraction floor of one MSS per window as a minimum.
                    let alpha = self.alpha.max(G);
                    self.cwnd = (self.cwnd * (1.0 - alpha / 2.0)).max(2.0);
                    self.cut_armed = false;
                }
            }
        }
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn reinitialize(&mut self, rate_bps: f64, rtt_s: f64, mss: u32) {
        let cwnd = (rate_bps * rtt_s / 8.0 / mss as f64).max(2.0);
        self.cwnd = cwnd;
        self.ssthresh = cwnd;
        self.acks_to_window_end = cwnd;
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core_types::Time;

    fn ack(n: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(100),
            newly_acked_packets: n,
            newly_acked_bytes: n * 1500,
            rtt: Time::from_millis(50),
            min_rtt: Time::from_millis(50),
            in_flight_packets: 10,
            mss: 1500,
        }
    }

    fn ce(bytes: u64) -> CongestionEvent {
        CongestionEvent::EcnCe {
            now: Time::ZERO,
            marked_bytes: bytes,
        }
    }

    #[test]
    fn grows_like_reno_without_marks() {
        let mut cc = Dctcp::new();
        let start = cc.cwnd_packets();
        for _ in 0..(start as u64) {
            cc.on_packet_acked(&ack(1));
        }
        assert!((cc.cwnd_packets() - start * 2.0).abs() < 1e-9);
        assert!(cc.alpha() < 1e-12, "no marks, no alpha");
    }

    #[test]
    fn first_mark_exits_slow_start_and_cuts_once() {
        let mut cc = Dctcp::new();
        cc.cwnd = 64.0;
        cc.acks_to_window_end = 64.0;
        assert!(cc.in_slow_start());
        let before = cc.cwnd_packets();
        for _ in 0..30 {
            cc.on_congestion_event(&ce(1500));
        }
        assert!(!cc.in_slow_start());
        let after = cc.cwnd_packets();
        // One proportional cut, far gentler than a halving.
        assert!(after < before && after > before * 0.9);
    }

    #[test]
    fn alpha_tracks_the_mark_fraction() {
        let mut cc = Dctcp::new();
        cc.cwnd = 10.0;
        cc.acks_to_window_end = 10.0;
        cc.ssthresh = 10.0;
        // Many windows where ~half the bytes are marked; the EWMA needs
        // roughly 3/g of them to converge.
        for _ in 0..80 {
            for i in 0..10 {
                if i % 2 == 0 {
                    cc.on_congestion_event(&ce(1500));
                }
                cc.on_packet_acked(&ack(1));
            }
        }
        assert!(
            (cc.alpha() - 0.5).abs() < 0.15,
            "alpha {} should approach 0.5",
            cc.alpha()
        );
    }

    #[test]
    fn heavy_marking_converges_to_near_halving() {
        let mut cc = Dctcp::new();
        cc.ssthresh = 2.0; // out of slow start
        cc.cwnd = 100.0;
        cc.acks_to_window_end = 100.0;
        // Every packet marked for many windows: alpha -> 1, cut -> cwnd/2.
        for _ in 0..60 {
            for _ in 0..20 {
                cc.on_congestion_event(&ce(1500));
                cc.on_packet_acked(&ack(1));
            }
        }
        assert!(cc.alpha() > 0.8, "alpha {} should approach 1", cc.alpha());
    }

    #[test]
    fn rto_collapses_and_clears_the_window() {
        let mut cc = Dctcp::new();
        cc.cwnd = 80.0;
        cc.on_congestion_event(&ce(1500));
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!(cc.cwnd_packets() <= 10.0);
        assert_eq!(cc.window_marked_bytes, 0);
    }

    #[test]
    fn no_pacing_rate_pure_ack_clocking() {
        let cc = Dctcp::new();
        assert!(cc.pacing_rate_bps(Time::ZERO).is_none());
    }
}
