//! PCC-Vivace (Dong et al., NSDI 2018 — the paper's reference \[7\]).
//!
//! Vivace is a rate-based, online-learning controller.  Time is divided into
//! monitor intervals (MIs) of roughly one RTT; in each MI the sender measures
//! the achieved rate, loss rate and the RTT gradient, computes a utility
//!
//! ```text
//! U(x) = x^0.9 − b · x · max(0, dRTT/dt) − c · x · loss
//! ```
//!
//! and moves its rate along the utility gradient.  Crucially for the paper,
//! Vivace reacts over MIs — *not* on ACK arrival — so it is **not**
//! ACK-clocked; the detector classifies it inelastic at the default 5 Hz
//! pulse and elastic at 2 Hz (Table 1, Appendix F).

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use crate::ccp::Report;
use nimbus_core_types::Time;

/// Utility-function coefficients (Vivace-latency defaults).
const EXPONENT: f64 = 0.9;
const LATENCY_COEFF: f64 = 900.0;
const LOSS_COEFF: f64 = 11.35;

/// Gradient-ascent step bound (fraction of the current rate per MI).
const MAX_STEP_FRACTION: f64 = 0.05;

/// The PCC-Vivace congestion controller.
#[derive(Debug)]
pub struct Vivace {
    mss: u32,
    /// Current sending rate (bits/s).
    rate_bps: f64,
    /// Monitor-interval length (updated to the observed RTT).
    mi_length: Time,
    mi_start: Time,
    /// Accumulators for the current MI.
    mi_acked_bytes: u64,
    mi_lost_packets: u64,
    mi_rtt_first: Option<f64>,
    mi_rtt_last: f64,
    /// Previous MI's (rate, utility) for the gradient.
    prev: Option<(f64, f64)>,
    /// Direction sign of the last step, used for a simple momentum/confidence
    /// amplifier as in Vivace.
    consecutive_same_direction: i32,
    last_direction: f64,
    /// In the initial slow-start-like phase the rate doubles per MI while
    /// utility keeps improving.
    in_starting_phase: bool,
}

impl Vivace {
    /// A Vivace controller starting at a conservative 1 Mbit/s probe rate.
    pub fn new(mss: u32) -> Self {
        Vivace {
            mss,
            rate_bps: 1e6,
            mi_length: Time::from_millis(100),
            mi_start: Time::ZERO,
            mi_acked_bytes: 0,
            mi_lost_packets: 0,
            mi_rtt_first: None,
            mi_rtt_last: 0.0,
            prev: None,
            consecutive_same_direction: 0,
            last_direction: 0.0,
            in_starting_phase: true,
        }
    }

    /// The rate Vivace is currently targeting, in bits/s.
    pub fn current_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn utility(&self, rate_bps: f64, loss_rate: f64, rtt_gradient: f64) -> f64 {
        let x_mbps = (rate_bps / 1e6).max(1e-6);
        x_mbps.powf(EXPONENT)
            - LATENCY_COEFF * x_mbps * rtt_gradient.max(0.0)
            - LOSS_COEFF * x_mbps * loss_rate
    }

    fn close_monitor_interval(&mut self, now: Time) {
        let mi_secs = now.saturating_sub(self.mi_start).as_secs_f64();
        if mi_secs <= 0.0 {
            return;
        }
        let achieved_bps = self.mi_acked_bytes as f64 * 8.0 / mi_secs;
        let sent_estimate = (self.rate_bps * mi_secs / 8.0 / self.mss as f64).max(1.0);
        let loss_rate = (self.mi_lost_packets as f64 / sent_estimate).min(1.0);
        let rtt_gradient = match self.mi_rtt_first {
            Some(first) if mi_secs > 0.0 => (self.mi_rtt_last - first) / mi_secs,
            _ => 0.0,
        };
        let measured_rate = if achieved_bps > 0.0 {
            achieved_bps
        } else {
            self.rate_bps
        };
        let utility = self.utility(measured_rate, loss_rate, rtt_gradient);

        if self.in_starting_phase {
            match self.prev {
                None => {
                    self.prev = Some((self.rate_bps, utility));
                    self.rate_bps *= 2.0;
                }
                Some((_, prev_u)) => {
                    if utility > prev_u && loss_rate < 0.05 {
                        self.prev = Some((self.rate_bps, utility));
                        self.rate_bps *= 2.0;
                    } else {
                        // Utility stopped improving: leave the starting phase.
                        self.in_starting_phase = false;
                        self.rate_bps /= 2.0;
                        self.prev = Some((self.rate_bps, utility));
                    }
                }
            }
        } else {
            // Gradient ascent on utility w.r.t. rate.
            if let Some((prev_rate, prev_u)) = self.prev {
                let d_rate = self.rate_bps - prev_rate;
                let gradient = if d_rate.abs() > 1e3 {
                    (utility - prev_u) / (d_rate / 1e6)
                } else {
                    0.0
                };
                let direction = if gradient >= 0.0 { 1.0 } else { -1.0 };
                if direction == self.last_direction {
                    self.consecutive_same_direction += 1;
                } else {
                    self.consecutive_same_direction = 0;
                }
                self.last_direction = direction;
                let confidence = 1.0 + self.consecutive_same_direction.min(5) as f64 * 0.5;
                let step = (gradient.abs() * 1e5 * confidence)
                    .min(self.rate_bps * MAX_STEP_FRACTION)
                    .max(self.rate_bps * 0.005);
                self.prev = Some((self.rate_bps, utility));
                self.rate_bps += direction * step;
            } else {
                self.prev = Some((self.rate_bps, utility));
                self.rate_bps *= 1.05;
            }
        }
        self.rate_bps = self.rate_bps.clamp(0.1e6, 10e9);

        // Reset MI accumulators.
        self.mi_start = now;
        self.mi_acked_bytes = 0;
        self.mi_lost_packets = 0;
        self.mi_rtt_first = None;
    }
}

impl CongestionControl for Vivace {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        self.mi_acked_bytes += ack.newly_acked_bytes;
        let rtt = ack.rtt.as_secs_f64();
        if self.mi_rtt_first.is_none() {
            self.mi_rtt_first = Some(rtt);
        }
        self.mi_rtt_last = rtt;
        // MI length tracks the RTT (bounded to keep reactions sluggish
        // relative to ACK clocking, as in the real protocol).
        self.mi_length = Time::from_secs_f64(rtt.clamp(0.05, 0.5));
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        self.mi_lost_packets += 1;
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.rate_bps = (self.rate_bps * 0.5).max(0.1e6);
                self.in_starting_phase = false;
            }
            // Vivace's utility already penalises loss and delay; marks carry
            // no extra gradient information here.
            CongestionEvent::EcnCe { .. } => {}
        }
    }

    fn on_report(&mut self, report: &Report) {
        let now = Time::from_secs_f64(report.now_s);
        if now.saturating_sub(self.mi_start) >= self.mi_length {
            self.close_monitor_interval(now);
        }
    }

    fn cwnd_packets(&self) -> f64 {
        // Rate-based: the window is only a generous safety cap (2 × rate × 0.5 s).
        (self.rate_bps * 1.0 / 8.0 / self.mss as f64).max(10.0)
    }

    fn pacing_rate_bps(&self, _now: Time) -> Option<f64> {
        Some(self.rate_bps)
    }

    fn name(&self) -> &'static str {
        "pcc-vivace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, bytes: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            newly_acked_packets: bytes / 1500,
            newly_acked_bytes: bytes,
            rtt: Time::from_millis(rtt_ms),
            min_rtt: Time::from_millis(50),
            in_flight_packets: 10,
            mss: 1500,
        }
    }

    fn report(now_s: f64) -> Report {
        Report {
            now_s,
            ..Default::default()
        }
    }

    /// Simulate `secs` seconds in which the network delivers everything the
    /// sender offers (no loss, flat RTT), and return the final rate.
    fn run_unconstrained(vivace: &mut Vivace, secs: f64) -> f64 {
        let mut t_ms = 0u64;
        while (t_ms as f64) < secs * 1000.0 {
            t_ms += 10;
            // Deliver at the offered rate.
            let bytes = (vivace.current_rate_bps() * 0.01 / 8.0) as u64;
            vivace.on_packet_acked(&ack(t_ms, 50, bytes.max(1500)));
            vivace.on_report(&report(t_ms as f64 / 1000.0));
        }
        vivace.current_rate_bps()
    }

    #[test]
    fn rate_grows_when_unconstrained() {
        let mut v = Vivace::new(1500);
        let start = v.current_rate_bps();
        let end = run_unconstrained(&mut v, 5.0);
        assert!(end > start * 4.0, "rate should grow: {start} -> {end}");
    }

    #[test]
    fn loss_reduces_utility_and_caps_growth() {
        // With heavy loss in every MI the rate must end up much lower than in
        // the loss-free case.
        let mut lossy = Vivace::new(1500);
        let mut t_ms = 0u64;
        while t_ms < 5000 {
            t_ms += 10;
            let bytes = (lossy.current_rate_bps() * 0.01 / 8.0) as u64;
            lossy.on_packet_acked(&ack(t_ms, 50, (bytes / 2).max(1500)));
            // Many losses per MI.
            for _ in 0..5 {
                lossy.on_packets_lost(&LossEvent {
                    now: Time::from_millis(t_ms),
                    lost_packets: 1,
                    in_flight_packets: 10,
                });
            }
            lossy.on_report(&report(t_ms as f64 / 1000.0));
        }
        let mut clean = Vivace::new(1500);
        let clean_rate = run_unconstrained(&mut clean, 5.0);
        assert!(
            lossy.current_rate_bps() < clean_rate / 2.0,
            "lossy {} vs clean {}",
            lossy.current_rate_bps(),
            clean_rate
        );
    }

    #[test]
    fn rising_rtt_slows_growth() {
        let mut v = Vivace::new(1500);
        let mut t_ms = 0u64;
        let mut rtt = 50.0;
        while t_ms < 5000 {
            t_ms += 10;
            rtt += 0.5; // steadily climbing RTT => negative latency gradient term
            let bytes = (v.current_rate_bps() * 0.01 / 8.0) as u64;
            v.on_packet_acked(&ack(t_ms, rtt as u64, bytes.max(1500)));
            v.on_report(&report(t_ms as f64 / 1000.0));
        }
        let mut clean = Vivace::new(1500);
        let clean_rate = run_unconstrained(&mut clean, 5.0);
        assert!(v.current_rate_bps() < clean_rate);
    }

    #[test]
    fn reacts_on_monitor_intervals_not_acks() {
        // The rate must not change between reports even if many ACKs arrive.
        let mut v = Vivace::new(1500);
        v.in_starting_phase = false;
        let before = v.current_rate_bps();
        for i in 0..100 {
            v.on_packet_acked(&ack(i, 50, 1500));
        }
        assert_eq!(v.current_rate_bps(), before);
        // After enough time passes and a report arrives, the rate may change.
        v.on_report(&report(1.0));
        // (no assertion on direction, just that the mechanism is report-driven)
    }

    #[test]
    fn always_provides_a_pacing_rate() {
        let v = Vivace::new(1500);
        assert!(v.pacing_rate_bps(Time::ZERO).unwrap() > 0.0);
        assert!(v.cwnd_packets() >= 10.0);
    }

    #[test]
    fn timeout_halves_rate() {
        let mut v = Vivace::new(1500);
        v.rate_bps = 40e6;
        v.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!((v.current_rate_bps() - 20e6).abs() < 1.0);
    }
}
