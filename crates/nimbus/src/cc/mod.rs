//! Congestion-control algorithms.
//!
//! Every scheme the paper evaluates or uses as a building block is
//! implemented here against one small host-abstraction trait,
//! [`CongestionControl`], which any host — the simulator's
//! `nimbus_transport::Sender`, a real datapath, or a test harness — drives
//! through ack/loss/congestion/report callbacks:
//!
//! | Module       | Scheme          | Role in the paper                                   |
//! |--------------|-----------------|------------------------------------------------------|
//! | [`reno`]     | NewReno         | TCP-competitive mode option; elastic cross traffic    |
//! | [`cubic`]    | Cubic           | default TCP-competitive mode; elastic cross traffic   |
//! | [`vegas`]    | Vegas           | delay-control mode option; baseline                   |
//! | [`copa`]     | Copa            | delay-control mode option; mode-switching baseline    |
//! | [`bbr`]      | BBR             | baseline                                              |
//! | [`vivace`]   | PCC-Vivace      | baseline; rate-based (non-ACK-clocked) elastic flow   |
//! | [`compound`] | Compound TCP    | baseline                                              |
//! | [`dctcp`]    | DCTCP           | ECN-reacting CCA for the L4S/Prague scenario family   |
//! | [`constant`] | CBR / unlimited | inelastic cross traffic                                |
//! | [`BasicDelay`](crate::BasicDelay) | BasicDelay | the paper's Eq. 4 delay controller (used by Nimbus) |
//!
//! `BasicDelay` needs the cross-traffic estimate, so it lives one level up
//! in this crate's root alongside the estimator; everything else is here.
//! All of it is simulator-free: hosts construct schemes through
//! [`CcKind::build`] with a [`PathInfo`] describing the path.

pub mod bbr;
pub mod compound;
pub mod constant;
pub mod copa;
pub mod cubic;
pub mod dctcp;
pub mod reno;
pub mod vegas;
pub mod vivace;

use crate::ccp::Report;
use nimbus_core_types::Time;

/// Everything a congestion controller learns from one (new, non-duplicate) ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Time the ACK arrived.
    pub now: Time,
    /// Segments newly acknowledged by this ACK.
    pub newly_acked_packets: u64,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked_bytes: u64,
    /// RTT sample carried by this ACK.
    pub rtt: Time,
    /// Smallest RTT observed so far on this connection.
    pub min_rtt: Time,
    /// Segments in flight after processing this ACK.
    pub in_flight_packets: u64,
    /// The flow's maximum segment size in bytes.
    pub mss: u32,
}

/// Everything a congestion controller learns from one loss detection
/// (duplicate-ACK fast retransmit).
#[derive(Debug, Clone, Copy)]
pub struct LossEvent {
    /// Time the loss was detected.
    pub now: Time,
    /// Segments newly declared lost by this detection.
    pub lost_packets: u64,
    /// Segments in flight when the loss was detected.
    pub in_flight_packets: u64,
}

/// A non-ACK congestion signal from the host: a retransmission timeout, or
/// an ECN congestion-experienced mark echoed back by the receiver.
///
/// The enum stays `#[non_exhaustive]` so further signals (e.g. packet
/// timestamping) can slot in without touching the trait; controllers must
/// therefore match specific variants, never treat "any congestion event" as
/// a timeout.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum CongestionEvent {
    /// A retransmission timeout fired: all in-flight data is presumed lost.
    Rto {
        /// Time the timeout fired.
        now: Time,
    },
    /// The receiver echoed a CE (congestion experienced) mark: an AQM on the
    /// path marked a packet instead of dropping it.  Delivered once per
    /// CE-carrying ACK.  Loss-based schemes treat this as a classic-ECN
    /// congestion signal (at most one multiplicative decrease per window);
    /// DCTCP feeds it into its mark-fraction EWMA; delay- and rate-based
    /// schemes may ignore it.
    EcnCe {
        /// Time the CE echo reached the sender.
        now: Time,
        /// Bytes of the data segment that carried the mark.
        marked_bytes: u64,
    },
}

/// Path and connection parameters a host hands to [`CcKind::build`] when
/// instantiating a controller (the s2n-quic `PathInfo` shape): everything a
/// scheme may want for initialization, independent of any simulator.
#[derive(Debug, Clone, Copy)]
pub struct PathInfo {
    /// The flow's maximum segment size in bytes.
    pub mss: u32,
    /// The host's initial RTT estimate, before any sample arrives.
    pub initial_rtt: Time,
    /// Nominal bottleneck rate µ in bits/s, when the host knows it
    /// (configured-µ Nimbus does; most schemes ignore it).
    pub nominal_mu_bps: Option<f64>,
}

impl PathInfo {
    /// Path info with the given MSS, a 100 ms initial RTT estimate and no
    /// nominal µ — the defaults every experiment used before `PathInfo`
    /// existed.
    pub fn new(mss: u32) -> Self {
        PathInfo {
            mss,
            initial_rtt: Time::from_millis(100),
            nominal_mu_bps: None,
        }
    }

    /// Replace the initial RTT estimate.
    pub fn with_initial_rtt(mut self, rtt: Time) -> Self {
        self.initial_rtt = rtt;
        self
    }

    /// Record the nominal bottleneck rate µ in bits/s.
    pub fn with_nominal_mu(mut self, mu_bps: f64) -> Self {
        self.nominal_mu_bps = Some(mu_bps);
        self
    }
}

/// A congestion-control algorithm, driven by its host through callbacks.
///
/// The host — the simulator's sender machinery, a real transport stack, or a
/// fuzz harness — owns the clock, the packets and the pacing wheel; the
/// controller only turns events ([`AckEvent`], [`LossEvent`],
/// [`CongestionEvent`], [`Report`]) into a congestion window and an optional
/// pacing rate.  Window-only schemes (Reno, Cubic, Vegas, …) return `None`
/// from [`CongestionControl::pacing_rate_bps`] and are therefore purely
/// ACK-clocked — which is what makes them *elastic* in the paper's sense.
/// Rate-based schemes (BBR, Vivace, CBR, Nimbus) return a pacing rate; their
/// window then acts only as a safety cap.
pub trait CongestionControl: Send {
    /// Process a new (non-duplicate) ACK.
    fn on_packet_acked(&mut self, ack: &AckEvent);

    /// Losses were detected by duplicate ACKs (fast retransmit).
    fn on_packets_lost(&mut self, loss: &LossEvent);

    /// A non-ACK congestion signal: a retransmission timeout or a CE mark.
    fn on_congestion_event(&mut self, event: &CongestionEvent);

    /// A periodic (10 ms) CCP-style measurement report.
    fn on_report(&mut self, _report: &Report) {}

    /// Current congestion window in packets.
    fn cwnd_packets(&self) -> f64;

    /// Current pacing rate in bits/s, or `None` for pure window/ACK clocking.
    fn pacing_rate_bps(&self, _now: Time) -> Option<f64> {
        None
    }

    /// Reinitialize the controller to operate at roughly `rate_bps` given an
    /// RTT of `rtt_s` seconds.  Nimbus uses this when switching into its
    /// TCP-competitive mode: "Nimbus sets the rate (and equivalent window) to
    /// the rate that was used 5 seconds ago" (§4.1).  The default is a no-op.
    fn reinitialize(&mut self, _rate_bps: f64, _rtt_s: f64, _mss: u32) {}

    /// Short name for labels and result tables.
    fn name(&self) -> &'static str;

    /// Downcast support: controllers that want to expose internal logs to the
    /// experiment harness (Nimbus does) return `Some(self)` here.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The congestion-control schemes available to experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// TCP NewReno.
    NewReno,
    /// TCP Cubic.
    Cubic,
    /// TCP Vegas.
    Vegas,
    /// Copa (with its own default/competitive mode switching).
    Copa,
    /// BBR (model of v1).
    Bbr,
    /// PCC-Vivace.
    Vivace,
    /// Compound TCP.
    Compound,
    /// DCTCP: ECN mark-fraction EWMA with proportional cwnd cuts.
    Dctcp,
    /// Constant-bit-rate (paced, unlimited window) at the given rate.
    ConstantRate(f64),
    /// No congestion control at all: send whenever the application has data.
    Unlimited,
}

impl CcKind {
    /// Instantiate the scheme for the path described by `path` (the MSS and
    /// the initial RTT estimate are needed by some controllers for
    /// initialization).
    pub fn build(self, path: &PathInfo) -> Box<dyn CongestionControl> {
        match self {
            CcKind::NewReno => Box::new(reno::NewReno::new()),
            CcKind::Cubic => Box::new(cubic::Cubic::new()),
            CcKind::Vegas => Box::new(vegas::Vegas::new()),
            CcKind::Copa => Box::new(copa::Copa::new()),
            CcKind::Bbr => Box::new(bbr::Bbr::new(path.mss)),
            CcKind::Vivace => Box::new(vivace::Vivace::new(path.mss)),
            CcKind::Compound => Box::new(compound::Compound::new()),
            CcKind::Dctcp => Box::new(dctcp::Dctcp::new()),
            CcKind::ConstantRate(bps) => Box::new(constant::ConstantRate::new(bps)),
            CcKind::Unlimited => Box::new(constant::Unlimited::new()),
        }
    }

    /// Whether this scheme is, per Table 1 of the paper, expected to be
    /// classified as elastic by the detector when running as a backlogged flow.
    pub fn expected_elastic(self) -> bool {
        match self {
            CcKind::NewReno | CcKind::Cubic | CcKind::Vegas | CcKind::Copa | CcKind::Compound => {
                true
            }
            // BBR: "Elastic*" (only when CWND-limited); Vivace: "Inelastic*".
            CcKind::Bbr => true,
            // Window-based and ACK-clocked; without marks it grows like Reno.
            CcKind::Dctcp => true,
            CcKind::Vivace => false,
            CcKind::ConstantRate(_) | CcKind::Unlimited => false,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::NewReno => "newreno",
            CcKind::Cubic => "cubic",
            CcKind::Vegas => "vegas",
            CcKind::Copa => "copa",
            CcKind::Bbr => "bbr",
            CcKind::Vivace => "pcc-vivace",
            CcKind::Compound => "compound",
            CcKind::Dctcp => "dctcp",
            CcKind::ConstantRate(_) => "cbr",
            CcKind::Unlimited => "unlimited",
        }
    }
}

// The rate-string parser/printer moved to the dependency-free types crate
// with `Time`; re-exported here because every scheme-spec parser reaches for
// them through this module.
pub use nimbus_core_types::{format_rate_bps, parse_rate_bps};

impl std::fmt::Display for CcKind {
    /// The canonical spec-string form, re-parseable by the `FromStr` impl:
    /// bare lowercase names plus `constant(<rate>)` for CBR senders.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcKind::Vivace => write!(f, "vivace"),
            CcKind::ConstantRate(bps) => write!(f, "constant({})", format_rate_bps(*bps)),
            other => write!(f, "{}", other.name()),
        }
    }
}

impl std::str::FromStr for CcKind {
    type Err = String;

    /// Parse a bare-CCA spec string: `cubic`, `newreno` (alias `reno`),
    /// `vegas`, `copa`, `bbr`, `vivace` (alias `pcc-vivace`), `compound`,
    /// `dctcp`, `unlimited`, or `constant(<rate>)` (alias `cbr(<rate>)`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "cubic" => return Ok(CcKind::Cubic),
            "newreno" | "reno" => return Ok(CcKind::NewReno),
            "vegas" => return Ok(CcKind::Vegas),
            "copa" => return Ok(CcKind::Copa),
            "bbr" => return Ok(CcKind::Bbr),
            "vivace" | "pcc-vivace" => return Ok(CcKind::Vivace),
            "compound" => return Ok(CcKind::Compound),
            "dctcp" => return Ok(CcKind::Dctcp),
            "unlimited" => return Ok(CcKind::Unlimited),
            _ => {}
        }
        if let Some(args) = lower
            .strip_prefix("constant(")
            .or_else(|| lower.strip_prefix("cbr("))
        {
            let rate = args.strip_suffix(')').ok_or_else(|| {
                format!("invalid scheme `{s}`: missing closing `)` after the rate")
            })?;
            return Ok(CcKind::ConstantRate(parse_rate_bps(rate)?));
        }
        Err(format!(
            "unknown congestion-control scheme `{s}` (expected cubic, newreno, vegas, copa, \
             bbr, vivace, compound, dctcp, unlimited, or constant(<rate>) such as \
             constant(24M))"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        for kind in [
            CcKind::NewReno,
            CcKind::Cubic,
            CcKind::Vegas,
            CcKind::Copa,
            CcKind::Bbr,
            CcKind::Vivace,
            CcKind::Compound,
            CcKind::Dctcp,
            CcKind::ConstantRate(10e6),
            CcKind::Unlimited,
        ] {
            let cc = kind.build(&PathInfo::new(1500));
            assert!(!cc.name().is_empty());
            assert!(
                cc.cwnd_packets() > 0.0,
                "{} must start with a window",
                cc.name()
            );
        }
    }

    #[test]
    fn kind_display_round_trips_through_from_str() {
        for kind in [
            CcKind::NewReno,
            CcKind::Cubic,
            CcKind::Vegas,
            CcKind::Copa,
            CcKind::Bbr,
            CcKind::Vivace,
            CcKind::Compound,
            CcKind::Dctcp,
            CcKind::ConstantRate(2.5e6),
            CcKind::Unlimited,
        ] {
            let text = kind.to_string();
            assert_eq!(text.parse::<CcKind>().unwrap(), kind, "via `{text}`");
        }
        assert_eq!("reno".parse::<CcKind>().unwrap(), CcKind::NewReno);
        assert_eq!("pcc-vivace".parse::<CcKind>().unwrap(), CcKind::Vivace);
        assert_eq!(
            "cbr(24M)".parse::<CcKind>().unwrap(),
            CcKind::ConstantRate(24e6)
        );
        assert!("quic".parse::<CcKind>().is_err());
    }

    #[test]
    fn table1_expectations() {
        // Table 1 of the paper.
        assert!(CcKind::Cubic.expected_elastic());
        assert!(CcKind::NewReno.expected_elastic());
        assert!(CcKind::Copa.expected_elastic());
        assert!(CcKind::Vegas.expected_elastic());
        assert!(!CcKind::Vivace.expected_elastic());
        assert!(CcKind::Dctcp.expected_elastic());
        assert!(!CcKind::ConstantRate(1e6).expected_elastic());
    }
}
