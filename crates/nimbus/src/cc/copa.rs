//! Copa (Arun & Balakrishnan, NSDI 2018 — the paper's reference \[2\]).
//!
//! Copa targets a sending rate of `1/(δ·d_q)` packets per RTT where `d_q` is
//! the estimated queueing delay.  The window moves towards the target with a
//! velocity parameter that doubles while the direction is consistent.
//!
//! Copa's *mode switching* — the behaviour Nimbus is compared against in
//! §8.2 / Fig. 14 — works by watching whether the queue nearly empties once
//! every 5 RTTs: if `RTTstanding − RTTmin` fails to drop below a threshold in
//! that window, Copa concludes a non-Copa (buffer-filling) flow is present
//! and switches to a competitive mode where `δ` is adjusted AIMD-style
//! (making it as aggressive as TCP).  This reproduction implements exactly
//! that detector so its failure modes (high inelastic load, high-RTT elastic
//! competitors — Figs. 23/24) can be reproduced.

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use nimbus_core_types::Time;
use std::collections::VecDeque;

/// Which mode Copa is currently operating in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopaMode {
    /// The default (delay-controlling) mode with δ = 0.5.
    Default,
    /// TCP-competitive mode: δ adapted multiplicatively to match AIMD.
    Competitive,
}

/// The Copa congestion controller.
#[derive(Debug, Clone)]
pub struct Copa {
    cwnd: f64,
    /// Velocity parameter.
    velocity: f64,
    /// Direction of the last window change: +1 up, -1 down, 0 unknown.
    direction: i8,
    /// Number of consecutive RTTs the direction has been the same.
    same_direction_rtts: u32,
    /// δ in default mode.
    delta_default: f64,
    /// Current δ (differs from `delta_default` in competitive mode).
    delta: f64,
    mode: CopaMode,
    /// Recent (time, rtt) samples used for RTT-standing and the
    /// nearly-empty-queue detector.
    rtt_samples: VecDeque<(Time, Time)>,
    min_rtt: Time,
    /// Time the mode detector last saw the queue nearly empty.
    last_near_empty: Time,
    /// Bookkeeping for per-RTT updates.
    last_window_update: Time,
    in_slow_start: bool,
    /// History of mode over time, for experiment introspection.
    mode_log: Vec<(f64, CopaMode)>,
}

impl Copa {
    /// A Copa controller with the paper's default δ = 0.5.
    pub fn new() -> Self {
        Copa {
            cwnd: 10.0,
            velocity: 1.0,
            direction: 0,
            same_direction_rtts: 0,
            delta_default: 0.5,
            delta: 0.5,
            mode: CopaMode::Default,
            rtt_samples: VecDeque::new(),
            min_rtt: Time::MAX,
            last_near_empty: Time::ZERO,
            last_window_update: Time::ZERO,
            in_slow_start: true,
            mode_log: Vec::new(),
        }
    }

    /// The current operating mode.
    pub fn mode(&self) -> CopaMode {
        self.mode
    }

    /// Log of `(time_seconds, mode)` entries, appended whenever the mode changes.
    pub fn mode_log(&self) -> &[(f64, CopaMode)] {
        &self.mode_log
    }

    /// "RTT standing": the minimum RTT over the last srtt/2 (approximated
    /// here by the last half of the sample window), a low-noise estimate of
    /// the current queueing situation.
    fn rtt_standing(&self) -> Time {
        let n = self.rtt_samples.len();
        if n == 0 {
            return self.min_rtt;
        }
        let start = n / 2;
        self.rtt_samples
            .iter()
            .skip(start)
            .map(|&(_, r)| r)
            .min()
            .unwrap_or(self.min_rtt)
    }

    /// Update the buffer-filling-competitor detector ("switch to competitive
    /// mode unless the queue nearly empties every 5 RTTs").
    fn update_mode(&mut self, now: Time) {
        let dq = self.rtt_standing().saturating_sub(self.min_rtt);
        // "Nearly empty": queueing delay below 10% of (a floor of) the min RTT.
        let near_empty_thresh = Time::from_secs_f64((self.min_rtt.as_secs_f64() * 0.1).max(0.002));
        if dq <= near_empty_thresh {
            self.last_near_empty = now;
        }
        let five_rtts = Time::from_secs_f64(self.min_rtt.as_secs_f64() * 5.0);
        let new_mode =
            if now.saturating_sub(self.last_near_empty) > five_rtts.max(Time::from_millis(25)) {
                CopaMode::Competitive
            } else {
                CopaMode::Default
            };
        if new_mode != self.mode {
            self.mode = new_mode;
            self.mode_log.push((now.as_secs_f64(), new_mode));
            if new_mode == CopaMode::Default {
                self.delta = self.delta_default;
            }
        }
    }

    /// Adjust δ in competitive mode: behave like AIMD on 1/δ.
    fn update_competitive_delta(&mut self, lost: bool) {
        if self.mode != CopaMode::Competitive {
            return;
        }
        if lost {
            self.delta = (self.delta * 2.0).min(self.delta_default);
        } else {
            // 1/δ grows by 1 per RTT, capped so δ doesn't collapse to zero.
            self.delta = 1.0 / (1.0 / self.delta + 1.0);
            self.delta = self.delta.max(0.05);
        }
    }
}

impl Default for Copa {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Copa {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let now = ack.now;
        self.min_rtt = self.min_rtt.min(ack.rtt);
        self.rtt_samples.push_back((now, ack.rtt));
        // Keep ~4 RTTs of samples.
        let horizon = now.saturating_sub(Time::from_secs_f64(self.min_rtt.as_secs_f64() * 4.0));
        while let Some(&(t, _)) = self.rtt_samples.front() {
            if t < horizon {
                self.rtt_samples.pop_front();
            } else {
                break;
            }
        }

        self.update_mode(now);

        let dq = self
            .rtt_standing()
            .saturating_sub(self.min_rtt)
            .as_secs_f64();
        let srtt = ack.rtt.as_secs_f64().max(1e-4);

        // Slow start: double per RTT until the target rate is crossed.
        if self.in_slow_start {
            self.cwnd += ack.newly_acked_packets as f64;
            if dq > 1e-4 {
                let target_rate = 1.0 / (self.delta * dq);
                let current_rate = self.cwnd / srtt;
                if current_rate >= target_rate {
                    self.in_slow_start = false;
                }
            }
            return;
        }

        // Copa window update: move cwnd towards target = 1/(δ·dq) pkts/s.
        let current_rate = self.cwnd / srtt;
        let target_rate = if dq > 1e-5 {
            1.0 / (self.delta * dq)
        } else {
            f64::INFINITY
        };
        // Cap the per-ACK step at one packet so that even at maximum velocity
        // the window at most doubles per RTT (as in the reference Copa).
        let step = ((self.velocity * ack.newly_acked_packets as f64) / (self.delta * self.cwnd))
            .min(ack.newly_acked_packets as f64);
        let new_direction: i8 = if current_rate < target_rate {
            self.cwnd += step;
            1
        } else {
            self.cwnd -= step;
            -1
        };
        self.cwnd = self.cwnd.max(2.0);

        // Velocity: once per RTT, double if the direction has been consistent
        // for at least 3 RTTs, reset otherwise.
        if now.saturating_sub(self.last_window_update).as_secs_f64() >= srtt {
            self.last_window_update = now;
            if new_direction == self.direction {
                self.same_direction_rtts += 1;
                if self.same_direction_rtts >= 3 {
                    self.velocity = (self.velocity * 2.0).min(1024.0);
                }
            } else {
                self.velocity = 1.0;
                self.same_direction_rtts = 0;
            }
            self.direction = new_direction;
            self.update_competitive_delta(false);
        }
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        // Copa reacts to loss only mildly in default mode (delay carries the
        // signal); in competitive mode δ doubles (the AIMD decrease on 1/δ).
        self.update_competitive_delta(true);
        self.in_slow_start = false;
        self.cwnd = (self.cwnd * 0.7).max(2.0);
        self.velocity = 1.0;
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.cwnd = 2.0;
                self.velocity = 1.0;
                self.in_slow_start = true;
            }
            // Copa targets a delay budget; CE marks reflect queue state its
            // own target-rate law already tracks.
            CongestionEvent::EcnCe { .. } => {}
        }
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn name(&self) -> &'static str {
        "copa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: f64, rtt_ms: f64, min_seen_ms: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis_f64(now_ms),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis_f64(rtt_ms),
            min_rtt: Time::from_millis_f64(min_seen_ms),
            in_flight_packets: 20,
            mss: 1500,
        }
    }

    #[test]
    fn starts_in_default_mode_and_slow_start() {
        let cc = Copa::new();
        assert_eq!(cc.mode(), CopaMode::Default);
        assert!(cc.in_slow_start);
    }

    #[test]
    fn low_delay_keeps_default_mode() {
        let mut cc = Copa::new();
        let mut now = 0.0;
        // Queue nearly empty all the time (rtt ≈ min rtt).
        for _ in 0..2000 {
            now += 5.0;
            cc.on_packet_acked(&ack(now, 51.0, 50.0));
        }
        assert_eq!(cc.mode(), CopaMode::Default);
    }

    #[test]
    fn persistent_queue_triggers_competitive_mode() {
        let mut cc = Copa::new();
        // Establish the min RTT first.
        cc.on_packet_acked(&ack(1.0, 50.0, 50.0));
        let mut now = 1.0;
        // Queueing delay stuck at 60 ms (never nearly empty).
        for _ in 0..2000 {
            now += 5.0;
            cc.on_packet_acked(&ack(now, 110.0, 50.0));
        }
        assert_eq!(cc.mode(), CopaMode::Competitive);
        assert!(!cc.mode_log().is_empty());
    }

    #[test]
    fn competitive_mode_reverts_when_queue_drains_again() {
        let mut cc = Copa::new();
        cc.on_packet_acked(&ack(1.0, 50.0, 50.0));
        let mut now = 1.0;
        for _ in 0..2000 {
            now += 5.0;
            cc.on_packet_acked(&ack(now, 120.0, 50.0));
        }
        assert_eq!(cc.mode(), CopaMode::Competitive);
        // Queue drains periodically again.
        for _ in 0..2000 {
            now += 5.0;
            cc.on_packet_acked(&ack(now, 52.0, 50.0));
        }
        assert_eq!(cc.mode(), CopaMode::Default);
    }

    #[test]
    fn window_shrinks_when_delay_is_high_in_default_mode() {
        let mut cc = Copa::new();
        cc.in_slow_start = false;
        cc.cwnd = 100.0;
        cc.min_rtt = Time::from_millis(50);
        let mut now = 0.0;
        // 100 ms of queueing: target rate = 1/(0.5*0.1) = 20 pkt/s, far below
        // current 100/0.15 ≈ 667 pkt/s, so the window must come down while the
        // controller is still in its default (delay-controlling) mode.  We only
        // look at the first 200 ms, before the buffer-filling detector can
        // legitimately flip Copa into competitive mode.
        for _ in 0..40 {
            now += 5.0;
            cc.on_packet_acked(&ack(now, 150.0, 50.0));
        }
        assert!(cc.cwnd_packets() < 100.0, "cwnd {}", cc.cwnd_packets());
        assert!(cc.direction < 0, "Copa should be moving the window down");
    }

    #[test]
    fn window_grows_when_queue_is_empty() {
        let mut cc = Copa::new();
        cc.in_slow_start = false;
        cc.cwnd = 10.0;
        cc.min_rtt = Time::from_millis(50);
        let mut now = 0.0;
        for _ in 0..500 {
            now += 5.0;
            cc.on_packet_acked(&ack(now, 50.5, 50.0));
        }
        assert!(cc.cwnd_packets() > 20.0, "cwnd {}", cc.cwnd_packets());
    }

    #[test]
    fn velocity_accelerates_consistent_direction() {
        let mut cc = Copa::new();
        cc.in_slow_start = false;
        cc.cwnd = 10.0;
        cc.min_rtt = Time::from_millis(50);
        let mut now = 0.0;
        // While the window is far below the target the direction is
        // consistently "up", so after a handful of RTTs the velocity parameter
        // must have started doubling.  (Near equilibrium it legitimately
        // resets to 1, so we probe mid-ramp.)
        let mut max_velocity: f64 = 0.0;
        for _ in 0..150 {
            now += 10.0;
            cc.on_packet_acked(&ack(now, 50.5, 50.0));
            max_velocity = max_velocity.max(cc.velocity);
        }
        assert!(max_velocity > 1.0, "max velocity {max_velocity}");
        assert!(cc.cwnd_packets() > 10.0);
    }

    #[test]
    fn loss_and_timeout_behave_sanely() {
        let mut cc = Copa::new();
        cc.cwnd = 60.0;
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 60,
        });
        assert!(cc.cwnd_packets() < 60.0);
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!(cc.cwnd_packets() <= 2.0);
    }
}
