//! BBR (Cardwell et al. — the paper's reference \[5\]), modelled after v1.
//!
//! BBR estimates the bottleneck bandwidth `b` (max delivery rate over a
//! 10-RTT window) and the minimum RTT `d` (min over 10 s), paces at
//! `gain · b` and caps in-flight data at `2·b·d`.  ProbeBW cycles the pacing
//! gain through `[1.25, 0.75, 1, 1, 1, 1, 1, 1]`.
//!
//! In the paper BBR matters in two ways: as a baseline (Figs. 8, 9, 18, 19)
//! and as cross traffic whose elasticity classification depends on the buffer
//! size (Table 1, Appendix C): with deep buffers its in-flight cap makes it
//! ACK-clocked (elastic), with shallow buffers it is rate-limited (inelastic).

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use crate::ccp::Report;
use nimbus_core_types::Time;
use nimbus_dsp::{WindowedMax, WindowedMin};

/// BBR's operating state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// The pacing-gain cycle used in ProbeBW.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Startup gain (2/ln 2).
const STARTUP_GAIN: f64 = 2.885;

/// The BBR congestion controller.
#[derive(Debug)]
pub struct Bbr {
    state: State,
    mss: u32,
    /// Max delivery rate filter (bits/s) over ~10 RTTs.
    btl_bw: WindowedMax,
    /// Min RTT filter over 10 seconds.
    min_rtt: WindowedMin,
    /// Current pacing gain.
    pacing_gain: f64,
    cycle_index: usize,
    cycle_start: Time,
    /// Count of ProbeRTT entries, for diagnostics.
    probe_rtt_entries: u32,
    probe_rtt_done: Option<Time>,
    last_probe_rtt: Time,
    /// Full-pipe detection: bandwidth growth tracking in startup.
    full_bw: f64,
    full_bw_count: u32,
    /// Fallback window before any estimates exist.
    initial_cwnd: f64,
}

impl Bbr {
    /// A BBR controller for flows with the given MSS.
    pub fn new(mss: u32) -> Self {
        Bbr {
            state: State::Startup,
            mss,
            btl_bw: WindowedMax::new(3.0),
            min_rtt: WindowedMin::new(10.0),
            pacing_gain: STARTUP_GAIN,
            cycle_index: 0,
            cycle_start: Time::ZERO,
            probe_rtt_entries: 0,
            probe_rtt_done: None,
            last_probe_rtt: Time::ZERO,
            full_bw: 0.0,
            full_bw_count: 0,
            initial_cwnd: 10.0,
        }
    }

    fn btl_bw_bps(&self) -> f64 {
        self.btl_bw.max().unwrap_or(0.0)
    }

    fn min_rtt_s(&self) -> f64 {
        self.min_rtt.min().unwrap_or(0.1)
    }

    /// Bandwidth-delay product in packets.
    fn bdp_packets(&self) -> f64 {
        let bw = self.btl_bw_bps();
        if bw <= 0.0 {
            return self.initial_cwnd;
        }
        bw * self.min_rtt_s() / 8.0 / self.mss as f64
    }

    fn check_full_pipe(&mut self) {
        let bw = self.btl_bw_bps();
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
        }
    }

    fn advance_cycle(&mut self, now: Time) {
        let phase_len = Time::from_secs_f64(self.min_rtt_s().max(0.01));
        if now.saturating_sub(self.cycle_start) >= phase_len {
            self.cycle_start = now;
            self.cycle_index = (self.cycle_index + 1) % GAIN_CYCLE.len();
            self.pacing_gain = GAIN_CYCLE[self.cycle_index];
        }
    }

    /// Current operating-state name (diagnostics).
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Startup => "startup",
            State::Drain => "drain",
            State::ProbeBw => "probe_bw",
            State::ProbeRtt => "probe_rtt",
        }
    }
}

impl CongestionControl for Bbr {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let now = ack.now;
        self.min_rtt
            .update(now.as_secs_f64(), ack.rtt.as_secs_f64());

        match self.state {
            State::Startup => {
                self.check_full_pipe();
                if self.full_bw_count >= 3 {
                    self.state = State::Drain;
                    self.pacing_gain = 1.0 / STARTUP_GAIN;
                }
            }
            State::Drain => {
                if (ack.in_flight_packets as f64) <= self.bdp_packets() {
                    self.state = State::ProbeBw;
                    self.cycle_start = now;
                    self.cycle_index = 2; // start in a neutral phase
                    self.pacing_gain = GAIN_CYCLE[self.cycle_index];
                }
            }
            State::ProbeBw => {
                self.advance_cycle(now);
                // Enter ProbeRTT if the min-RTT sample is stale (10 s).
                if now.saturating_sub(self.last_probe_rtt) > Time::from_secs_f64(10.0)
                    && self.min_rtt.min().is_none()
                {
                    self.state = State::ProbeRtt;
                    self.probe_rtt_entries += 1;
                    self.probe_rtt_done = Some(now + Time::from_millis(200));
                }
            }
            State::ProbeRtt => {
                if let Some(done) = self.probe_rtt_done {
                    if now >= done {
                        self.state = State::ProbeBw;
                        self.last_probe_rtt = now;
                        self.cycle_start = now;
                        self.pacing_gain = 1.0;
                    }
                }
            }
        }
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        // BBR v1 largely ignores individual losses (no multiplicative decrease).
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                // Conservative: restart the bandwidth estimate.
                self.full_bw = 0.0;
                self.full_bw_count = 0;
                self.state = State::Startup;
                self.pacing_gain = STARTUP_GAIN;
            }
            // BBR v1 famously ignores ECN; it paces to the model.
            CongestionEvent::EcnCe { .. } => {}
        }
    }

    fn on_report(&mut self, report: &Report) {
        // Delivery-rate sample for the bottleneck bandwidth filter.
        if report.recv_rate_bps > 0.0 {
            self.btl_bw.update(report.now_s, report.recv_rate_bps);
        }
    }

    fn cwnd_packets(&self) -> f64 {
        match self.state {
            State::ProbeRtt => 4.0,
            // The in-flight cap of 2·BDP ("cap on its in-flight data based on d").
            _ => (2.0 * self.bdp_packets()).max(self.initial_cwnd),
        }
    }

    fn pacing_rate_bps(&self, _now: Time) -> Option<f64> {
        let bw = self.btl_bw_bps();
        if bw <= 0.0 {
            // No estimate yet: pace fast enough to grow (startup behaviour is
            // then governed by the cwnd).
            None
        } else {
            Some(self.pacing_gain * bw)
        }
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, in_flight: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis(rtt_ms),
            min_rtt: Time::from_millis(rtt_ms),
            in_flight_packets: in_flight,
            mss: 1500,
        }
    }

    fn report(now_s: f64, recv_bps: f64) -> Report {
        Report {
            now_s,
            send_rate_bps: recv_bps,
            recv_rate_bps: recv_bps,
            acked_bytes: 0,
            lost_packets: 0,
            rtt_s: 0.05,
            min_rtt_s: 0.05,
            window_acks: 20,
            marked_packets: 0,
            marked_bytes: 0,
        }
    }

    #[test]
    fn starts_in_startup_with_high_gain() {
        let bbr = Bbr::new(1500);
        assert_eq!(bbr.state_name(), "startup");
        assert!(bbr.pacing_gain > 2.0);
        assert!(bbr.pacing_rate_bps(Time::ZERO).is_none());
    }

    #[test]
    fn exits_startup_when_bandwidth_plateaus() {
        let mut bbr = Bbr::new(1500);
        // Bandwidth stops growing at 48 Mbit/s.
        for i in 0..20 {
            bbr.on_report(&report(i as f64 * 0.05, 48e6));
            bbr.on_packet_acked(&ack(i * 50, 50, 100));
        }
        assert_ne!(bbr.state_name(), "startup");
    }

    #[test]
    fn reaches_probe_bw_and_cycles_gain() {
        let mut bbr = Bbr::new(1500);
        for i in 0..10 {
            bbr.on_report(&report(i as f64 * 0.05, 48e6));
            bbr.on_packet_acked(&ack(i * 50, 50, 300));
        }
        // Drain: in-flight drops to BDP (= 48e6*0.05/8/1500 = 200 pkts).
        for i in 10..20 {
            bbr.on_packet_acked(&ack(i * 50, 50, 150));
        }
        assert_eq!(bbr.state_name(), "probe_bw");
        // Collect distinct pacing gains over several cycles.
        let mut gains = std::collections::BTreeSet::new();
        for i in 20..120 {
            bbr.on_packet_acked(&ack(i * 50, 50, 150));
            gains.insert((bbr.pacing_gain * 100.0) as i64);
        }
        assert!(gains.contains(&125), "should probe up, gains: {gains:?}");
        assert!(gains.contains(&75), "should drain, gains: {gains:?}");
        assert!(gains.contains(&100));
    }

    #[test]
    fn pacing_rate_tracks_bandwidth_estimate() {
        let mut bbr = Bbr::new(1500);
        bbr.on_report(&report(0.0, 96e6));
        bbr.on_packet_acked(&ack(50, 50, 10));
        let rate = bbr.pacing_rate_bps(Time::from_millis(50)).unwrap();
        assert!(rate > 96e6, "startup gain should exceed the estimate");
    }

    #[test]
    fn cwnd_caps_at_twice_bdp() {
        let mut bbr = Bbr::new(1500);
        bbr.on_report(&report(0.0, 96e6));
        bbr.on_packet_acked(&ack(50, 50, 10));
        // BDP = 96e6 * 0.05 / 8 / 1500 = 400 packets.
        assert!(
            (bbr.cwnd_packets() - 800.0).abs() < 10.0,
            "cwnd {}",
            bbr.cwnd_packets()
        );
    }

    #[test]
    fn loss_does_not_reduce_rate() {
        let mut bbr = Bbr::new(1500);
        bbr.on_report(&report(0.0, 50e6));
        bbr.on_packet_acked(&ack(50, 50, 10));
        let before = bbr.pacing_rate_bps(Time::from_millis(60));
        bbr.on_packets_lost(&LossEvent {
            now: Time::from_millis(60),
            lost_packets: 1,
            in_flight_packets: 100,
        });
        let after = bbr.pacing_rate_bps(Time::from_millis(60));
        assert_eq!(before, after);
    }

    #[test]
    fn timeout_restarts_startup() {
        let mut bbr = Bbr::new(1500);
        for i in 0..20 {
            bbr.on_report(&report(i as f64 * 0.05, 48e6));
            bbr.on_packet_acked(&ack(i * 50, 50, 100));
        }
        bbr.on_congestion_event(&CongestionEvent::Rto {
            now: Time::from_secs_f64(2.0),
        });
        assert_eq!(bbr.state_name(), "startup");
    }
}
