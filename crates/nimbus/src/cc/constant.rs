//! Inelastic "controllers": constant-bit-rate pacing and no control at all.
//!
//! Inelastic cross traffic in the paper comes in two shapes:
//!
//! * a **constant-bit-rate stream** (e.g. "a 96 Mbit/s constant bit-rate
//!   stream", Fig. 17) — [`ConstantRate`] paces at a fixed rate regardless of
//!   what the network does;
//! * **Poisson packet arrivals / application-limited flows** — the
//!   [`Unlimited`] controller simply sends whenever the application has data
//!   (a host-side source — the simulator's `PoissonSource` or
//!   `ScriptedSource` in `nimbus-transport` — provides the shaping).
//!
//! Neither reacts to ACK timing, loss or delay, which is precisely what makes
//! them inelastic.

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use nimbus_core_types::Time;

/// Fixed-rate pacing with an effectively unlimited window.
#[derive(Debug, Clone)]
pub struct ConstantRate {
    rate_bps: f64,
}

impl ConstantRate {
    /// Pace at `rate_bps` forever.
    pub fn new(rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        ConstantRate { rate_bps }
    }

    /// Change the target rate (used by scripted scenarios).
    pub fn set_rate(&mut self, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        self.rate_bps = rate_bps;
    }
}

impl CongestionControl for ConstantRate {
    fn on_packet_acked(&mut self, _ack: &AckEvent) {}
    fn on_packets_lost(&mut self, _loss: &LossEvent) {}
    fn on_congestion_event(&mut self, _event: &CongestionEvent) {}

    fn cwnd_packets(&self) -> f64 {
        1e9
    }

    fn pacing_rate_bps(&self, _now: Time) -> Option<f64> {
        Some(self.rate_bps)
    }

    fn name(&self) -> &'static str {
        "cbr"
    }
}

/// No congestion control: transmit whenever the application has data.
///
/// Combined with a rate-shaped host source (`nimbus_transport::Source`
/// in the simulator) this models
/// application-limited traffic (short flows, video below its fair share,
/// Poisson aggregates).
#[derive(Debug, Clone, Default)]
pub struct Unlimited;

impl Unlimited {
    /// An unlimited sender.
    pub fn new() -> Self {
        Unlimited
    }
}

impl CongestionControl for Unlimited {
    fn on_packet_acked(&mut self, _ack: &AckEvent) {}
    fn on_packets_lost(&mut self, _loss: &LossEvent) {}
    fn on_congestion_event(&mut self, _event: &CongestionEvent) {}

    fn cwnd_packets(&self) -> f64 {
        1e9
    }

    fn name(&self) -> &'static str {
        "unlimited"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack() -> AckEvent {
        AckEvent {
            now: Time::from_millis(10),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis(200),
            min_rtt: Time::from_millis(50),
            in_flight_packets: 1000,
            mss: 1500,
        }
    }

    #[test]
    fn constant_rate_ignores_every_signal() {
        let mut cc = ConstantRate::new(24e6);
        let before = cc.pacing_rate_bps(Time::ZERO);
        cc.on_packet_acked(&ack());
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 100,
        });
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert_eq!(cc.pacing_rate_bps(Time::from_secs_f64(10.0)), before);
        assert_eq!(before, Some(24e6));
        assert!(cc.cwnd_packets() > 1e6);
    }

    #[test]
    fn constant_rate_can_be_retargeted() {
        let mut cc = ConstantRate::new(24e6);
        cc.set_rate(80e6);
        assert_eq!(cc.pacing_rate_bps(Time::ZERO), Some(80e6));
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = ConstantRate::new(0.0);
    }

    #[test]
    fn unlimited_has_no_pacing_and_huge_window() {
        let mut cc = Unlimited::new();
        cc.on_packet_acked(&ack());
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 5,
        });
        assert!(cc.pacing_rate_bps(Time::ZERO).is_none());
        assert!(cc.cwnd_packets() > 1e6);
        assert_eq!(cc.name(), "unlimited");
    }
}
