//! TCP Cubic congestion control (Ha, Rhee, Xu — the paper's reference \[12\]).
//!
//! Cubic is the paper's default TCP-competitive mode and its canonical
//! example of elastic, buffer-filling cross traffic.  The window grows as
//! `W(t) = C·(t − K)³ + W_max` after a loss, with the TCP-friendly region
//! ensuring it is never slower than Reno.

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use nimbus_core_types::Time;

/// Cubic's scaling constant (RFC 8312).
const C: f64 = 0.4;
/// Multiplicative decrease factor.
const BETA: f64 = 0.7;

/// TCP Cubic.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Time of the last congestion event.
    epoch_start: Option<Time>,
    /// Time offset at which the cubic curve crosses `w_max`.
    k: f64,
    /// Estimate of what Reno's window would be (TCP-friendly region).
    w_est: f64,
    initial_cwnd: f64,
    /// ACKed packets still to count before another classic-ECN reaction is
    /// allowed (RFC 3168: at most one multiplicative decrease per window).
    ce_acks_to_reopen: f64,
}

impl Cubic {
    /// A Cubic controller with an initial window of 10 segments.
    pub fn new() -> Self {
        Cubic {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            initial_cwnd: 10.0,
            ce_acks_to_reopen: 0.0,
        }
    }

    /// Whether the controller is currently in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn enter_epoch(&mut self, now: Time) {
        self.epoch_start = Some(now);
        if self.cwnd < self.w_max {
            self.k = ((self.w_max - self.cwnd) / C).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.cwnd;
        }
        self.w_est = self.cwnd;
    }

    fn cubic_window(&self, t_since_epoch: f64) -> f64 {
        C * (t_since_epoch - self.k).powi(3) + self.w_max
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let acked = ack.newly_acked_packets as f64;
        self.ce_acks_to_reopen = (self.ce_acks_to_reopen - acked).max(0.0);
        if self.in_slow_start() {
            self.cwnd += acked;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(ack.now);
        }
        let t = ack
            .now
            .saturating_sub(self.epoch_start.unwrap())
            .as_secs_f64();
        let rtt = ack.rtt.as_secs_f64().max(1e-4);
        // Target one RTT ahead on the cubic curve (RFC 8312 §4.1).
        let target = self.cubic_window(t + rtt);
        if target > self.cwnd {
            self.cwnd += (target - self.cwnd) / self.cwnd * acked;
        } else {
            // Slow growth when above the curve.
            self.cwnd += 0.01 * acked / self.cwnd;
        }
        // TCP-friendly region: emulate Reno with beta-adjusted AIMD.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * acked / self.cwnd;
        if self.w_est > self.cwnd {
            self.cwnd = self.w_est;
        }
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * BETA).max(2.0);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.w_max = self.cwnd;
                self.ssthresh = (self.cwnd * BETA).max(2.0);
                self.cwnd = self.initial_cwnd.min(self.ssthresh).max(1.0);
                self.epoch_start = None;
            }
            CongestionEvent::EcnCe { .. } => {
                // Classic ECN: the fast-retransmit decrease (β, new epoch),
                // at most once per window of ACKs.
                if self.ce_acks_to_reopen <= 0.0 {
                    self.w_max = self.cwnd;
                    self.ssthresh = (self.cwnd * BETA).max(2.0);
                    self.cwnd = self.ssthresh;
                    self.epoch_start = None;
                    self.ce_acks_to_reopen = self.cwnd;
                }
            }
        }
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn reinitialize(&mut self, rate_bps: f64, rtt_s: f64, mss: u32) {
        let cwnd = (rate_bps * rtt_s / 8.0 / mss as f64).max(2.0);
        self.cwnd = cwnd;
        self.ssthresh = cwnd;
        self.w_max = cwnd;
        self.epoch_start = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis(rtt_ms),
            min_rtt: Time::from_millis(rtt_ms),
            in_flight_packets: 10,
            mss: 1500,
        }
    }

    #[test]
    fn slow_start_grows_quickly() {
        let mut cc = Cubic::new();
        let w0 = cc.cwnd_packets();
        for i in 0..10 {
            cc.on_packet_acked(&ack_at(i * 5, 50));
        }
        assert!(cc.cwnd_packets() >= w0 + 10.0 - 1e-9);
    }

    #[test]
    fn loss_reduces_window_by_beta() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0;
        cc.on_packets_lost(&LossEvent {
            now: Time::from_millis(100),
            lost_packets: 1,
            in_flight_packets: 100,
        });
        assert!((cc.cwnd_packets() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_window_recovers_towards_wmax_and_beyond() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0;
        cc.on_packets_lost(&LossEvent {
            now: Time::from_millis(0),
            lost_packets: 1,
            in_flight_packets: 100,
        });
        let after_loss = cc.cwnd_packets();
        // Feed ACKs steadily for 20 simulated seconds.
        let mut now_ms = 0;
        for _ in 0..4000 {
            now_ms += 5;
            cc.on_packet_acked(&ack_at(now_ms, 50));
        }
        // Window should have recovered past w_max (concave then convex growth).
        assert!(cc.cwnd_packets() > after_loss);
        assert!(cc.cwnd_packets() > 100.0, "cwnd {}", cc.cwnd_packets());
    }

    #[test]
    fn growth_is_slow_near_wmax_fast_far_from_it() {
        // Concavity: the per-second growth right after the loss is larger
        // than the per-second growth around the plateau time K, where the
        // cubic curve flattens out at w_max.
        let mut cc = Cubic::new();
        cc.cwnd = 200.0;
        cc.ssthresh = 100.0;
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 200,
        });
        // After the loss cwnd = 140, w_max = 200, so K = ((200-140)/0.4)^(1/3) ≈ 5.3 s.
        let mut now_ms: u64 = 0;
        let mut cwnd_at = std::collections::BTreeMap::new();
        for _ in 0..2000 {
            now_ms += 5;
            cc.on_packet_acked(&ack_at(now_ms, 50));
            cwnd_at.insert(now_ms, cc.cwnd_packets());
        }
        let growth = |from_ms: u64, to_ms: u64| cwnd_at[&to_ms] - cwnd_at[&from_ms];
        let early = growth(5, 1000);
        let plateau = growth(4800, 5800);
        assert!(
            early > plateau * 2.0,
            "early {early} should exceed plateau growth {plateau}"
        );
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = Cubic::new();
        cc.cwnd = 80.0;
        cc.ssthresh = 40.0;
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!(cc.cwnd_packets() <= 10.0);
    }

    #[test]
    fn ce_cuts_by_beta_at_most_once_per_window() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0;
        let ce = CongestionEvent::EcnCe {
            now: Time::ZERO,
            marked_bytes: 1500,
        };
        for _ in 0..50 {
            cc.on_congestion_event(&ce);
        }
        assert!((cc.cwnd_packets() - 70.0).abs() < 1e-9, "one beta cut");
        for _ in 0..70 {
            cc.on_packet_acked(&ack_at(100, 50));
        }
        cc.on_congestion_event(&ce);
        assert!(cc.cwnd_packets() < 55.0, "gate reopens after a window");
    }

    #[test]
    fn window_never_below_one() {
        let mut cc = Cubic::new();
        for _ in 0..50 {
            cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
            cc.on_packets_lost(&LossEvent {
                now: Time::ZERO,
                lost_packets: 1,
                in_flight_packets: 1,
            });
        }
        assert!(cc.cwnd_packets() >= 1.0);
    }
}
