//! TCP Vegas (Brakmo & Peterson — the paper's reference \[3\]).
//!
//! Vegas estimates the number of its own packets sitting in the bottleneck
//! queue as `diff = cwnd · (1 − baseRTT/RTT)` and holds it between `α` and
//! `β` packets.  It is one of the paper's delay-control-mode options and the
//! canonical example of a scheme that is starved by loss-based cross traffic
//! (Figs. 8, 9, 11).

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use nimbus_core_types::Time;

/// TCP Vegas.
#[derive(Debug, Clone)]
pub struct Vegas {
    cwnd: f64,
    ssthresh: f64,
    /// Lower bound on queued packets.
    alpha: f64,
    /// Upper bound on queued packets.
    beta: f64,
    /// Per-RTT adjustment bookkeeping: the window is adjusted once per RTT.
    rtt_start: Option<Time>,
    rtt_min_in_round: f64,
    /// Vegas slow start grows the window only every other RTT, so that each
    /// growth round is followed by a measurement round with an un-lagged RTT.
    growth_round: bool,
}

impl Vegas {
    /// Vegas with the standard `α = 2`, `β = 4` thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(2.0, 4.0)
    }

    /// Vegas with custom thresholds.
    pub fn with_thresholds(alpha: f64, beta: f64) -> Self {
        assert!(alpha <= beta);
        Vegas {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            alpha,
            beta,
            rtt_start: None,
            rtt_min_in_round: f64::INFINITY,
            growth_round: true,
        }
    }

    /// Expected minus actual throughput difference, in packets queued.
    fn diff_packets(&self, rtt: f64, base_rtt: f64) -> f64 {
        if rtt <= 0.0 || base_rtt <= 0.0 {
            return 0.0;
        }
        self.cwnd * (1.0 - base_rtt / rtt)
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Vegas {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let rtt = ack.rtt.as_secs_f64();
        let base = ack.min_rtt.as_secs_f64();
        self.rtt_min_in_round = self.rtt_min_in_round.min(rtt);

        // Once per RTT, evaluate the diff rule.
        let round_elapsed = match self.rtt_start {
            None => true,
            Some(start) => ack.now.saturating_sub(start).as_secs_f64() >= base,
        };
        if !round_elapsed {
            // During slow start still grow per ACK, but only in growth rounds
            // (Vegas doubles every *other* RTT so the alternate rounds yield
            // congestion-free RTT measurements).
            if self.cwnd < self.ssthresh && self.growth_round {
                self.cwnd += ack.newly_acked_packets as f64;
            }
            return;
        }
        let measured_rtt = if self.rtt_min_in_round.is_finite() {
            self.rtt_min_in_round
        } else {
            rtt
        };
        self.rtt_start = Some(ack.now);
        self.rtt_min_in_round = f64::INFINITY;
        self.growth_round = !self.growth_round;

        let diff = self.diff_packets(measured_rtt, base);
        if self.cwnd < self.ssthresh {
            // Slow start with the Vegas brake.  The brake uses the *latest*
            // RTT (not the round minimum): during slow start the queue builds
            // within the round, and the round minimum would hide it.  On
            // exit, clamp the window to the delay-free target
            // (cwnd·baseRTT/RTT) as Linux's Vegas does, so the slow-start
            // overshoot does not leave a standing queue.
            let ss_diff = self.diff_packets(rtt, base);
            if ss_diff > 1.0 {
                if rtt > 0.0 && base > 0.0 {
                    let target = self.cwnd * base / rtt + 1.0;
                    self.cwnd = self.cwnd.min(target);
                }
                self.ssthresh = self.cwnd;
            } else {
                self.cwnd += 1.0;
            }
        } else if diff < self.alpha {
            self.cwnd += 1.0;
        } else if diff > self.beta {
            self.cwnd -= 1.0;
        }
        self.cwnd = self.cwnd.max(2.0);
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        self.ssthresh = (self.cwnd * 0.75).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = 2.0;
            }
            // Vegas reads congestion from queueing delay; a CE mark implies
            // standing queue the diff term already sees, so no extra cut.
            CongestionEvent::EcnCe { .. } => {}
        }
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn name(&self) -> &'static str {
        "vegas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, min_rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            newly_acked_packets: 1,
            newly_acked_bytes: 1500,
            rtt: Time::from_millis(rtt_ms),
            min_rtt: Time::from_millis(min_rtt_ms),
            in_flight_packets: 10,
            mss: 1500,
        }
    }

    #[test]
    fn grows_when_queue_is_below_alpha() {
        let mut cc = Vegas::new();
        cc.ssthresh = 5.0; // out of slow start
        let w0 = cc.cwnd_packets();
        // RTT equal to base RTT => diff = 0 < alpha => +1 per RTT.
        let mut now = 0;
        for _ in 0..10 {
            now += 60;
            cc.on_packet_acked(&ack(now, 50, 50));
        }
        assert!(cc.cwnd_packets() > w0 + 5.0);
    }

    #[test]
    fn shrinks_when_queue_is_above_beta() {
        let mut cc = Vegas::new();
        cc.ssthresh = 5.0;
        cc.cwnd = 50.0;
        // RTT double the base: diff = 50 * (1 - 0.5) = 25 > beta => shrink.
        let mut now = 0;
        for _ in 0..10 {
            now += 110;
            cc.on_packet_acked(&ack(now, 100, 50));
        }
        assert!(cc.cwnd_packets() < 50.0);
    }

    #[test]
    fn holds_steady_between_alpha_and_beta() {
        let mut cc = Vegas::new();
        cc.ssthresh = 5.0;
        cc.cwnd = 30.0;
        // diff = 30 * (1 - 50/55.5) ≈ 3 packets, inside [2, 4].
        let mut now = 0;
        for _ in 0..20 {
            now += 60;
            cc.on_packet_acked(&ack(now, 56, 50));
        }
        assert!((cc.cwnd_packets() - 30.0).abs() <= 2.0);
    }

    #[test]
    fn slow_start_exits_on_queue_buildup() {
        let mut cc = Vegas::new();
        assert!(cc.ssthresh.is_infinite());
        let mut now = 0;
        // Growing queue: rtt 80 vs base 50 -> diff grows past 1 quickly.
        for _ in 0..10 {
            now += 90;
            cc.on_packet_acked(&ack(now, 80, 50));
        }
        assert!(cc.ssthresh.is_finite(), "Vegas should have left slow start");
    }

    #[test]
    fn loss_and_timeout_reduce_window() {
        let mut cc = Vegas::new();
        cc.cwnd = 40.0;
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 40,
        });
        assert!((cc.cwnd_packets() - 30.0).abs() < 1e-9);
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!(cc.cwnd_packets() <= 2.0);
    }
}
