//! TCP NewReno congestion control.
//!
//! The classic AIMD loss-based controller: slow start to `ssthresh`,
//! congestion avoidance adding one segment per RTT, halving on fast
//! retransmit, collapsing to one segment on timeout.  NewReno is both one of
//! the paper's TCP-competitive-mode options and the elastic cross traffic of
//! several robustness experiments (Fig. 14 right, Fig. 24).

use super::{AckEvent, CongestionControl, CongestionEvent, LossEvent};

/// TCP NewReno.
#[derive(Debug, Clone)]
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
    initial_cwnd: f64,
    /// ACKed packets still to count before another classic-ECN reaction is
    /// allowed (RFC 3168: at most one multiplicative decrease per window).
    ce_acks_to_reopen: f64,
}

impl NewReno {
    /// A NewReno controller with the Linux-default initial window of 10 segments.
    pub fn new() -> Self {
        NewReno {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            initial_cwnd: 10.0,
            ce_acks_to_reopen: 0.0,
        }
    }

    /// Whether the controller is currently in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// The current slow-start threshold in packets.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

impl Default for NewReno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for NewReno {
    fn on_packet_acked(&mut self, ack: &AckEvent) {
        let acked = ack.newly_acked_packets as f64;
        self.ce_acks_to_reopen = (self.ce_acks_to_reopen - acked).max(0.0);
        if self.in_slow_start() {
            self.cwnd += acked;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: +1 segment per window's worth of ACKs.
            self.cwnd += acked / self.cwnd;
        }
    }

    fn on_packets_lost(&mut self, _loss: &LossEvent) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_congestion_event(&mut self, event: &CongestionEvent) {
        match event {
            CongestionEvent::Rto { .. } => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.initial_cwnd.min(self.ssthresh).max(1.0);
            }
            CongestionEvent::EcnCe { .. } => {
                // Classic ECN (RFC 3168): halve like a fast retransmit, but
                // at most once per window of ACKs however many CE echoes the
                // window carried.
                if self.ce_acks_to_reopen <= 0.0 {
                    self.ssthresh = (self.cwnd / 2.0).max(2.0);
                    self.cwnd = self.ssthresh;
                    self.ce_acks_to_reopen = self.cwnd;
                }
            }
        }
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn reinitialize(&mut self, rate_bps: f64, rtt_s: f64, mss: u32) {
        let cwnd = (rate_bps * rtt_s / 8.0 / mss as f64).max(2.0);
        self.cwnd = cwnd;
        self.ssthresh = cwnd;
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core_types::Time;

    fn ack(n: u64, cwnd: f64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(100),
            newly_acked_packets: n,
            newly_acked_bytes: n * 1500,
            rtt: Time::from_millis(50),
            min_rtt: Time::from_millis(50),
            in_flight_packets: cwnd as u64,
            mss: 1500,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new();
        assert!(cc.in_slow_start());
        let start = cc.cwnd_packets();
        // One window's worth of ACKs (each acking 1 packet) doubles cwnd.
        for _ in 0..(start as u64) {
            cc.on_packet_acked(&ack(1, start));
        }
        assert!((cc.cwnd_packets() - start * 2.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_avoidance_adds_one_per_rtt() {
        let mut cc = NewReno::new();
        cc.ssthresh = 10.0; // force CA at cwnd = 10
        let w = cc.cwnd_packets();
        for _ in 0..(w as u64) {
            cc.on_packet_acked(&ack(1, w));
        }
        assert!((cc.cwnd_packets() - (w + 1.0)).abs() < 0.1);
    }

    #[test]
    fn loss_halves_and_timeout_resets() {
        let mut cc = NewReno::new();
        cc.cwnd = 64.0;
        cc.ssthresh = 32.0;
        cc.on_packets_lost(&LossEvent {
            now: Time::ZERO,
            lost_packets: 1,
            in_flight_packets: 64,
        });
        assert!((cc.cwnd_packets() - 32.0).abs() < 1e-9);
        assert!((cc.ssthresh() - 32.0).abs() < 1e-9);
        cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        assert!(cc.cwnd_packets() <= 10.0);
    }

    #[test]
    fn cwnd_never_below_one() {
        let mut cc = NewReno::new();
        for _ in 0..20 {
            cc.on_packets_lost(&LossEvent {
                now: Time::ZERO,
                lost_packets: 1,
                in_flight_packets: 2,
            });
            cc.on_congestion_event(&CongestionEvent::Rto { now: Time::ZERO });
        }
        assert!(cc.cwnd_packets() >= 1.0);
    }

    #[test]
    fn ce_halves_at_most_once_per_window() {
        let mut cc = NewReno::new();
        cc.cwnd = 64.0;
        cc.ssthresh = 32.0;
        let ce = CongestionEvent::EcnCe {
            now: Time::ZERO,
            marked_bytes: 1500,
        };
        // A storm of CE echoes within one window halves exactly once.
        for _ in 0..50 {
            cc.on_congestion_event(&ce);
        }
        assert!((cc.cwnd_packets() - 32.0).abs() < 1e-9, "one halving");
        // After a full window of ACKs the gate reopens.
        for _ in 0..32 {
            cc.on_packet_acked(&ack(1, 32.0));
        }
        cc.on_congestion_event(&ce);
        assert!(cc.cwnd_packets() < 20.0, "second halving after a window");
    }

    #[test]
    fn no_pacing_rate_pure_ack_clocking() {
        let cc = NewReno::new();
        assert!(cc.pacing_rate_bps(Time::ZERO).is_none());
    }
}
