//! # nimbus-core
//!
//! The paper's contribution: **elasticity detection** and the **Nimbus**
//! mode-switching congestion controller.
//!
//! The pipeline, end to end (§3–§6 of the paper):
//!
//! 1. The sender modulates its pacing rate with an **asymmetric sinusoidal
//!    pulse** at a known frequency `f_p` (Fig. 7, [`nimbus_dsp::pulse`]).
//! 2. From the CCP-style measurement reports (send rate `S`, receive rate
//!    `R`) and the known bottleneck rate `µ`, the [`estimator`] computes the
//!    cross-traffic rate `ẑ = µ·S/R − S` (Eq. 1).
//! 3. The [`detector`] keeps the last five seconds of `ẑ` samples, takes an
//!    FFT, and computes the elasticity metric
//!    `η = |FFT_ẑ(f_p)| / max_{f∈(f_p,2f_p)} |FFT_ẑ(f)|` (Eq. 3).  `η ≥ 2`
//!    means some of the cross traffic is reacting to the pulses — it contains
//!    elastic (ACK-clocked) flows.
//! 4. The [`controller`] uses the detector to switch between a
//!    **TCP-competitive** inner controller (Cubic or NewReno) and a
//!    **delay-controlling** one ([`basic_delay::BasicDelay`], Vegas or Copa's
//!    default mode), resetting the rate to its value from five seconds ago
//!    when entering competitive mode (§4.1).
//! 5. With several Nimbus flows on one bottleneck, [`multiflow`] implements
//!    the pulser/watcher protocol and the randomized pulser election of §6.
//!
//! Everything is deterministic and **simulator-free**: this crate depends
//! only on the DSP library and the tiny `nimbus-core-types` crate (`Time`,
//! rate strings), never on `nimbus-netsim`.  A host — the simulator's sender
//! machinery in `nimbus-transport`, a real stack, or a fuzz harness — drives
//! any of the controllers here through the [`cc::CongestionControl`]
//! callbacks (`on_packet_acked` / `on_packets_lost` / `on_congestion_event`
//! / `on_report`) and reads back a window and a pacing rate.  Alongside the
//! Nimbus pipeline this crate therefore also hosts:
//!
//! * [`cc`] — the host-abstraction trait, [`cc::PathInfo`], and every
//!   baseline congestion-control algorithm the paper evaluates;
//! * [`ccp`] — the CCP-style measurement-report aggregator (§4.2) that
//!   produces the [`ccp::Report`]s the `on_report` callback consumes;
//! * [`rtt`] — SRTT/RTTVAR/RTO estimation (RFC 6298) and min-RTT tracking.
//!
//! See `examples/embed_core.rs` at the workspace root for a complete mock
//! host driving this crate with no simulator anywhere.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod basic_delay;
pub mod cc;
pub mod ccp;
pub mod controller;
pub mod detector;
pub mod estimator;
pub mod multiflow;
pub mod rtt;

pub use basic_delay::{BasicDelay, BasicDelayConfig};
pub use cc::{
    format_rate_bps, parse_rate_bps, AckEvent, CcKind, CongestionControl, CongestionEvent,
    LossEvent, PathInfo,
};
pub use ccp::{Report, ReportAggregator};
pub use controller::{DelayScheme, Mode, NimbusConfig, NimbusController, Publisher, TcpScheme};
pub use detector::{DetectorVerdict, ElasticityConfig, ElasticityDetector};
pub use estimator::{
    ConfiguredMu, CrossTrafficEstimator, LearnedMuConfig, MaxFilterMu, MuEstimator,
    MuEstimatorConfig, ProbingConfig, ProbingMu, ZFilterConfig,
};
pub use multiflow::{MultiflowConfig, Role};
pub use rtt::RttEstimator;
