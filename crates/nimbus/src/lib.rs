//! # nimbus-core
//!
//! The paper's contribution: **elasticity detection** and the **Nimbus**
//! mode-switching congestion controller.
//!
//! The pipeline, end to end (§3–§6 of the paper):
//!
//! 1. The sender modulates its pacing rate with an **asymmetric sinusoidal
//!    pulse** at a known frequency `f_p` (Fig. 7, [`nimbus_dsp::pulse`]).
//! 2. From the CCP-style measurement reports (send rate `S`, receive rate
//!    `R`) and the known bottleneck rate `µ`, the [`estimator`] computes the
//!    cross-traffic rate `ẑ = µ·S/R − S` (Eq. 1).
//! 3. The [`detector`] keeps the last five seconds of `ẑ` samples, takes an
//!    FFT, and computes the elasticity metric
//!    `η = |FFT_ẑ(f_p)| / max_{f∈(f_p,2f_p)} |FFT_ẑ(f)|` (Eq. 3).  `η ≥ 2`
//!    means some of the cross traffic is reacting to the pulses — it contains
//!    elastic (ACK-clocked) flows.
//! 4. The [`controller`] uses the detector to switch between a
//!    **TCP-competitive** inner controller (Cubic or NewReno) and a
//!    **delay-controlling** one ([`basic_delay::BasicDelay`], Vegas or Copa's
//!    default mode), resetting the rate to its value from five seconds ago
//!    when entering competitive mode (§4.1).
//! 5. With several Nimbus flows on one bottleneck, [`multiflow`] implements
//!    the pulser/watcher protocol and the randomized pulser election of §6.
//!
//! Everything is deterministic and simulator-agnostic: the controller is a
//! [`nimbus_transport::CongestionControl`], so it plugs into the same sender
//! machinery as every baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod basic_delay;
pub mod controller;
pub mod detector;
pub mod estimator;
pub mod multiflow;

pub use basic_delay::{BasicDelay, BasicDelayConfig};
pub use controller::{DelayScheme, Mode, NimbusConfig, NimbusController, TcpScheme};
pub use detector::{DetectorVerdict, ElasticityConfig, ElasticityDetector};
pub use estimator::{
    ConfiguredMu, CrossTrafficEstimator, LearnedMuConfig, MaxFilterMu, MuEstimator,
    MuEstimatorConfig, ProbingConfig, ProbingMu, ZFilterConfig,
};
pub use multiflow::{MultiflowConfig, Role};
