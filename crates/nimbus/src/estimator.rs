//! Cross-traffic rate estimation (Eq. 1 of the paper) and the pluggable
//! µ-estimation strategy API.
//!
//! # The estimate
//!
//! With a known bottleneck rate `µ`, a busy bottleneck queue and FIFO
//! service, the share of the link a flow receives equals its share of the
//! arriving traffic, so
//!
//! ```text
//! R/µ = S / (S + z)        ⇒        ẑ = µ·S/R − S
//! ```
//!
//! where `S` and `R` are the flow's send and receive rates measured over the
//! *same* window of packets (Eq. 2; the sender machinery provides them via
//! the CCP-style [`Report`]).  The estimator also keeps the sampled history
//! of `ẑ` (and of `R`) that the elasticity detector's FFT consumes.
//!
//! # The strategy API
//!
//! Everything above is only as good as the µ estimate.  §4.2 of the paper
//! sketches *one* way to obtain µ when it is not configured — a BBR-style
//! windowed max filter over the receive rate — but that strategy has known
//! failure modes (see the table below), so the source of µ̂ is a pluggable
//! [`MuEstimator`] strategy selected by [`MuEstimatorConfig`]:
//!
//! | strategy | spec grammar | behaviour |
//! |---|---|---|
//! | [`ConfiguredMu`] | `mu=configured` | trust the provisioned link rate |
//! | [`MaxFilterMu`] | `mu=learned` | §4.2 windowed max of `R` (byte-identical to the pre-API estimator) |
//! | [`ProbingMu`] | `mu=learned(probe=…)` | max filter + periodic probe-up epochs (optionally auto-quiesced via `quiesce=`) + loss-informed µ̂ floor |
//!
//! **Which estimator when?**
//!
//! * `configured` — the link rate is known and stable (the paper's main
//!   evaluation).  Exact ẑ, no failure modes; wrong µ by ±25% degrades the
//!   detector gracefully (§4.2, Fig. 21).
//! * `learned` — unknown but *stable* links.  On strongly-varying links the
//!   filter rides the upper envelope of µ(t), and the µ̂ error feeds the
//!   flow's own pulse back into ẑ (pair it with a [`ZFilterConfig`]); after
//!   a deep rate fade the filter can deadlock at the pacing floor (µ̂ ≈
//!   recv rate ≈ pace, nothing ever probes above it).
//! * `learned(probe=…)` — unknown *and* varying links (cellular).  The probe
//!   epochs break the µ̂/pace/recv-rate fixed point the way BBR's
//!   PROBE_BW cycle does, and the loss floor keeps µ̂ from collapsing when a
//!   fade empties the max-filter window.
//!
//! The ẑ-conditioning stage ([`ZFilterConfig`]) is the estimation layer's
//! other half: it filters or re-thresholds the ẑ series the detector
//! consumes, compensating for *known* µ̂ error structure (a notch at the
//! link's variation frequency, or an uncertainty-scaled η threshold).

use crate::ccp::Report;
use nimbus_dsp::{Biquad, WindowedMax, WindowedMin};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One sample of the estimator's output.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZSample {
    /// Sample time in seconds.
    pub t_s: f64,
    /// Estimated cross-traffic rate, bits/s.
    pub z_bps: f64,
    /// The flow's own receive rate at that time, bits/s.
    pub recv_rate_bps: f64,
    /// The flow's own send rate at that time, bits/s.
    pub send_rate_bps: f64,
}

/// Per-report growth cap on the learned-µ filter input.  A cumulative-ACK
/// jump after loss recovery can report a one-tick receive rate several times
/// the true link rate; feeding that raw into the 10-second max filter poisons
/// µ̂ for a full window.  Capping each update at 25% above the current
/// estimate rejects such one-report artifacts while a genuine rate increase
/// still converges exponentially (10× in ~10 reports, i.e. ~100 ms at the
/// CCP tick).
const MU_GROWTH_CAP: f64 = 1.25;

/// Default length of the learned-µ max-filter window, seconds (§4.2).
pub const DEFAULT_MU_WINDOW_S: f64 = 10.0;

// ---------------------------------------------------------------------------
// Strategy configuration
// ---------------------------------------------------------------------------

/// Parameters of the probing µ estimator ([`ProbingMu`]): the §4.2 max
/// filter augmented with BBR-style probe-up epochs and a loss-informed µ̂
/// floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbingConfig {
    /// Max-filter window over the receive rate, seconds.
    pub window_s: f64,
    /// Seconds between probe-up epochs.
    pub probe_interval_s: f64,
    /// Length of each probe-up epoch, seconds.
    pub probe_duration_s: f64,
    /// Pacing-rate multiplier applied during a probe epoch (> 1).
    pub probe_gain: f64,
    /// Multiplicative decay applied to the loss floor when losses are
    /// reported (at most once per `backoff_interval_s`).
    pub loss_backoff: f64,
    /// Minimum spacing between loss-floor decays, seconds (a single loss
    /// episode spans many 10 ms report ticks; decaying per tick would erase
    /// the floor in under a second).
    pub backoff_interval_s: f64,
    /// Window of the short delivery filter behind the pace cap, seconds.
    pub recent_window_s: f64,
    /// Cruise pace cap as a multiple of the recent delivery rate: outside
    /// probe epochs the controller may not pace further above what the link
    /// recently delivered (BBR's cruise/probe separation).
    pub cap_margin: f64,
    /// Probe auto-quiesce: skip probe-up epochs (and their ẑ
    /// sample-and-hold) while [`MuEstimator::mu_uncertainty`] sits below
    /// this floor.  On a stable link the max filter converges and every
    /// probe after that point only perturbs ẑ for nothing; quiescing hands
    /// the detector an uninterrupted signal until the uncertainty rises
    /// again (a fade re-widens the filter spread and probing resumes).
    /// `0.0` — the default — disables quiescing: probes run on schedule
    /// forever, preserving the pre-quiesce behaviour bit for bit.
    pub quiesce_uncertainty_floor: f64,
}

impl Default for ProbingConfig {
    /// Probe for 0.25 s every second at 2× pace (a BBR-like cadence — on the
    /// cellular deep-fade trace this recovers ~14 Mbit/s where 3-second
    /// epochs leave half of every fade's aftermath unprobed), 10 s
    /// max-filter window, loss floor backing off by 0.7 at most twice per
    /// second, pace cap at 1.25× the delivery seen in the last 1.5 s.
    fn default() -> Self {
        ProbingConfig {
            window_s: DEFAULT_MU_WINDOW_S,
            probe_interval_s: 1.0,
            probe_duration_s: 0.25,
            probe_gain: 2.0,
            loss_backoff: 0.7,
            backoff_interval_s: 0.5,
            recent_window_s: 1.5,
            cap_margin: 1.25,
            quiesce_uncertainty_floor: 0.0,
        }
    }
}

/// How µ is *learned* when it is not configured: the strategy axis of
/// `mu=learned(...)` specs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearnedMuConfig {
    /// The §4.2 windowed max filter over the receive rate (`mu=learned`).
    MaxFilter {
        /// Filter window, seconds (10 by default).
        window_s: f64,
    },
    /// Max filter + probe-up epochs + loss floor (`mu=learned(probe=…)`).
    Probing(ProbingConfig),
}

impl Default for LearnedMuConfig {
    fn default() -> Self {
        LearnedMuConfig::MaxFilter {
            window_s: DEFAULT_MU_WINDOW_S,
        }
    }
}

impl LearnedMuConfig {
    /// The max-filter window this configuration uses.
    pub fn window_s(&self) -> f64 {
        match self {
            LearnedMuConfig::MaxFilter { window_s } => *window_s,
            LearnedMuConfig::Probing(p) => p.window_s,
        }
    }
}

/// Where the estimator's µ comes from: the full strategy configuration
/// carried by `NimbusConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MuEstimatorConfig {
    /// µ is provisioned up front (`mu=configured`, the paper's default).
    Configured {
        /// The configured bottleneck rate, bits/s.
        mu_bps: f64,
    },
    /// µ is learned at runtime (§4.2 and extensions).
    Learned(LearnedMuConfig),
}

impl MuEstimatorConfig {
    /// The classic learned-µ configuration (`mu=learned`).
    pub fn learned() -> Self {
        MuEstimatorConfig::Learned(LearnedMuConfig::default())
    }

    /// The configured rate, if this is a configured-µ strategy.
    pub fn configured_mu_bps(&self) -> Option<f64> {
        match self {
            MuEstimatorConfig::Configured { mu_bps } => Some(*mu_bps),
            MuEstimatorConfig::Learned(_) => None,
        }
    }

    /// Whether µ is learned at runtime.
    pub fn is_learned(&self) -> bool {
        matches!(self, MuEstimatorConfig::Learned(_))
    }

    /// Instantiate the strategy.
    pub fn build(&self) -> Box<dyn MuEstimator> {
        match self {
            MuEstimatorConfig::Configured { mu_bps } => Box::new(ConfiguredMu::new(*mu_bps)),
            MuEstimatorConfig::Learned(LearnedMuConfig::MaxFilter { window_s }) => {
                Box::new(MaxFilterMu::new(*window_s))
            }
            MuEstimatorConfig::Learned(LearnedMuConfig::Probing(cfg)) => {
                Box::new(ProbingMu::new(*cfg))
            }
        }
    }
}

/// ẑ conditioning between the estimator and the detector: compensates for
/// *known* structure in the µ̂ error instead of letting it masquerade as
/// cross traffic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ZFilterConfig {
    /// Hand the raw ẑ series to the detector (the paper's pipeline).
    #[default]
    None,
    /// Notch-filter ẑ at the link's known rate-variation frequency before
    /// the FFT, removing the µ̂-error swing (and its spectral leakage) that a
    /// time-varying bottleneck injects.
    Notch {
        /// Centre frequency of the notch — the link's variation frequency, Hz.
        freq_hz: f64,
        /// Quality factor (−3 dB bandwidth is `freq_hz / q`).
        q: f64,
    },
    /// Scale the detector's η threshold and minimum-peak guard by
    /// `1 + k·u`, where `u` is the µ estimator's reported relative
    /// uncertainty: when µ̂ is shaky, the flow's own pulse leaks into ẑ with
    /// amplitude proportional to the µ̂ error, and the detection bar must
    /// rise with it.
    Adaptive {
        /// Gain on the uncertainty (how aggressively the bar rises).
        k: f64,
    },
}

impl ZFilterConfig {
    /// The default notch (`q = 0.7`) at the given link-variation frequency.
    pub fn notch(freq_hz: f64) -> Self {
        ZFilterConfig::Notch { freq_hz, q: 0.7 }
    }

    /// The default adaptive thresholding (`k = 8`).
    pub fn adaptive() -> Self {
        ZFilterConfig::Adaptive { k: 8.0 }
    }
}

// ---------------------------------------------------------------------------
// The strategy trait and its implementations
// ---------------------------------------------------------------------------

/// A µ-estimation strategy: one deterministic object that ingests every
/// measurement report and answers "what is the bottleneck rate right now".
///
/// Implementations must be deterministic (simulation fingerprints are pinned
/// across refactors) and cheap per report (called on every 10 ms CCP tick).
/// `Send` because the testkit runs whole simulations — controllers included —
/// across worker threads.
pub trait MuEstimator: std::fmt::Debug + Send {
    /// Clone into a box (strategies are held as trait objects).
    fn clone_box(&self) -> Box<dyn MuEstimator>;

    /// Ingest one measurement report.
    fn on_report(&mut self, report: &Report);

    /// The current µ estimate, bits/s (`0.0` until one exists).
    fn mu_bps(&self) -> f64;

    /// Whether µ is learned at runtime (and a µ̂ history is worth recording).
    fn is_learned(&self) -> bool;

    /// Pacing-rate multiplier the controller should apply right now (> 1
    /// during a probe-up epoch, 1 otherwise).  This is the estimator's lever
    /// for breaking µ̂/pace/recv-rate fixed points: a max filter can only
    /// ever confirm the rate the pacer already allows.
    fn pace_gain(&self, now_s: f64) -> f64 {
        let _ = now_s;
        1.0
    }

    /// Relative uncertainty of µ̂ in `[0, 1]`: roughly "by what fraction has
    /// the observed receive rate strayed below µ̂ over the filter window".
    /// `0.0` when µ is exact.  Consumed by [`ZFilterConfig::Adaptive`].
    fn mu_uncertainty(&self) -> f64 {
        0.0
    }

    /// Whether the ẑ stream should be sample-and-held at `now_s` instead of
    /// recorded.  A probe-up epoch doubles the send rate for half a second;
    /// Eq. 1 turns that into a square pulse in ẑ whose broadband spectrum
    /// floods the detector's comparison band and blinds it to genuine
    /// elasticity, so probing strategies blank ẑ for the epoch (plus a
    /// drain interval).
    fn suppress_z_at(&self, now_s: f64) -> bool {
        let _ = now_s;
        false
    }

    /// An upper bound on the cruise pacing rate, bits/s (`None` = no cap).
    /// A rate-based delay controller driven by a stale or nominal µ paces
    /// straight into a rate fade, melts the queue down and wedges the
    /// transport in RTO backoff; a delivery-informed cap bounds the
    /// overdrive to what the link recently proved it can carry, leaving the
    /// probe epochs as the one sanctioned way to pace above it.
    fn pace_cap_bps(&self) -> Option<f64> {
        None
    }
}

impl Clone for Box<dyn MuEstimator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// `mu=configured`: trust the provisioned link rate.
#[derive(Debug, Clone)]
pub struct ConfiguredMu {
    mu_bps: f64,
}

impl ConfiguredMu {
    /// A configured-µ strategy.
    ///
    /// # Panics
    /// Panics unless `mu_bps > 0`.
    pub fn new(mu_bps: f64) -> Self {
        assert!(mu_bps > 0.0, "µ must be positive");
        ConfiguredMu { mu_bps }
    }
}

impl MuEstimator for ConfiguredMu {
    fn clone_box(&self) -> Box<dyn MuEstimator> {
        Box::new(self.clone())
    }
    fn on_report(&mut self, _report: &Report) {}
    fn mu_bps(&self) -> f64 {
        self.mu_bps
    }
    fn is_learned(&self) -> bool {
        false
    }
}

/// `mu=learned`: the §4.2 windowed max filter over the receive rate, with
/// the per-report growth cap.  Byte-identical to the pre-API hardwired
/// estimator (pinned by `tests/estimator_api.rs`).
#[derive(Debug, Clone)]
pub struct MaxFilterMu {
    filter: WindowedMax,
    /// Windowed min over the same capped inputs; feeds [`MuEstimator::
    /// mu_uncertainty`] only and never touches µ̂ itself.
    min_tracker: WindowedMin,
}

impl MaxFilterMu {
    /// A max-filter strategy with the given window (seconds).
    pub fn new(window_s: f64) -> Self {
        MaxFilterMu {
            filter: WindowedMax::new(window_s),
            min_tracker: WindowedMin::new(window_s),
        }
    }

    /// The capped filter input for this report, shared with [`ProbingMu`]:
    /// the receive rate clamped to 25% above the current estimate (or above
    /// the send rate when no estimate exists yet — over the same packet
    /// window R can only exceed S through bounded queue-drain compression,
    /// so a first sample several times S is the same ACK-compression
    /// artifact the growth cap rejects).
    fn capped_input(current: f64, report: &Report) -> f64 {
        let cap = if current > 0.0 {
            current * MU_GROWTH_CAP
        } else if report.send_rate_bps > 0.0 {
            report.send_rate_bps * MU_GROWTH_CAP
        } else {
            f64::INFINITY
        };
        report.recv_rate_bps.min(cap)
    }
}

impl MuEstimator for MaxFilterMu {
    fn clone_box(&self) -> Box<dyn MuEstimator> {
        Box::new(self.clone())
    }

    fn on_report(&mut self, report: &Report) {
        if report.recv_rate_bps <= 0.0 {
            return;
        }
        let current = self.filter.max().unwrap_or(0.0);
        let input = Self::capped_input(current, report);
        self.filter.update(report.now_s, input);
        self.min_tracker.update(report.now_s, input);
    }

    fn mu_bps(&self) -> f64 {
        self.filter.max().unwrap_or(0.0)
    }

    fn is_learned(&self) -> bool {
        true
    }

    fn mu_uncertainty(&self) -> f64 {
        let mu = self.mu_bps();
        match self.min_tracker.min() {
            Some(min) if mu > 0.0 => ((mu - min) / mu).clamp(0.0, 1.0),
            _ => 0.0,
        }
    }
}

/// `mu=learned(probe=…)`: the max filter augmented with two mechanisms from
/// the BBR/loss-fallback playbook (see the ROADMAP's cellular deep-fade
/// finding for the failure they fix):
///
/// * **Probe-up epochs** — every `probe_interval_s` the strategy asks the
///   controller (via [`MuEstimator::pace_gain`]) to pace at `probe_gain`×
///   for `probe_duration_s`.  A pure max filter can never observe a rate
///   above what the pacer already sends, so after µ̂ collapses the system
///   sits at a fixed point (µ̂ ≈ recv rate ≈ pace); the epoch breaks it
///   exactly the way BBR's PROBE_BW up-phase does.
/// * **Loss-informed µ̂ floor** — the highest receive rate observed on a
///   loss-free report, decayed multiplicatively (at most once per
///   `backoff_interval_s`) while losses are being reported.  A deep fade
///   empties the 10-second max window of every pre-fade sample; the floor
///   remembers what the link recently sustained *without* loss so µ̂
///   re-expands from megabits, not from the pacing floor.
#[derive(Debug, Clone)]
pub struct ProbingMu {
    cfg: ProbingConfig,
    filter: WindowedMax,
    min_tracker: WindowedMin,
    /// Short-window max over the raw receive rate: the "what did the link
    /// deliver lately" evidence behind [`MuEstimator::pace_cap_bps`].
    recent: WindowedMax,
    /// Highest loss-free receive rate, decayed on loss (bits/s).
    loss_floor_bps: f64,
    /// Time of the last loss-floor decay, seconds.
    last_backoff_s: f64,
}

impl ProbingMu {
    /// A probing strategy with the given parameters.
    pub fn new(cfg: ProbingConfig) -> Self {
        assert!(cfg.window_s > 0.0, "filter window must be positive");
        assert!(
            cfg.probe_interval_s > 2.0 * cfg.probe_duration_s && cfg.probe_duration_s > 0.0,
            "a probe epoch plus its drain interval (2x the epoch, during which ẑ is \
             sample-and-held) must fit inside the probe interval — otherwise the hold \
             never releases and the detector's input freezes"
        );
        assert!(cfg.probe_gain > 1.0, "a probe must pace above 1x");
        assert!(
            cfg.loss_backoff > 0.0 && cfg.loss_backoff < 1.0,
            "loss backoff must be a decay factor in (0, 1)"
        );
        assert!(
            cfg.recent_window_s > 0.0 && cfg.cap_margin >= 1.0,
            "the pace cap needs a positive window and a margin of at least 1"
        );
        assert!(
            (0.0..1.0).contains(&cfg.quiesce_uncertainty_floor),
            "the quiesce floor is compared against mu_uncertainty in [0, 1); \
             1 or above would quiesce probing unconditionally"
        );
        ProbingMu {
            cfg,
            filter: WindowedMax::new(cfg.window_s),
            min_tracker: WindowedMin::new(cfg.window_s),
            recent: WindowedMax::new(cfg.recent_window_s),
            loss_floor_bps: 0.0,
            last_backoff_s: f64::NEG_INFINITY,
        }
    }

    /// The probing parameters in use.
    pub fn config(&self) -> &ProbingConfig {
        &self.cfg
    }

    /// The current loss-informed floor (bits/s).
    pub fn loss_floor_bps(&self) -> f64 {
        self.loss_floor_bps
    }

    /// Whether a probe-up epoch is active at `now_s`.  The schedule is a
    /// deterministic function of simulation time: the first epoch starts at
    /// `probe_interval_s` (never in the FFT warm-up) and one runs every
    /// interval after that.
    pub fn probing_at(&self, now_s: f64) -> bool {
        now_s >= self.cfg.probe_interval_s
            && now_s % self.cfg.probe_interval_s < self.cfg.probe_duration_s
    }

    /// Whether `now_s` falls in a probe epoch *or* its drain interval (one
    /// extra epoch length for the queue the probe built to empty).
    pub fn settling_at(&self, now_s: f64) -> bool {
        now_s >= self.cfg.probe_interval_s
            && now_s % self.cfg.probe_interval_s < 2.0 * self.cfg.probe_duration_s
    }

    /// Whether probing is auto-quiesced right now: a non-zero floor is
    /// configured and the current µ̂ uncertainty sits below it.  Evaluated
    /// fresh on every call, so probing resumes by itself the moment the
    /// filter spread re-widens (e.g. after a fade).
    pub fn quiesced(&self) -> bool {
        self.cfg.quiesce_uncertainty_floor > 0.0
            && self.mu_uncertainty() < self.cfg.quiesce_uncertainty_floor
    }
}

impl MuEstimator for ProbingMu {
    fn clone_box(&self) -> Box<dyn MuEstimator> {
        Box::new(self.clone())
    }

    fn on_report(&mut self, report: &Report) {
        if report.lost_packets > 0 {
            if report.now_s - self.last_backoff_s >= self.cfg.backoff_interval_s {
                self.loss_floor_bps *= self.cfg.loss_backoff;
                self.last_backoff_s = report.now_s;
            }
            // Losses mean the link stopped carrying what it recently did:
            // drop the delivery evidence behind the pace cap on the spot, so
            // the cruise rate falls to *current* delivery within a report
            // instead of riding `recent_window_s`-old crest samples into the
            // fade (the overshoot that drops whole flights and wedges the
            // transport in RTO backoff).  The max filter and the loss floor
            // keep their slow dynamics — only the cap reacts instantly.
            // Re-seeding with this report's delivery keeps the filter
            // non-empty: an *empty* filter would return no cap at all
            // (`pace_cap_bps` → `None`), un-capping the pace at the exact
            // moment the link is faltering.
            self.recent.reset();
            self.recent
                .update(report.now_s, report.recv_rate_bps.max(0.0));
        }
        if report.recv_rate_bps <= 0.0 {
            return;
        }
        let current = self.filter.max().unwrap_or(0.0);
        let input = MaxFilterMu::capped_input(current, report);
        self.filter.update(report.now_s, input);
        self.min_tracker.update(report.now_s, input);
        self.recent.update(report.now_s, report.recv_rate_bps);
        if report.lost_packets == 0 {
            self.loss_floor_bps = self.loss_floor_bps.max(input);
        }
    }

    fn mu_bps(&self) -> f64 {
        self.filter.max().unwrap_or(0.0).max(self.loss_floor_bps)
    }

    fn is_learned(&self) -> bool {
        true
    }

    fn pace_gain(&self, now_s: f64) -> f64 {
        if !self.quiesced() && self.probing_at(now_s) {
            self.cfg.probe_gain
        } else {
            1.0
        }
    }

    fn mu_uncertainty(&self) -> f64 {
        let mu = self.mu_bps();
        match self.min_tracker.min() {
            Some(min) if mu > 0.0 => ((mu - min) / mu).clamp(0.0, 1.0),
            _ => 0.0,
        }
    }

    fn suppress_z_at(&self, now_s: f64) -> bool {
        // A quiesced epoch never paced above 1x, so there is nothing to
        // hold ẑ over — suppressing anyway would blank the detector's input
        // on the exact schedule quiescing exists to protect.
        !self.quiesced() && self.settling_at(now_s)
    }

    fn pace_cap_bps(&self) -> Option<f64> {
        self.recent.max().map(|r| r * self.cfg.cap_margin)
    }
}

// ---------------------------------------------------------------------------
// The estimator pipeline
// ---------------------------------------------------------------------------

/// Cross-traffic rate estimator with sample history: Eq. 1 evaluated on
/// every report with µ̂ supplied by a pluggable [`MuEstimator`] strategy,
/// plus the optional streaming ẑ pre-filter of [`ZFilterConfig::Notch`].
#[derive(Debug, Clone)]
pub struct CrossTrafficEstimator {
    /// The µ-estimation strategy.
    strategy: Box<dyn MuEstimator>,
    /// History of samples, bounded to `history_window_s`.
    samples: VecDeque<ZSample>,
    history_window_s: f64,
    /// Last computed value (for cheap access between reports).
    last: Option<ZSample>,
    /// `(t_s, µ̂_bps)` per report while µ is being learned (empty when µ is
    /// configured) — the series varying-link experiments score µ-tracking on.
    mu_history: Vec<(f64, f64)>,
    /// Streaming notch over the ẑ samples (None = raw ẑ to the detector).
    z_prefilter: Option<Biquad>,
    /// `(t_s, filtered ẑ)` history, maintained only when a pre-filter is set.
    filtered: VecDeque<(f64, f64)>,
    /// Whether the strategy's probe epochs are actually being paced right
    /// now (the controller pauses probing outside delay mode).  Gates the
    /// ẑ sample-and-hold: holding samples for epochs that never ran would
    /// blank half the detector's input for nothing.
    probing_paced: bool,
}

impl CrossTrafficEstimator {
    /// An estimator with a known (configured) bottleneck rate.
    pub fn with_known_mu(mu_bps: f64, history_window_s: f64) -> Self {
        Self::with_strategy(Box::new(ConfiguredMu::new(mu_bps)), history_window_s)
    }

    /// An estimator that learns `µ` as the maximum observed receive rate
    /// over a 10-second window (the BBR-style approach of §4.2).
    pub fn with_estimated_mu(history_window_s: f64) -> Self {
        Self::with_strategy(
            Box::new(MaxFilterMu::new(DEFAULT_MU_WINDOW_S)),
            history_window_s,
        )
    }

    /// An estimator over an arbitrary µ strategy.
    pub fn with_strategy(strategy: Box<dyn MuEstimator>, history_window_s: f64) -> Self {
        CrossTrafficEstimator {
            strategy,
            samples: VecDeque::new(),
            history_window_s,
            last: None,
            mu_history: Vec::new(),
            z_prefilter: None,
            filtered: VecDeque::new(),
            probing_paced: true,
        }
    }

    /// An estimator built from a strategy configuration.
    pub fn from_config(cfg: &MuEstimatorConfig, history_window_s: f64) -> Self {
        Self::with_strategy(cfg.build(), history_window_s)
    }

    /// Install (or remove) the streaming ẑ pre-filter consulted by the
    /// detector.  Must be set before samples arrive: the filter's state is
    /// continuous across the whole run.
    pub fn set_z_prefilter(&mut self, filter: Option<Biquad>) {
        self.z_prefilter = filter;
        self.filtered.clear();
    }

    /// The µ-estimation strategy in use.
    pub fn strategy(&self) -> &dyn MuEstimator {
        self.strategy.as_ref()
    }

    /// The bottleneck rate currently in use.
    pub fn mu_bps(&self) -> f64 {
        self.strategy.mu_bps()
    }

    /// The pacing multiplier the strategy wants at `now_s` (probe epochs).
    pub fn pace_gain(&self, now_s: f64) -> f64 {
        self.strategy.pace_gain(now_s)
    }

    /// The strategy's delivery-informed cruise pace cap, if it keeps one.
    pub fn pace_cap_bps(&self) -> Option<f64> {
        self.strategy.pace_cap_bps()
    }

    /// Tell the estimator whether the strategy's probe epochs are actually
    /// reaching the pacer (the controller pauses probing outside delay
    /// mode).  While paused, ẑ samples are recorded normally — there is no
    /// self-inflicted burst to blank out.
    pub fn set_probing_paced(&mut self, paced: bool) {
        self.probing_paced = paced;
    }

    /// The strategy's current relative µ̂ uncertainty in `[0, 1]`.
    pub fn mu_uncertainty(&self) -> f64 {
        self.strategy.mu_uncertainty()
    }

    /// Estimate ẑ from send and receive rates (Eq. 1), clamped to `[0, µ]`.
    pub fn estimate(&self, send_rate_bps: f64, recv_rate_bps: f64) -> Option<f64> {
        let mu = self.mu_bps();
        if mu <= 0.0 || send_rate_bps <= 0.0 || recv_rate_bps <= 0.0 {
            return None;
        }
        let z = mu * send_rate_bps / recv_rate_bps - send_rate_bps;
        Some(z.clamp(0.0, mu))
    }

    /// Ingest a measurement report; returns the new sample if one was
    /// produced.  The returned sample carries the *raw* Eq. 1 estimate (what
    /// a rate controller consuming ẑ should see); the stored history that
    /// the detector reads is sample-and-held through probe epochs (the
    /// epoch's pacing burst is self-inflicted, not cross traffic, and its
    /// square edge floods the detector's comparison band).
    pub fn on_report(&mut self, report: &Report) -> Option<ZSample> {
        self.strategy.on_report(report);
        if self.strategy.is_learned() && report.recv_rate_bps > 0.0 {
            self.mu_history.push((report.now_s, self.mu_bps()));
        }
        let raw_z = self.estimate(report.send_rate_bps, report.recv_rate_bps)?;
        let held_z = if self.probing_paced && self.strategy.suppress_z_at(report.now_s) {
            self.last.map(|s| s.z_bps).unwrap_or(raw_z)
        } else {
            raw_z
        };
        let sample = ZSample {
            t_s: report.now_s,
            z_bps: held_z,
            recv_rate_bps: report.recv_rate_bps,
            send_rate_bps: report.send_rate_bps,
        };
        self.samples.push_back(sample);
        if let Some(filter) = &mut self.z_prefilter {
            self.filtered
                .push_back((report.now_s, filter.process(held_z)));
            while let Some(&(t, _)) = self.filtered.front() {
                if report.now_s - t > self.history_window_s {
                    self.filtered.pop_front();
                } else {
                    break;
                }
            }
        }
        while let Some(front) = self.samples.front() {
            if report.now_s - front.t_s > self.history_window_s {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        self.last = Some(sample);
        Some(ZSample {
            z_bps: raw_z,
            ..sample
        })
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<ZSample> {
        self.last
    }

    /// The learned-µ series as `(t_s, µ̂_bps)` pairs.  Empty when µ was
    /// configured rather than estimated.
    pub fn mu_series(&self) -> &[(f64, f64)] {
        &self.mu_history
    }

    /// The ẑ series (bits/s) covering at most the last `window_s` seconds,
    /// oldest first — the input to the detector's FFT.
    pub fn z_series(&self, window_s: f64) -> Vec<f64> {
        let latest = match self.samples.back() {
            Some(s) => s.t_s,
            None => return Vec::new(),
        };
        self.samples
            .iter()
            .filter(|s| latest - s.t_s <= window_s)
            .map(|s| s.z_bps)
            .collect()
    }

    /// The ẑ series the *detector* should consume: the pre-filtered history
    /// when a [`ZFilterConfig::Notch`] stage is installed, the raw series
    /// otherwise.
    pub fn z_series_conditioned(&self, window_s: f64) -> Vec<f64> {
        if self.z_prefilter.is_none() {
            return self.z_series(window_s);
        }
        let latest = match self.filtered.back() {
            Some(&(t, _)) => t,
            None => return Vec::new(),
        };
        self.filtered
            .iter()
            .filter(|(t, _)| latest - t <= window_s)
            .map(|&(_, z)| z)
            .collect()
    }

    /// The receive-rate series over the same window (used by watcher flows,
    /// which look for the pulser's oscillation in their own `R`).
    pub fn recv_rate_series(&self, window_s: f64) -> Vec<f64> {
        let latest = match self.samples.back() {
            Some(s) => s.t_s,
            None => return Vec::new(),
        };
        self.samples
            .iter()
            .filter(|s| latest - s.t_s <= window_s)
            .map(|s| s.recv_rate_bps)
            .collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been stored yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(now_s: f64, s_bps: f64, r_bps: f64) -> Report {
        Report {
            now_s,
            send_rate_bps: s_bps,
            recv_rate_bps: r_bps,
            acked_bytes: 0,
            lost_packets: 0,
            rtt_s: 0.05,
            min_rtt_s: 0.05,
            window_acks: 50,
            marked_packets: 0,
            marked_bytes: 0,
        }
    }

    fn lossy_report(now_s: f64, s_bps: f64, r_bps: f64, lost: u64) -> Report {
        Report {
            lost_packets: lost,
            ..report(now_s, s_bps, r_bps)
        }
    }

    #[test]
    fn estimate_matches_equation_one() {
        let est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        // S = 40, R = 40*96/(40+z). With z = 24: R = 40*96/64 = 60.
        let z = est.estimate(40e6, 60e6).unwrap();
        assert!((z - 24e6).abs() < 1.0, "z {z}");
        // No cross traffic: R == S-ish when S == µ... with S=R the estimate is µ−S.
        let z = est.estimate(96e6, 96e6).unwrap();
        assert!(z.abs() < 1.0);
    }

    #[test]
    fn estimate_is_clamped_to_physical_range() {
        let est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        // R > µ (measurement noise) would give negative z: clamp to 0.
        assert_eq!(est.estimate(40e6, 100e6).unwrap(), 0.0);
        // Tiny R gives enormous z: clamp to µ.
        assert_eq!(est.estimate(40e6, 1e5).unwrap(), 96e6);
        // Degenerate inputs give None.
        assert!(est.estimate(0.0, 10e6).is_none());
        assert!(est.estimate(10e6, 0.0).is_none());
    }

    #[test]
    fn relative_error_is_small_across_operating_points() {
        // §3.1 reports median relative error ~1.3%; in a noiseless setting the
        // estimator should be essentially exact for any (S, z) combination.
        let mu: f64 = 96e6;
        let est = CrossTrafficEstimator::with_known_mu(mu, 5.0);
        for &s in &[6e6, 12e6, 24e6, 48e6, 72e6] {
            for &z in &[0.0, 8e6, 24e6, 48e6, 80e6] {
                // Only meaningful when the link is saturated (queue busy).
                if s + z < mu {
                    continue;
                }
                let r = mu * s / (s + z);
                let zhat = est.estimate(s, r).unwrap();
                assert!((zhat - z).abs() <= 1.0, "S={s} z={z} -> zhat={zhat}");
            }
        }
    }

    #[test]
    fn history_is_windowed_and_ordered() {
        let mut est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        for i in 0..1000 {
            let t = i as f64 * 0.01;
            est.on_report(&report(t, 48e6, 64e6));
        }
        assert!(est.len() <= 502, "history length {}", est.len());
        let series = est.z_series(5.0);
        assert!(!series.is_empty());
        // All values equal the analytic z = 96*48/64 - 48 = 24 Mbit/s.
        assert!(series.iter().all(|&z| (z - 24e6).abs() < 1.0));
        let shorter = est.z_series(1.0);
        assert!(shorter.len() < series.len());
    }

    #[test]
    fn mu_is_learned_from_max_receive_rate_when_not_configured() {
        let mut est = CrossTrafficEstimator::with_estimated_mu(5.0);
        assert_eq!(est.mu_bps(), 0.0);
        // Ramp up gently (within the per-report growth cap).
        let mut r = 40e6;
        let mut t = 0.0;
        while r < 88e6 {
            est.on_report(&report(t, r * 0.9, r));
            t += 0.01;
            r *= 1.2;
        }
        est.on_report(&report(t, 80e6, 88e6));
        assert!((est.mu_bps() - 88e6).abs() < 1.0);
        // With µ learned, estimates become available.
        let s = est.on_report(&report(t + 0.1, 44e6, 44e6)).unwrap();
        assert!((s.z_bps - 44e6).abs() < 1e3);
        // The learned series was recorded.
        assert!(!est.mu_series().is_empty());
        assert!((est.mu_series().last().unwrap().1 - 88e6).abs() < 1.0);
    }

    #[test]
    fn mu_filter_rejects_one_report_rate_spikes() {
        // Regression: a cumulative-ACK artifact reporting a one-tick receive
        // rate of several times the link rate used to poison the max filter
        // for a whole window.
        let mut est = CrossTrafficEstimator::with_estimated_mu(5.0);
        for i in 0..100 {
            est.on_report(&report(i as f64 * 0.01, 44e6, 48e6));
        }
        assert!((est.mu_bps() - 48e6).abs() < 1.0);
        // A 5x spike is capped to 25% growth...
        est.on_report(&report(1.0, 44e6, 250e6));
        assert!(est.mu_bps() <= 48e6 * 1.25 + 1.0, "µ {}", est.mu_bps());
        // ...even as the very first sample (capped against the send rate).
        let mut fresh = CrossTrafficEstimator::with_estimated_mu(5.0);
        fresh.on_report(&report(0.0, 44e6, 250e6));
        assert!(fresh.mu_bps() <= 44e6 * 1.25 + 1.0, "µ {}", fresh.mu_bps());
        // ...and a *sustained* genuine rate increase still converges quickly.
        for i in 0..40 {
            est.on_report(&report(1.01 + i as f64 * 0.01, 90e6, 96e6));
        }
        assert!((est.mu_bps() - 96e6).abs() < 1.0, "µ {}", est.mu_bps());
    }

    #[test]
    fn recv_series_matches_reports() {
        let mut est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        for i in 0..100 {
            est.on_report(&report(i as f64 * 0.01, 48e6, 50e6 + i as f64 * 1e5));
        }
        let rs = est.recv_rate_series(5.0);
        assert_eq!(rs.len(), est.len());
        assert!(rs.windows(2).all(|w| w[1] >= w[0]));
    }

    // ---- strategy API ----------------------------------------------------

    #[test]
    fn config_builds_the_matching_strategy() {
        let c = MuEstimatorConfig::Configured { mu_bps: 48e6 };
        assert!(!c.build().is_learned());
        assert_eq!(c.configured_mu_bps(), Some(48e6));
        let l = MuEstimatorConfig::learned();
        assert!(l.build().is_learned());
        assert!(l.is_learned());
        assert_eq!(l.configured_mu_bps(), None);
        let p = MuEstimatorConfig::Learned(LearnedMuConfig::Probing(ProbingConfig::default()));
        let strat = p.build();
        assert!(strat.is_learned());
        // The probing strategy is the only one with a non-unit pace gain.
        assert_eq!(c.build().pace_gain(3.1), 1.0);
        assert_eq!(l.build().pace_gain(3.1), 1.0);
        assert!(strat.pace_gain(3.1) > 1.0);
    }

    #[test]
    fn probing_schedule_is_deterministic_and_shaped() {
        let p = ProbingMu::new(ProbingConfig::default());
        // No probe before the first interval.
        assert!(!p.probing_at(0.0));
        assert!(!p.probing_at(0.9));
        // Epochs of `probe_duration_s` every `probe_interval_s` (1 s).
        assert!(p.probing_at(1.0));
        assert!(p.probing_at(1.24));
        assert!(!p.probing_at(1.26));
        assert!(p.probing_at(2.2));
        assert_eq!(p.pace_gain(1.1), ProbingConfig::default().probe_gain);
        assert_eq!(p.pace_gain(1.5), 1.0);
        // ẑ is held for the epoch plus one drain interval.
        assert!(p.settling_at(1.4));
        assert!(!p.settling_at(1.6));
    }

    #[test]
    fn probing_quiesces_below_the_uncertainty_floor_and_resumes_on_spread() {
        let cfg = ProbingConfig {
            quiesce_uncertainty_floor: 0.3,
            ..ProbingConfig::default()
        };
        let mut p = ProbingMu::new(cfg);
        // No samples yet: uncertainty is 0, so a configured floor quiesces
        // immediately (nothing to probe above until the filter has content).
        assert!(p.quiesced());
        // A steady link: min ≈ max in the window, uncertainty ≈ 0 → probes
        // stay off and ẑ is never held.
        for i in 0..200 {
            p.on_report(&report(i as f64 * 0.01, 44e6, 46e6));
        }
        assert!(p.quiesced());
        assert_eq!(p.pace_gain(1.1), 1.0, "probe epoch must be skipped");
        assert!(!p.suppress_z_at(1.1), "no probe ran, nothing to hold over");
        // A fade re-widens the filter spread (min drops while the 10 s max
        // window still holds pre-fade samples) → probing resumes by itself.
        for i in 0..100 {
            p.on_report(&report(2.0 + i as f64 * 0.01, 10e6, 10e6));
        }
        assert!(p.mu_uncertainty() > 0.3, "fade must raise the uncertainty");
        assert!(!p.quiesced());
        assert_eq!(p.pace_gain(4.1), ProbingConfig::default().probe_gain);
        assert!(p.suppress_z_at(4.1));
    }

    #[test]
    fn zero_floor_disables_quiescing_entirely() {
        // The default floor of 0 must leave the pre-quiesce schedule intact:
        // uncertainty 0 on a steady link, probes still run.
        let mut p = ProbingMu::new(ProbingConfig::default());
        for i in 0..200 {
            p.on_report(&report(i as f64 * 0.01, 44e6, 46e6));
        }
        assert!(!p.quiesced());
        assert_eq!(p.pace_gain(1.1), ProbingConfig::default().probe_gain);
        assert!(p.suppress_z_at(1.1));
    }

    #[test]
    fn probing_floor_remembers_loss_free_rate_and_decays_on_loss() {
        let mut p = ProbingMu::new(ProbingConfig::default());
        for i in 0..100 {
            p.on_report(&report(i as f64 * 0.01, 44e6, 46e6));
        }
        let mu_before = p.mu_bps();
        assert!((p.loss_floor_bps() - 46e6).abs() < 1e3);
        // A fade: tiny receive rate with losses.  The max filter's window
        // (10 s) still holds the old samples, but the floor starts decaying
        // (at most once per backoff interval).
        for i in 0..200 {
            p.on_report(&lossy_report(1.0 + i as f64 * 0.01, 2e6, 1e6, 3));
        }
        // 2 s of losses at 0.5 s backoff interval = 4 decays of 0.7.
        let expect = 46e6 * 0.7f64.powi(4);
        assert!(
            (p.loss_floor_bps() - expect).abs() / expect < 0.05,
            "floor {} vs {expect}",
            p.loss_floor_bps()
        );
        assert!(p.mu_bps() <= mu_before);
        // Long after the fade the max-filter window is empty of pre-fade
        // samples; the floor (not the pacing floor) is what µ̂ rests on.
        for i in 0..100 {
            p.on_report(&report(20.0 + i as f64 * 0.01, 1e6, 1e6));
        }
        assert!(
            p.mu_bps() >= expect * 0.99,
            "µ̂ {} collapsed below the loss floor {expect}",
            p.mu_bps()
        );
    }

    #[test]
    fn uncertainty_tracks_the_spread_of_the_filter_inputs() {
        let mut m = MaxFilterMu::new(10.0);
        assert_eq!(m.mu_uncertainty(), 0.0);
        for i in 0..100 {
            m.on_report(&report(i as f64 * 0.01, 44e6, 48e6));
        }
        // Steady input: no spread.
        assert!(m.mu_uncertainty() < 0.01, "{}", m.mu_uncertainty());
        // A dip to half rate: uncertainty rises toward 0.5.
        for i in 0..100 {
            m.on_report(&report(1.0 + i as f64 * 0.01, 24e6, 24e6));
        }
        assert!(
            m.mu_uncertainty() > 0.4,
            "uncertainty {} after a 50% dip",
            m.mu_uncertainty()
        );
        // Configured µ is always certain.
        let c = ConfiguredMu::new(48e6);
        assert_eq!(c.mu_uncertainty(), 0.0);
    }

    #[test]
    fn notch_prefilter_conditions_the_detector_series_only() {
        use std::f64::consts::TAU;
        let mut est = CrossTrafficEstimator::with_known_mu(96e6, 20.0);
        est.set_z_prefilter(Some(Biquad::notch(0.5, 0.7, 100.0)));
        // ẑ oscillating at 0.5 Hz (a link-variation artifact): S constant,
        // R modulated so the Eq. 1 output swings.
        for i in 0..4000 {
            let t = i as f64 * 0.01;
            let z_true = 30e6 + 20e6 * (TAU * 0.5 * t).sin();
            let s = 40e6;
            let r = 96e6 * s / (s + z_true);
            est.on_report(&report(t, s, r));
        }
        let raw = est.z_series(5.0);
        let conditioned = est.z_series_conditioned(5.0);
        assert_eq!(raw.len(), conditioned.len());
        let swing = |xs: &[f64]| {
            xs.iter().cloned().fold(f64::MIN, f64::max)
                - xs.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(
            swing(&conditioned) < 0.2 * swing(&raw),
            "notch left swing {} of {}",
            swing(&conditioned),
            swing(&raw)
        );
        // Without a pre-filter the conditioned series IS the raw series.
        let mut plain = CrossTrafficEstimator::with_known_mu(96e6, 20.0);
        plain.on_report(&report(0.0, 40e6, 60e6));
        assert_eq!(plain.z_series(5.0), plain.z_series_conditioned(5.0));
    }
}
