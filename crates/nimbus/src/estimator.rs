//! Cross-traffic rate estimation (Eq. 1 of the paper).
//!
//! With a known bottleneck rate `µ`, a busy bottleneck queue and FIFO
//! service, the share of the link a flow receives equals its share of the
//! arriving traffic, so
//!
//! ```text
//! R/µ = S / (S + z)        ⇒        ẑ = µ·S/R − S
//! ```
//!
//! where `S` and `R` are the flow's send and receive rates measured over the
//! *same* window of packets (Eq. 2; the sender machinery provides them via
//! the CCP-style [`Report`]).  The estimator also keeps the sampled history
//! of `ẑ` (and of `R`) that the elasticity detector's FFT consumes, and a
//! max-filter estimate of `µ` for deployments where the link rate is not
//! supplied (§4.2).

use nimbus_dsp::WindowedMax;
use nimbus_transport::Report;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One sample of the estimator's output.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZSample {
    /// Sample time in seconds.
    pub t_s: f64,
    /// Estimated cross-traffic rate, bits/s.
    pub z_bps: f64,
    /// The flow's own receive rate at that time, bits/s.
    pub recv_rate_bps: f64,
    /// The flow's own send rate at that time, bits/s.
    pub send_rate_bps: f64,
}

/// Per-report growth cap on the learned-µ filter input.  A cumulative-ACK
/// jump after loss recovery can report a one-tick receive rate several times
/// the true link rate; feeding that raw into the 10-second max filter poisons
/// µ̂ for a full window.  Capping each update at 25% above the current
/// estimate rejects such one-report artifacts while a genuine rate increase
/// still converges exponentially (10× in ~10 reports, i.e. ~100 ms at the
/// CCP tick).
const MU_GROWTH_CAP: f64 = 1.25;

/// Cross-traffic rate estimator with sample history.
#[derive(Debug, Clone)]
pub struct CrossTrafficEstimator {
    /// Known bottleneck rate, bits/s (`None` ⇒ estimate from max receive rate).
    configured_mu: Option<f64>,
    /// Max-filter over the receive rate used when `µ` is not supplied.
    mu_filter: WindowedMax,
    /// History of samples, bounded to `history_window_s`.
    samples: VecDeque<ZSample>,
    history_window_s: f64,
    /// Last computed value (for cheap access between reports).
    last: Option<ZSample>,
    /// `(t_s, µ̂_bps)` per report while µ is being learned (empty when µ is
    /// configured) — the series varying-link experiments score µ-tracking on.
    mu_history: Vec<(f64, f64)>,
}

impl CrossTrafficEstimator {
    /// An estimator with a known (configured) bottleneck rate.
    pub fn with_known_mu(mu_bps: f64, history_window_s: f64) -> Self {
        assert!(mu_bps > 0.0, "µ must be positive");
        CrossTrafficEstimator {
            configured_mu: Some(mu_bps),
            mu_filter: WindowedMax::new(10.0),
            samples: VecDeque::new(),
            history_window_s,
            last: None,
            mu_history: Vec::new(),
        }
    }

    /// An estimator that learns `µ` as the maximum observed receive rate
    /// over a 10-second window (the BBR-style approach of §4.2).
    pub fn with_estimated_mu(history_window_s: f64) -> Self {
        CrossTrafficEstimator {
            configured_mu: None,
            mu_filter: WindowedMax::new(10.0),
            samples: VecDeque::new(),
            history_window_s,
            last: None,
            mu_history: Vec::new(),
        }
    }

    /// The bottleneck rate currently in use.
    pub fn mu_bps(&self) -> f64 {
        match self.configured_mu {
            Some(mu) => mu,
            None => self.mu_filter.max().unwrap_or(0.0),
        }
    }

    /// Estimate ẑ from send and receive rates (Eq. 1), clamped to `[0, µ]`.
    pub fn estimate(&self, send_rate_bps: f64, recv_rate_bps: f64) -> Option<f64> {
        let mu = self.mu_bps();
        if mu <= 0.0 || send_rate_bps <= 0.0 || recv_rate_bps <= 0.0 {
            return None;
        }
        let z = mu * send_rate_bps / recv_rate_bps - send_rate_bps;
        Some(z.clamp(0.0, mu))
    }

    /// Ingest a measurement report; returns the new sample if one was produced.
    pub fn on_report(&mut self, report: &Report) -> Option<ZSample> {
        if self.configured_mu.is_none() && report.recv_rate_bps > 0.0 {
            let current = self.mu_filter.max().unwrap_or(0.0);
            // With no estimate yet, cap against the send rate instead: over
            // the same packet window R can only exceed S through bounded
            // queue-drain compression, so a first sample several times S is
            // the same ACK-compression artifact the growth cap rejects.
            let cap = if current > 0.0 {
                current * MU_GROWTH_CAP
            } else if report.send_rate_bps > 0.0 {
                report.send_rate_bps * MU_GROWTH_CAP
            } else {
                f64::INFINITY
            };
            self.mu_filter
                .update(report.now_s, report.recv_rate_bps.min(cap));
            self.mu_history.push((report.now_s, self.mu_bps()));
        }
        let z = self.estimate(report.send_rate_bps, report.recv_rate_bps)?;
        let sample = ZSample {
            t_s: report.now_s,
            z_bps: z,
            recv_rate_bps: report.recv_rate_bps,
            send_rate_bps: report.send_rate_bps,
        };
        self.samples.push_back(sample);
        while let Some(front) = self.samples.front() {
            if report.now_s - front.t_s > self.history_window_s {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        self.last = Some(sample);
        Some(sample)
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<ZSample> {
        self.last
    }

    /// The learned-µ series as `(t_s, µ̂_bps)` pairs.  Empty when µ was
    /// configured rather than estimated.
    pub fn mu_series(&self) -> &[(f64, f64)] {
        &self.mu_history
    }

    /// The ẑ series (bits/s) covering at most the last `window_s` seconds,
    /// oldest first — the input to the detector's FFT.
    pub fn z_series(&self, window_s: f64) -> Vec<f64> {
        let latest = match self.samples.back() {
            Some(s) => s.t_s,
            None => return Vec::new(),
        };
        self.samples
            .iter()
            .filter(|s| latest - s.t_s <= window_s)
            .map(|s| s.z_bps)
            .collect()
    }

    /// The receive-rate series over the same window (used by watcher flows,
    /// which look for the pulser's oscillation in their own `R`).
    pub fn recv_rate_series(&self, window_s: f64) -> Vec<f64> {
        let latest = match self.samples.back() {
            Some(s) => s.t_s,
            None => return Vec::new(),
        };
        self.samples
            .iter()
            .filter(|s| latest - s.t_s <= window_s)
            .map(|s| s.recv_rate_bps)
            .collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been stored yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(now_s: f64, s_bps: f64, r_bps: f64) -> Report {
        Report {
            now_s,
            send_rate_bps: s_bps,
            recv_rate_bps: r_bps,
            acked_bytes: 0,
            lost_packets: 0,
            rtt_s: 0.05,
            min_rtt_s: 0.05,
            window_acks: 50,
        }
    }

    #[test]
    fn estimate_matches_equation_one() {
        let est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        // S = 40, R = 40*96/(40+z). With z = 24: R = 40*96/64 = 60.
        let z = est.estimate(40e6, 60e6).unwrap();
        assert!((z - 24e6).abs() < 1.0, "z {z}");
        // No cross traffic: R == S-ish when S == µ... with S=R the estimate is µ−S.
        let z = est.estimate(96e6, 96e6).unwrap();
        assert!(z.abs() < 1.0);
    }

    #[test]
    fn estimate_is_clamped_to_physical_range() {
        let est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        // R > µ (measurement noise) would give negative z: clamp to 0.
        assert_eq!(est.estimate(40e6, 100e6).unwrap(), 0.0);
        // Tiny R gives enormous z: clamp to µ.
        assert_eq!(est.estimate(40e6, 1e5).unwrap(), 96e6);
        // Degenerate inputs give None.
        assert!(est.estimate(0.0, 10e6).is_none());
        assert!(est.estimate(10e6, 0.0).is_none());
    }

    #[test]
    fn relative_error_is_small_across_operating_points() {
        // §3.1 reports median relative error ~1.3%; in a noiseless setting the
        // estimator should be essentially exact for any (S, z) combination.
        let mu: f64 = 96e6;
        let est = CrossTrafficEstimator::with_known_mu(mu, 5.0);
        for &s in &[6e6, 12e6, 24e6, 48e6, 72e6] {
            for &z in &[0.0, 8e6, 24e6, 48e6, 80e6] {
                // Only meaningful when the link is saturated (queue busy).
                if s + z < mu {
                    continue;
                }
                let r = mu * s / (s + z);
                let zhat = est.estimate(s, r).unwrap();
                assert!((zhat - z).abs() <= 1.0, "S={s} z={z} -> zhat={zhat}");
            }
        }
    }

    #[test]
    fn history_is_windowed_and_ordered() {
        let mut est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        for i in 0..1000 {
            let t = i as f64 * 0.01;
            est.on_report(&report(t, 48e6, 64e6));
        }
        assert!(est.len() <= 502, "history length {}", est.len());
        let series = est.z_series(5.0);
        assert!(!series.is_empty());
        // All values equal the analytic z = 96*48/64 - 48 = 24 Mbit/s.
        assert!(series.iter().all(|&z| (z - 24e6).abs() < 1.0));
        let shorter = est.z_series(1.0);
        assert!(shorter.len() < series.len());
    }

    #[test]
    fn mu_is_learned_from_max_receive_rate_when_not_configured() {
        let mut est = CrossTrafficEstimator::with_estimated_mu(5.0);
        assert_eq!(est.mu_bps(), 0.0);
        // Ramp up gently (within the per-report growth cap).
        let mut r = 40e6;
        let mut t = 0.0;
        while r < 88e6 {
            est.on_report(&report(t, r * 0.9, r));
            t += 0.01;
            r *= 1.2;
        }
        est.on_report(&report(t, 80e6, 88e6));
        assert!((est.mu_bps() - 88e6).abs() < 1.0);
        // With µ learned, estimates become available.
        let s = est.on_report(&report(t + 0.1, 44e6, 44e6)).unwrap();
        assert!((s.z_bps - 44e6).abs() < 1e3);
        // The learned series was recorded.
        assert!(!est.mu_series().is_empty());
        assert!((est.mu_series().last().unwrap().1 - 88e6).abs() < 1.0);
    }

    #[test]
    fn mu_filter_rejects_one_report_rate_spikes() {
        // Regression: a cumulative-ACK artifact reporting a one-tick receive
        // rate of several times the link rate used to poison the max filter
        // for a whole window.
        let mut est = CrossTrafficEstimator::with_estimated_mu(5.0);
        for i in 0..100 {
            est.on_report(&report(i as f64 * 0.01, 44e6, 48e6));
        }
        assert!((est.mu_bps() - 48e6).abs() < 1.0);
        // A 5x spike is capped to 25% growth...
        est.on_report(&report(1.0, 44e6, 250e6));
        assert!(est.mu_bps() <= 48e6 * 1.25 + 1.0, "µ {}", est.mu_bps());
        // ...even as the very first sample (capped against the send rate).
        let mut fresh = CrossTrafficEstimator::with_estimated_mu(5.0);
        fresh.on_report(&report(0.0, 44e6, 250e6));
        assert!(fresh.mu_bps() <= 44e6 * 1.25 + 1.0, "µ {}", fresh.mu_bps());
        // ...and a *sustained* genuine rate increase still converges quickly.
        for i in 0..40 {
            est.on_report(&report(1.01 + i as f64 * 0.01, 90e6, 96e6));
        }
        assert!((est.mu_bps() - 96e6).abs() < 1.0, "µ {}", est.mu_bps());
    }

    #[test]
    fn recv_series_matches_reports() {
        let mut est = CrossTrafficEstimator::with_known_mu(96e6, 5.0);
        for i in 0..100 {
            est.on_report(&report(i as f64 * 0.01, 48e6, 50e6 + i as f64 * 1e5));
        }
        let rs = est.recv_rate_series(5.0);
        assert_eq!(rs.len(), est.len());
        assert!(rs.windows(2).all(|w| w[1] >= w[0]));
    }
}
