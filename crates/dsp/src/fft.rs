//! Fast Fourier Transform implementations.
//!
//! The elasticity detector computes an FFT of the cross-traffic rate estimate
//! `z(t)` sampled every 10 ms over a 5-second window (§3.3 of the paper), so a
//! 500-point transform is the common case.  Three implementations live here:
//!
//! * `fft_radix2` — iterative in-place Cooley–Tukey for power-of-two sizes.
//! * `fft_bluestein` — Bluestein's chirp-z algorithm for arbitrary sizes
//!   (internally uses the radix-2 kernel on a padded convolution).
//! * [`dft_naive`] — the O(n²) textbook DFT, kept as the oracle for property
//!   tests.
//!
//! [`fft`] dispatches automatically, and [`Fft`] is a plan object that caches
//! twiddle factors so the detector does not recompute them every 10 ms.

use crate::complex::Complex;
use std::f64::consts::PI;

/// A reusable FFT plan.
///
/// Precomputes twiddle factors (and, for non-power-of-two sizes, the Bluestein
/// chirp sequence) so that repeated transforms of the same length — exactly
/// what the elasticity detector does every measurement tick — avoid repeated
/// trigonometry.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    /// Power-of-two input: direct radix-2.
    Radix2 { twiddles: Vec<Complex> },
    /// Arbitrary size n via Bluestein: convolution of length m (power of two ≥ 2n-1).
    Bluestein {
        m: usize,
        chirp: Vec<Complex>,
        /// FFT of the zero-padded, conjugated chirp filter (length m).
        filter_fft: Vec<Complex>,
        inner_twiddles: Vec<Complex>,
    },
}

impl Fft {
    /// Build a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        if n.is_power_of_two() {
            Fft {
                n,
                kind: PlanKind::Radix2 {
                    twiddles: forward_twiddles(n),
                },
            }
        } else {
            // Bluestein: x_k chirped, convolved with the conjugate chirp.
            let m = (2 * n - 1).next_power_of_two();
            let chirp: Vec<Complex> = (0..n)
                .map(|k| {
                    // w_k = exp(-i * pi * k^2 / n)
                    let angle = -PI * ((k as f64) * (k as f64)) / n as f64;
                    Complex::from_polar_unit(angle)
                })
                .collect();
            let mut filter = vec![Complex::ZERO; m];
            for k in 0..n {
                let v = chirp[k].conj();
                filter[k] = v;
                if k != 0 {
                    filter[m - k] = v;
                }
            }
            let inner_twiddles = forward_twiddles(m);
            fft_in_place(&mut filter, &inner_twiddles, false);
            Fft {
                n,
                kind: PlanKind::Bluestein {
                    m,
                    chirp,
                    filter_fft: filter,
                    inner_twiddles,
                },
            }
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward transform of a complex input slice of length `self.len()`.
    ///
    /// # Panics
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Complex]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "input length must match the plan");
        match &self.kind {
            PlanKind::Radix2 { twiddles } => {
                let mut buf = input.to_vec();
                fft_in_place(&mut buf, twiddles, false);
                buf
            }
            PlanKind::Bluestein {
                m,
                chirp,
                filter_fft,
                inner_twiddles,
            } => {
                let n = self.n;
                let mut a = vec![Complex::ZERO; *m];
                for k in 0..n {
                    a[k] = input[k] * chirp[k];
                }
                fft_in_place(&mut a, inner_twiddles, false);
                for (ak, fk) in a.iter_mut().zip(filter_fft.iter()) {
                    *ak *= *fk;
                }
                ifft_in_place(&mut a, inner_twiddles);
                (0..n).map(|k| a[k] * chirp[k]).collect()
            }
        }
    }

    /// Forward transform of a real-valued input slice of length `self.len()`.
    pub fn forward_real(&self, input: &[f64]) -> Vec<Complex> {
        let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
        self.forward(&buf)
    }

    /// Inverse transform (unnormalized FFT divided by `n`, so that
    /// `inverse(forward(x)) == x`).
    pub fn inverse(&self, input: &[Complex]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "input length must match the plan");
        // IFFT(x) = conj(FFT(conj(x))) / n
        let conj_in: Vec<Complex> = input.iter().map(|z| z.conj()).collect();
        let out = self.forward(&conj_in);
        out.iter().map(|z| z.conj() / self.n as f64).collect()
    }
}

/// Precompute the forward twiddle factors `exp(-2πi k / n)` for `k < n/2`.
fn forward_twiddles(n: usize) -> Vec<Complex> {
    (0..n / 2)
        .map(|k| Complex::from_polar_unit(-2.0 * PI * k as f64 / n as f64))
        .collect()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `twiddles` must contain the `n/2` forward twiddle factors for length
/// `buf.len()`. When `inverse` is true, the conjugated twiddles are used (the
/// caller is responsible for the 1/n normalization).
fn fft_in_place(buf: &mut [Complex], twiddles: &[Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let tw = twiddles[k * step];
                let tw = if inverse { tw.conj() } else { tw };
                let u = buf[start + k];
                let v = buf[start + k + half] * tw;
                buf[start + k] = u + v;
                buf[start + k + half] = u - v;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT including the 1/n normalization.
fn ifft_in_place(buf: &mut [Complex], twiddles: &[Complex]) {
    let n = buf.len();
    fft_in_place(buf, twiddles, true);
    let inv = 1.0 / n as f64;
    for z in buf.iter_mut() {
        *z = z.scale(inv);
    }
}

/// Forward FFT of a complex slice of any length.
///
/// Dispatches to radix-2 for power-of-two lengths and Bluestein otherwise.
/// For repeated transforms of the same length prefer building an [`Fft`] plan.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    Fft::new(input.len()).forward(input)
}

/// Forward FFT of a real-valued slice of any length.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    Fft::new(input.len()).forward_real(input)
}

/// Inverse FFT such that `ifft(fft(x)) == x`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    Fft::new(input.len()).inverse(input)
}

/// Direct O(n²) DFT, used as the oracle in tests.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let angle = -2.0 * PI * (k as f64) * (t as f64) / n as f64;
            acc += x * Complex::from_polar_unit(angle);
        }
        *out_k = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let y = fft(&x);
        for z in y {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = vec![Complex::from_real(2.0); 32];
        let y = fft(&x);
        assert!((y[0].re - 64.0).abs() < 1e-9);
        for z in &y[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_peaks_in_the_right_bin() {
        // 5 Hz tone sampled at 100 Hz over 128 samples => bin 5*128/100 = 6.4;
        // use an exact-bin tone instead: bin 8 of 128.
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::from_real((2.0 * PI * 8.0 * t as f64 / n as f64).sin()))
            .collect();
        let y = fft(&x);
        let mags: Vec<f64> = y.iter().map(|z| z.abs()).collect();
        let peak_bin = mags[..n / 2]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_bin, 8);
    }

    #[test]
    fn radix2_matches_naive_dft() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        assert_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn bluestein_matches_naive_dft_on_odd_sizes() {
        for n in [3usize, 5, 7, 12, 100, 125, 500] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.71).sin(), (i as f64 * 1.3).cos() * 0.5))
                .collect();
            assert_close(&fft(&x), &dft_naive(&x), 1e-7 * n as f64);
        }
    }

    #[test]
    fn inverse_round_trips_power_of_two() {
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let y = ifft(&fft(&x));
        assert_close(&x, &y, 1e-9);
    }

    #[test]
    fn inverse_round_trips_arbitrary_length() {
        let x: Vec<Complex> = (0..500)
            .map(|i| Complex::new((i as f64 * 0.013).sin(), 0.0))
            .collect();
        let y = ifft(&fft(&x));
        assert_close(&x, &y, 1e-8);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = Fft::new(500);
        let x: Vec<Complex> = (0..500)
            .map(|i| Complex::from_real(i as f64 * 0.01))
            .collect();
        let a = plan.forward(&x);
        let b = plan.forward(&x);
        assert_close(&a, &b, 1e-12);
        assert_eq!(plan.len(), 500);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_length_panics() {
        let plan = Fft::new(8);
        let x = vec![Complex::ZERO; 9];
        let _ = plan.forward(&x);
    }

    #[test]
    fn real_transform_of_cosine_is_symmetric() {
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * 4.0 * t as f64 / n as f64).cos())
            .collect();
        let y = fft_real(&x);
        // Real signal => conjugate symmetry.
        for k in 1..n / 2 {
            let a = y[k];
            let b = y[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn prop_fft_matches_dft(values in proptest::collection::vec(-1e3f64..1e3, 2..64)) {
            let x: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
            let a = fft(&x);
            let b = dft_naive(&x);
            for (p, q) in a.iter().zip(b.iter()) {
                prop_assert!((p.re - q.re).abs() < 1e-6 * (1.0 + q.abs()));
                prop_assert!((p.im - q.im).abs() < 1e-6 * (1.0 + q.abs()));
            }
        }

        #[test]
        fn prop_fft_ifft_round_trips_random_signals(values in proptest::collection::vec(-1e6f64..1e6, 2..256)) {
            let x: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
            let back = ifft(&fft(&x));
            for (orig, rt) in x.iter().zip(back.iter()) {
                prop_assert!((orig.re - rt.re).abs() < 1e-6 * (1.0 + orig.re.abs()));
                prop_assert!(rt.im.abs() < 1e-4, "imaginary residue {}", rt.im);
            }
        }

        #[test]
        fn prop_parseval_energy_conserved(values in proptest::collection::vec(-100f64..100.0, 4..128)) {
            let n = values.len() as f64;
            let time_energy: f64 = values.iter().map(|v| v * v).sum();
            let spec = fft_real(&values);
            let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }

        #[test]
        fn prop_linearity(a in proptest::collection::vec(-10f64..10.0, 16..17),
                          b in proptest::collection::vec(-10f64..10.0, 16..17),
                          alpha in -5f64..5.0) {
            let xa: Vec<Complex> = a.iter().map(|&v| Complex::from_real(v)).collect();
            let xb: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
            let combined: Vec<Complex> = xa.iter().zip(xb.iter())
                .map(|(p, q)| *p * alpha + *q)
                .collect();
            let lhs = fft(&combined);
            let fa = fft(&xa);
            let fb = fft(&xb);
            for k in 0..lhs.len() {
                let rhs = fa[k] * alpha + fb[k];
                prop_assert!((lhs[k].re - rhs.re).abs() < 1e-6);
                prop_assert!((lhs[k].im - rhs.im).abs() < 1e-6);
            }
        }
    }
}
