//! # nimbus-dsp
//!
//! Signal-processing substrate for the Nimbus reproduction.
//!
//! The elasticity detector of the paper ("Elasticity Detection: A Building
//! Block for Internet Congestion Control") works by modulating a sender's
//! pacing rate with an asymmetric sinusoidal pulse and then looking for a
//! peak, at the pulsing frequency, in the frequency-domain representation of
//! the estimated cross-traffic rate.  Everything the detector needs from the
//! signal-processing world lives in this crate:
//!
//! * [`biquad`] — second-order IIR sections (notch), the ẑ pre-filter stage
//!   of the pluggable µ-estimation API.
//! * [`complex`] — a minimal complex-number type (no external deps).
//! * [`mod@fft`] — radix-2 Cooley–Tukey FFT, Bluestein FFT for arbitrary lengths,
//!   and a direct DFT used as a test oracle.
//! * [`spectrum`] — magnitude spectra, frequency/bin conversion and the band
//!   peak searches needed by the elasticity metric η (Eq. 3 of the paper).
//! * [`pulse`] — the asymmetric sinusoidal pulse shape of Fig. 7 plus a
//!   symmetric variant used for ablations.
//! * [`filter`] — EWMA filters (used by Nimbus *watcher* flows to strip the
//!   pulser's frequencies from their own transmissions) and simple moving
//!   statistics (windowed min/max) used by the congestion controllers.
//! * [`window`] — window functions applied before the FFT.
//! * [`stats`] — percentiles, CDFs and accuracy summaries used throughout the
//!   experiment harness.
//!
//! The crate is deliberately dependency-free (apart from `serde` for result
//! serialization) and completely deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod biquad;
pub mod complex;
pub mod fft;
pub mod filter;
pub mod pulse;
pub mod spectrum;
pub mod stats;
pub mod window;

pub use biquad::Biquad;
pub use complex::Complex;
pub use fft::{dft_naive, fft, fft_real, ifft, Fft};
pub use filter::{Ewma, WindowedMax, WindowedMin};
pub use pulse::{AsymmetricPulse, PulseGenerator, PulseKind, PulseShape, SymmetricPulse};
pub use spectrum::{band_peak, bin_for_frequency, magnitude_spectrum, Spectrum};
pub use stats::{mean, percentile, stddev, Cdf, RunningStats};
pub use window::WindowFunction;
