//! Filters and moving statistics.
//!
//! * [`Ewma`] — exponentially weighted moving average.  Nimbus *watcher*
//!   flows smooth their transmission rate with an EWMA whose cutoff lies below
//!   `min(f_pc, f_pd)` so they do not react to (and hence do not echo) the
//!   pulser's oscillation (§6 of the paper).
//! * [`WindowedMin`] / [`WindowedMax`] — sliding-window extrema used by the
//!   congestion controllers (BBR's max-delivery-rate and min-RTT filters,
//!   Nimbus's bottleneck-rate estimate, Vegas/Copa's base RTT).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Exponentially weighted moving average of a scalar signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha` in `(0, 1]`.
    /// Larger `alpha` tracks the input faster.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Create an EWMA whose -3 dB cutoff frequency is approximately
    /// `cutoff_hz` when updated every `sample_interval_s` seconds.
    ///
    /// For a first-order IIR smoother `y += α (x − y)` running at sample rate
    /// `f_s`, the cutoff is `f_c ≈ α f_s / (2π (1 − α))`; inverting gives the
    /// α used here.  Nimbus watchers pick `cutoff_hz < min(f_pc, f_pd)`.
    pub fn with_cutoff(cutoff_hz: f64, sample_interval_s: f64) -> Self {
        assert!(cutoff_hz > 0.0 && sample_interval_s > 0.0);
        let omega = 2.0 * std::f64::consts::PI * cutoff_hz * sample_interval_s;
        let alpha = omega / (omega + 1.0);
        Ewma::new(alpha.clamp(1e-6, 1.0))
    }

    /// Feed a new observation and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current value of the average (`None` until the first update).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current value or the provided default.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Reset the filter to its initial (empty) state.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Sliding-window minimum over timestamped samples.
///
/// Samples older than `window` (in the caller's time unit) relative to the
/// newest sample are evicted.  Uses a monotonic deque so updates are O(1)
/// amortized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedMin {
    window: f64,
    /// (timestamp, value), values increasing from front to back.
    deque: VecDeque<(f64, f64)>,
}

impl WindowedMin {
    /// Create a windowed-min filter with the given window length.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        WindowedMin {
            window,
            deque: VecDeque::new(),
        }
    }

    /// Insert a sample observed at `now` and return the current minimum.
    pub fn update(&mut self, now: f64, value: f64) -> f64 {
        while let Some(&(_, back)) = self.deque.back() {
            if back >= value {
                self.deque.pop_back();
            } else {
                break;
            }
        }
        self.deque.push_back((now, value));
        self.expire(now);
        self.deque.front().map(|&(_, v)| v).unwrap_or(value)
    }

    /// Current minimum, if any sample is in the window.
    pub fn min(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    /// Drop samples older than the window relative to `now`.
    pub fn expire(&mut self, now: f64) {
        while let Some(&(t, _)) = self.deque.front() {
            if now - t > self.window {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// Clear all samples.
    pub fn reset(&mut self) {
        self.deque.clear();
    }
}

/// Sliding-window maximum over timestamped samples (mirror of [`WindowedMin`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedMax {
    window: f64,
    /// (timestamp, value), values decreasing from front to back.
    deque: VecDeque<(f64, f64)>,
}

impl WindowedMax {
    /// Create a windowed-max filter with the given window length.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        WindowedMax {
            window,
            deque: VecDeque::new(),
        }
    }

    /// Insert a sample observed at `now` and return the current maximum.
    pub fn update(&mut self, now: f64, value: f64) -> f64 {
        while let Some(&(_, back)) = self.deque.back() {
            if back <= value {
                self.deque.pop_back();
            } else {
                break;
            }
        }
        self.deque.push_back((now, value));
        self.expire(now);
        self.deque.front().map(|&(_, v)| v).unwrap_or(value)
    }

    /// Current maximum, if any sample is in the window.
    pub fn max(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    /// Drop samples older than the window relative to `now`.
    pub fn expire(&mut self, now: f64) {
        while let Some(&(t, _)) = self.deque.front() {
            if now - t > self.window {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// Clear all samples.
    pub fn reset(&mut self) {
        self.deque.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ewma_first_sample_is_identity() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(42.0), 42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_attenuates_oscillation_above_cutoff() {
        // 5 Hz oscillation, EWMA cutoff at 1 Hz sampled at 100 Hz: the output
        // swing should be far smaller than the input swing.
        let mut e = Ewma::with_cutoff(1.0, 0.01);
        let mut out = Vec::new();
        for i in 0..2000 {
            let t = i as f64 * 0.01;
            let x = 10.0 + 5.0 * (2.0 * std::f64::consts::PI * 5.0 * t).sin();
            out.push(e.update(x));
        }
        let tail = &out[1000..];
        let max = tail.iter().cloned().fold(f64::MIN, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max - min < 2.0,
            "swing {} should be well under input swing 10",
            max - min
        );
    }

    #[test]
    fn ewma_passes_slow_drift() {
        let mut e = Ewma::with_cutoff(1.0, 0.01);
        // Very slow ramp: output should track closely.
        let mut last = 0.0;
        for i in 0..5000 {
            let x = i as f64 * 0.001;
            last = e.update(x);
        }
        assert!((last - 5.0).abs() < 0.5);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn windowed_min_tracks_minimum_and_expires() {
        let mut m = WindowedMin::new(1.0);
        assert_eq!(m.update(0.0, 5.0), 5.0);
        assert_eq!(m.update(0.2, 3.0), 3.0);
        assert_eq!(m.update(0.4, 4.0), 3.0);
        // After the 3.0 sample ages out, the min is among {4.0, 6.0}.
        assert_eq!(m.update(1.3, 6.0), 4.0);
        assert_eq!(m.update(3.0, 7.0), 7.0);
    }

    #[test]
    fn windowed_max_tracks_maximum_and_expires() {
        let mut m = WindowedMax::new(10.0);
        m.update(0.0, 10.0);
        m.update(1.0, 20.0);
        m.update(2.0, 5.0);
        assert_eq!(m.max(), Some(20.0));
        m.update(12.5, 1.0);
        assert_eq!(m.max(), Some(1.0));
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new(0.5);
        e.update(1.0);
        e.reset();
        assert_eq!(e.value(), None);

        let mut m = WindowedMin::new(1.0);
        m.update(0.0, 1.0);
        m.reset();
        assert_eq!(m.min(), None);
    }

    proptest! {
        #[test]
        fn prop_ewma_bounded_by_input_range(xs in proptest::collection::vec(-1e6f64..1e6, 1..200), alpha in 0.01f64..1.0) {
            let mut e = Ewma::new(alpha);
            let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
            let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
            for &x in &xs {
                let v = e.update(x);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }

        #[test]
        fn prop_windowed_min_matches_bruteforce(samples in proptest::collection::vec((0.0f64..100.0, -1e3f64..1e3), 1..100)) {
            // Sort by timestamp to simulate time passing monotonically.
            let mut samples = samples;
            samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let window = 5.0;
            let mut filt = WindowedMin::new(window);
            for (i, &(t, v)) in samples.iter().enumerate() {
                let got = filt.update(t, v);
                let expect = samples[..=i]
                    .iter()
                    .filter(|&&(ts, _)| t - ts <= window)
                    .map(|&(_, vv)| vv)
                    .fold(f64::MAX, f64::min);
                prop_assert!((got - expect).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_windowed_max_matches_bruteforce(samples in proptest::collection::vec((0.0f64..100.0, -1e3f64..1e3), 1..100)) {
            let mut samples = samples;
            samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let window = 5.0;
            let mut filt = WindowedMax::new(window);
            for (i, &(t, v)) in samples.iter().enumerate() {
                let got = filt.update(t, v);
                let expect = samples[..=i]
                    .iter()
                    .filter(|&&(ts, _)| t - ts <= window)
                    .map(|&(_, vv)| vv)
                    .fold(f64::MIN, f64::max);
                prop_assert!((got - expect).abs() < 1e-12);
            }
        }
    }
}
