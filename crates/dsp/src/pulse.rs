//! Pulse shapes used to modulate the sending rate.
//!
//! §3.4 / Fig. 7 of the paper: rather than a pure sinusoid, Nimbus uses an
//! *asymmetric* sinusoidal pulse.  Over one period `T = 1/f_p`:
//!
//! * for the first quarter of the period the sender **adds** a half-sine of
//!   amplitude `A` (e.g. `µ/4`) to its base rate;
//! * for the remaining three quarters it **subtracts** a half-sine of
//!   amplitude `A/3` (e.g. `µ/12`).
//!
//! The two half-sines integrate to the same area, so the mean added rate over
//! a full period is zero, and a sender whose base rate is as low as `A/3` can
//! still pulse without going negative.
//!
//! The symmetric pulse (a plain sinusoid of amplitude `A`) is also provided
//! for the ablation experiments.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A rate-modulation pulse: given the phase of the current pulse period it
/// returns the rate *offset* (in the same units as the amplitude, e.g. bits
/// per second) to add to the base sending rate.
pub trait PulseShape {
    /// Rate offset at time `t` seconds for a pulse of frequency `freq_hz` and
    /// peak amplitude `amplitude` (positive peak).
    fn offset_at(&self, t: f64, freq_hz: f64, amplitude: f64) -> f64;

    /// The minimum base rate (as a fraction of `amplitude`) a sender needs so
    /// that `base + offset` never goes negative.
    fn min_base_rate_fraction(&self) -> f64;

    /// Mean of the offset over one full period (should be ~0 for well-formed
    /// pulses). Computed numerically; mostly useful for tests/diagnostics.
    fn mean_offset(&self, freq_hz: f64, amplitude: f64) -> f64 {
        let period = 1.0 / freq_hz;
        let steps = 10_000;
        let dt = period / steps as f64;
        let sum: f64 = (0..steps)
            .map(|i| self.offset_at((i as f64 + 0.5) * dt, freq_hz, amplitude))
            .sum();
        sum / steps as f64
    }
}

/// The asymmetric sinusoidal pulse of Fig. 7.
///
/// Positive half-sine of amplitude `A` over `T/4`, negative half-sine of
/// amplitude `A/3` over `3T/4`. The positive and negative areas cancel:
/// `A·(T/4)·(2/π) = (A/3)·(3T/4)·(2/π)`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AsymmetricPulse;

impl PulseShape for AsymmetricPulse {
    fn offset_at(&self, t: f64, freq_hz: f64, amplitude: f64) -> f64 {
        assert!(freq_hz > 0.0, "pulse frequency must be positive");
        let period = 1.0 / freq_hz;
        let phase = (t / period).rem_euclid(1.0); // in [0, 1)
        if phase < 0.25 {
            // Half sine over the first quarter: sin goes 0 -> 1 -> 0.
            amplitude * (PI * phase / 0.25).sin()
        } else {
            // Negative half sine over the remaining three quarters.
            -(amplitude / 3.0) * (PI * (phase - 0.25) / 0.75).sin()
        }
    }

    fn min_base_rate_fraction(&self) -> f64 {
        // The most negative excursion is -A/3.
        1.0 / 3.0
    }
}

/// A plain symmetric sinusoid `A·sin(2π f t)`, used for ablation comparisons.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SymmetricPulse;

impl PulseShape for SymmetricPulse {
    fn offset_at(&self, t: f64, freq_hz: f64, amplitude: f64) -> f64 {
        assert!(freq_hz > 0.0, "pulse frequency must be positive");
        amplitude * (2.0 * PI * freq_hz * t).sin()
    }

    fn min_base_rate_fraction(&self) -> f64 {
        1.0
    }
}

/// A pulse generator bound to a particular frequency and amplitude, so the
/// sender machinery can just ask "what's my rate multiplier right now?".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PulseGenerator {
    /// Pulse frequency in Hz (`f_p` in the paper, default 5 Hz).
    pub freq_hz: f64,
    /// Peak pulse amplitude in the rate unit used by the caller
    /// (the paper uses a fraction of the bottleneck rate, e.g. `µ/4`).
    pub amplitude: f64,
    /// Which pulse shape to use.
    pub shape: PulseKind,
    /// Whether pulsing is currently enabled (watchers do not pulse).
    pub enabled: bool,
}

/// Enumerates the available pulse shapes (object-safe alternative to carrying
/// a `dyn PulseShape`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PulseKind {
    /// Asymmetric pulse of Fig. 7 (default).
    Asymmetric,
    /// Plain sinusoid (ablation).
    Symmetric,
    /// No pulsing at all (ablation / watcher behaviour).
    None,
}

impl PulseGenerator {
    /// Create an asymmetric pulse generator at `freq_hz` with peak `amplitude`.
    pub fn asymmetric(freq_hz: f64, amplitude: f64) -> Self {
        PulseGenerator {
            freq_hz,
            amplitude,
            shape: PulseKind::Asymmetric,
            enabled: true,
        }
    }

    /// Create a symmetric (pure sinusoid) pulse generator.
    pub fn symmetric(freq_hz: f64, amplitude: f64) -> Self {
        PulseGenerator {
            freq_hz,
            amplitude,
            shape: PulseKind::Symmetric,
            enabled: true,
        }
    }

    /// A generator that never modulates the rate.
    pub fn disabled() -> Self {
        PulseGenerator {
            freq_hz: 1.0,
            amplitude: 0.0,
            shape: PulseKind::None,
            enabled: false,
        }
    }

    /// Rate offset (e.g. in bits/s) at absolute time `t` seconds.
    pub fn offset_at(&self, t: f64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        match self.shape {
            PulseKind::Asymmetric => AsymmetricPulse.offset_at(t, self.freq_hz, self.amplitude),
            PulseKind::Symmetric => SymmetricPulse.offset_at(t, self.freq_hz, self.amplitude),
            PulseKind::None => 0.0,
        }
    }

    /// Apply the pulse to a base rate, clamping at a small positive floor so
    /// the sender never stops entirely.
    pub fn modulate(&self, base_rate: f64, t: f64) -> f64 {
        (base_rate + self.offset_at(t))
            .max(base_rate * 0.05)
            .max(0.0)
    }

    /// Total bytes sent *above* the mean rate during the positive part of a
    /// pulse ("the size of the burst sent in a pulse", §3.4): `A·T/(2π)` for
    /// the asymmetric pulse with peak `A`, which for `A = µ/4` is
    /// `µT/(8π) ≈ 0.04·µT`.
    pub fn burst_bits(&self) -> f64 {
        match self.shape {
            PulseKind::Asymmetric => {
                let period = 1.0 / self.freq_hz;
                self.amplitude * (period / 4.0) * 2.0 / PI
            }
            PulseKind::Symmetric => {
                let period = 1.0 / self.freq_hz;
                self.amplitude * (period / 2.0) * 2.0 / PI
            }
            PulseKind::None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn asymmetric_pulse_peaks_match_paper() {
        let p = AsymmetricPulse;
        let fp = 5.0;
        let mu = 96e6;
        let amp = mu / 4.0;
        // Peak of the positive half-sine is at T/8.
        let peak = p.offset_at(1.0 / fp / 8.0, fp, amp);
        assert!((peak - amp).abs() < amp * 1e-9);
        // Trough of the negative half sine is at T/4 + (3T/4)/2 = 5T/8.
        let trough = p.offset_at(5.0 / (8.0 * fp), fp, amp);
        assert!((trough + amp / 3.0).abs() < amp * 1e-9);
    }

    #[test]
    fn asymmetric_pulse_integrates_to_zero() {
        let p = AsymmetricPulse;
        let mean = p.mean_offset(5.0, 24e6);
        assert!(mean.abs() < 24e6 * 1e-4, "mean offset {mean} too large");
    }

    #[test]
    fn symmetric_pulse_integrates_to_zero() {
        let p = SymmetricPulse;
        let mean = p.mean_offset(5.0, 24e6);
        assert!(mean.abs() < 24e6 * 1e-4);
    }

    #[test]
    fn asymmetric_allows_lower_base_rates_than_symmetric() {
        assert!(AsymmetricPulse.min_base_rate_fraction() < SymmetricPulse.min_base_rate_fraction());
    }

    #[test]
    fn pulse_is_periodic() {
        let p = AsymmetricPulse;
        let fp = 5.0;
        for k in 0..20 {
            let t = k as f64 * 0.017;
            let a = p.offset_at(t, fp, 1.0);
            let b = p.offset_at(t + 3.0 / fp, fp, 1.0);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn burst_size_is_about_four_percent_of_mu_times_period() {
        // §3.4: burst ≈ 0.04 µT for amplitude µ/4.
        let mu = 96e6;
        let gen = PulseGenerator::asymmetric(5.0, mu / 4.0);
        let t = 1.0 / 5.0;
        let expected = mu * t / (8.0 * PI);
        assert!((gen.burst_bits() - expected).abs() < expected * 1e-9);
        assert!((gen.burst_bits() / (mu * t) - 0.0398).abs() < 0.002);
    }

    #[test]
    fn disabled_generator_never_modulates() {
        let gen = PulseGenerator::disabled();
        for i in 0..100 {
            assert_eq!(gen.offset_at(i as f64 * 0.01), 0.0);
            assert_eq!(gen.modulate(10e6, i as f64 * 0.01), 10e6);
        }
    }

    #[test]
    fn modulate_never_goes_negative() {
        let gen = PulseGenerator::asymmetric(5.0, 24e6);
        // Base rate far below amplitude/3: clamp must kick in.
        for i in 0..1000 {
            let r = gen.modulate(1e6, i as f64 * 0.001);
            assert!(r >= 0.0);
        }
    }

    #[test]
    fn fft_of_pulsed_rate_peaks_at_pulse_frequency() {
        // End-to-end within the crate: a rate signal modulated by the pulse
        // generator must show a dominant spectral component at f_p.
        use crate::spectrum::Spectrum;
        let fp = 5.0;
        let gen = PulseGenerator::asymmetric(fp, 24e6);
        let fs = 100.0;
        let sig: Vec<f64> = (0..500)
            .map(|i| gen.modulate(48e6, i as f64 / fs))
            .collect();
        let spec = Spectrum::of_signal(&sig, fs, true);
        let (_, freq) = spec.dominant_frequency();
        assert!((freq - fp).abs() <= spec.bin_width_hz() + 1e-9);
    }

    proptest! {
        #[test]
        fn prop_asymmetric_bounded(t in 0.0f64..100.0, amp in 1.0f64..1e9, freq in 0.5f64..20.0) {
            let v = AsymmetricPulse.offset_at(t, freq, amp);
            prop_assert!(v <= amp + 1e-9);
            prop_assert!(v >= -amp / 3.0 - 1e-9);
        }

        #[test]
        fn prop_modulated_rate_non_negative(base in 0.0f64..1e9, t in 0.0f64..10.0) {
            let gen = PulseGenerator::asymmetric(5.0, 24e6);
            prop_assert!(gen.modulate(base, t) >= 0.0);
        }
    }
}
