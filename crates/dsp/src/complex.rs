//! A minimal complex-number type.
//!
//! The FFT code only needs addition, subtraction, multiplication, conjugation
//! and magnitude, so rather than pulling in an external crate we define a tiny
//! `Copy` struct here.  It is `#[repr(C)]` so slices of it can be reinterpreted
//! cheaply if ever needed.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Create a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Create a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`: the unit-magnitude complex number at angle `theta` radians.
    #[inline]
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Construct from polar coordinates `(r, θ)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns true if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
    }

    #[test]
    fn multiplication_matches_manual_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        let p = a * b;
        assert!(close(p.re, 1.0 * -3.0 - 2.0 * 0.5));
        assert!(close(p.im, 1.0 * 0.5 + 2.0 * -3.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let p = Complex::I * Complex::I;
        assert!(close(p.re, -1.0));
        assert!(close(p.im, 0.0));
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex::new(2.5, 7.0);
        assert_eq!(z.conj(), Complex::new(2.5, -7.0));
        // z * conj(z) = |z|^2
        let p = z * z.conj();
        assert!(close(p.re, z.norm_sqr()));
        assert!(close(p.im, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), std::f64::consts::FRAC_PI_3));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(0.5, 3.0);
        let q = (a * b) / b;
        assert!(close(q.re, a.re));
        assert!(close(q.im, a.im));
    }

    #[test]
    fn unit_polar_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::from_polar_unit(theta);
            assert!(close(z.abs(), 1.0));
        }
    }
}
