//! Summary statistics used across the experiment harness.
//!
//! Every figure in the paper is either a time series, a CDF, or a
//! scatter/summary of throughput and delay distributions.  The helpers here —
//! percentiles, empirical CDFs, running statistics, classification-accuracy
//! summaries — are shared by the experiment runners and the benches.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0.0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Percentile via linear interpolation between closest ranks.
///
/// `p` is in `[0, 100]`. Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_of_sorted(&sorted, p)
}

/// Percentile of an already sorted slice.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// An empirical cumulative distribution function over a sample set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from (unsorted) samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn probability_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Median of the samples.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        mean(&self.sorted)
    }

    /// Sample the CDF at `points` evenly spaced quantiles — exactly the series
    /// a plotted CDF figure needs. Returns `(value, cumulative_probability)` pairs.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (0..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// The minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// The maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// Online mean/variance/extrema accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (0.0 if none).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0.0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, if any.
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation, if any.
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.n as f64 / total as f64;
        self.m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / total as f64;
        self.mean = new_mean;
        self.n = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Binary-classification accuracy accumulator used by the robustness
/// experiments (§8.2): "fraction of time the detector is in the correct mode".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClassificationAccuracy {
    /// Decisions where ground truth was "elastic".
    pub elastic_total: u64,
    /// Correct decisions when ground truth was "elastic".
    pub elastic_correct: u64,
    /// Decisions where ground truth was "inelastic".
    pub inelastic_total: u64,
    /// Correct decisions when ground truth was "inelastic".
    pub inelastic_correct: u64,
}

impl ClassificationAccuracy {
    /// Record one decision: `truth_elastic` is the ground truth,
    /// `detected_elastic` the detector's output.
    pub fn record(&mut self, truth_elastic: bool, detected_elastic: bool) {
        if truth_elastic {
            self.elastic_total += 1;
            if detected_elastic {
                self.elastic_correct += 1;
            }
        } else {
            self.inelastic_total += 1;
            if !detected_elastic {
                self.inelastic_correct += 1;
            }
        }
    }

    /// Overall fraction of correct decisions.
    pub fn accuracy(&self) -> f64 {
        let total = self.elastic_total + self.inelastic_total;
        if total == 0 {
            return 0.0;
        }
        (self.elastic_correct + self.inelastic_correct) as f64 / total as f64
    }

    /// Accuracy restricted to elastic ground truth (recall of "elastic").
    pub fn elastic_accuracy(&self) -> f64 {
        if self.elastic_total == 0 {
            return 0.0;
        }
        self.elastic_correct as f64 / self.elastic_total as f64
    }

    /// Accuracy restricted to inelastic ground truth.
    pub fn inelastic_accuracy(&self) -> f64 {
        if self.inelastic_total == 0 {
            return 0.0;
        }
        self.inelastic_correct as f64 / self.inelastic_total as f64
    }

    /// Total number of decisions recorded.
    pub fn total(&self) -> u64 {
        self.elastic_total + self.inelastic_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_of_known_data() {
        let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert!((percentile(&xs, 90.0) - 4.6).abs() < 1e-12);
    }

    #[test]
    fn percentile_handles_edge_cases() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn mean_and_stddev() {
        let xs = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn cdf_quantiles_and_probabilities() {
        let cdf = Cdf::from_samples(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.probability_at(9.0), 0.0);
        assert_eq!(cdf.probability_at(20.0), 0.5);
        assert_eq!(cdf.probability_at(100.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
        assert_eq!(cdf.min(), Some(10.0));
        assert_eq!(cdf.max(), Some(40.0));
        let curve = cdf.curve(4);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0].1, 0.0);
        assert_eq!(curve[4].1, 1.0);
    }

    #[test]
    fn cdf_filters_non_finite() {
        let cdf = Cdf::from_samples(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = vec![1.0, -2.0, 3.5, 10.0, 0.0, 4.25];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), xs.len() as u64);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.stddev() - stddev(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), Some(-2.0));
        assert_eq!(rs.max(), Some(10.0));
    }

    #[test]
    fn running_stats_merge_matches_combined() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 20.0];
        let mut ra = RunningStats::new();
        let mut rb = RunningStats::new();
        for &x in &a {
            ra.push(x);
        }
        for &x in &b {
            rb.push(x);
        }
        ra.merge(&rb);
        let mut all = a.clone();
        all.extend(&b);
        assert!((ra.mean() - mean(&all)).abs() < 1e-12);
        assert!((ra.stddev() - stddev(&all)).abs() < 1e-12);
    }

    #[test]
    fn classification_accuracy_bookkeeping() {
        let mut acc = ClassificationAccuracy::default();
        // 3 elastic decisions, 2 correct; 2 inelastic decisions, 2 correct.
        acc.record(true, true);
        acc.record(true, true);
        acc.record(true, false);
        acc.record(false, false);
        acc.record(false, false);
        assert_eq!(acc.total(), 5);
        assert!((acc.accuracy() - 0.8).abs() < 1e-12);
        assert!((acc.elastic_accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.inelastic_accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        let acc = ClassificationAccuracy::default();
        assert_eq!(acc.accuracy(), 0.0);
        assert_eq!(acc.elastic_accuracy(), 0.0);
        assert_eq!(acc.inelastic_accuracy(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_percentile_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                     p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
        }

        #[test]
        fn prop_cdf_probability_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
                                          a in -1e3f64..1e3, b in -1e3f64..1e3) {
            let cdf = Cdf::from_samples(&xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.probability_at(lo) <= cdf.probability_at(hi));
        }

        #[test]
        fn prop_running_stats_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut rs = RunningStats::new();
            for &x in &xs { rs.push(x); }
            prop_assert!(rs.mean() >= rs.min().unwrap() - 1e-9);
            prop_assert!(rs.mean() <= rs.max().unwrap() + 1e-9);
        }
    }
}
