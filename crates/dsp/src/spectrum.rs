//! Magnitude spectra and band peak searches.
//!
//! The elasticity metric (Eq. 3 of the paper) compares the FFT magnitude of
//! the cross-traffic rate at the pulse frequency `f_p` against the largest
//! magnitude in the open band `(f_p, 2 f_p)`:
//!
//! ```text
//!           |FFT_z(f_p)|
//! η = ─────────────────────────
//!      max_{f ∈ (f_p, 2 f_p)} |FFT_z(f)|
//! ```
//!
//! [`Spectrum`] wraps the magnitudes of a real-signal FFT together with the
//! sampling rate, so callers can ask for magnitudes "at a frequency" without
//! worrying about bin arithmetic.

use crate::complex::Complex;
use crate::fft::Fft;
use serde::{Deserialize, Serialize};

/// Magnitude spectrum of a real-valued, uniformly sampled signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Spectrum {
    /// Magnitudes for bins `0..=n/2` (the one-sided spectrum).
    pub magnitudes: Vec<f64>,
    /// Sampling rate of the original signal in Hz.
    pub sample_rate_hz: f64,
    /// Number of time-domain samples the spectrum was computed from.
    pub n: usize,
}

impl Spectrum {
    /// Compute the one-sided magnitude spectrum of `signal` sampled at
    /// `sample_rate_hz`, optionally removing the mean first (the detector
    /// always removes it: the DC component otherwise dwarfs everything).
    pub fn of_signal(signal: &[f64], sample_rate_hz: f64, remove_mean: bool) -> Self {
        Self::of_signal_with_plan(
            &Fft::new(signal.len().max(1)),
            signal,
            sample_rate_hz,
            remove_mean,
        )
    }

    /// Same as [`Spectrum::of_signal`] but reusing a prepared [`Fft`] plan.
    pub fn of_signal_with_plan(
        plan: &Fft,
        signal: &[f64],
        sample_rate_hz: f64,
        remove_mean: bool,
    ) -> Self {
        assert!(
            !signal.is_empty(),
            "cannot take a spectrum of an empty signal"
        );
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let n = signal.len();
        let mean = if remove_mean {
            signal.iter().sum::<f64>() / n as f64
        } else {
            0.0
        };
        let buf: Vec<Complex> = signal
            .iter()
            .map(|&x| Complex::from_real(x - mean))
            .collect();
        let spec = plan.forward(&buf);
        // One-sided spectrum, normalized by n so magnitudes are in signal units.
        let half = n / 2;
        let magnitudes: Vec<f64> = spec[..=half].iter().map(|z| z.abs() / n as f64).collect();
        Spectrum {
            magnitudes,
            sample_rate_hz,
            n,
        }
    }

    /// Frequency resolution (bin width) in Hz.
    pub fn bin_width_hz(&self) -> f64 {
        self.sample_rate_hz / self.n as f64
    }

    /// Frequency in Hz corresponding to `bin`.
    pub fn frequency_of_bin(&self, bin: usize) -> f64 {
        bin as f64 * self.bin_width_hz()
    }

    /// The bin index closest to `freq_hz` (clamped to the valid range).
    pub fn bin_of_frequency(&self, freq_hz: f64) -> usize {
        bin_for_frequency(freq_hz, self.sample_rate_hz, self.n).min(self.magnitudes.len() - 1)
    }

    /// Magnitude at the bin nearest to `freq_hz`.
    pub fn magnitude_at(&self, freq_hz: f64) -> f64 {
        self.magnitudes[self.bin_of_frequency(freq_hz)]
    }

    /// Peak magnitude within `freq_hz ± tolerance_hz` (inclusive).
    ///
    /// The pulse frequency never lands exactly on a bin for arbitrary FFT
    /// durations, so the detector searches a small neighborhood.
    pub fn peak_near(&self, freq_hz: f64, tolerance_hz: f64) -> f64 {
        let lo = self.bin_of_frequency((freq_hz - tolerance_hz).max(0.0));
        let hi = self.bin_of_frequency(freq_hz + tolerance_hz);
        self.magnitudes[lo..=hi]
            .iter()
            .copied()
            .fold(0.0_f64, f64::max)
    }

    /// Peak magnitude over the open frequency band `(lo_hz, hi_hz)` —
    /// endpoints excluded, matching Eq. 3's `(f_p, 2 f_p)` band.
    pub fn peak_in_open_band(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        band_peak(&self.magnitudes, self.sample_rate_hz, self.n, lo_hz, hi_hz)
    }

    /// Index and frequency of the overall (non-DC) peak.
    pub fn dominant_frequency(&self) -> (usize, f64) {
        let (idx, _) = self
            .magnitudes
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap_or((0, &0.0));
        (idx, self.frequency_of_bin(idx))
    }

    /// Total spectral energy excluding DC (useful in diagnostics).
    pub fn energy_excluding_dc(&self) -> f64 {
        self.magnitudes.iter().skip(1).map(|m| m * m).sum()
    }
}

/// Bin index nearest to `freq_hz` for an `n`-point transform of a signal
/// sampled at `sample_rate_hz`.
pub fn bin_for_frequency(freq_hz: f64, sample_rate_hz: f64, n: usize) -> usize {
    ((freq_hz * n as f64 / sample_rate_hz).round().max(0.0)) as usize
}

/// One-sided magnitude spectrum of a real signal (convenience wrapper).
pub fn magnitude_spectrum(signal: &[f64], sample_rate_hz: f64) -> Vec<f64> {
    Spectrum::of_signal(signal, sample_rate_hz, true).magnitudes
}

/// Peak magnitude over the *open* band `(lo_hz, hi_hz)` of a one-sided
/// magnitude spectrum (`mags[k]` is the magnitude of bin `k`).
///
/// Returns 0.0 when the band contains no interior bins.
pub fn band_peak(mags: &[f64], sample_rate_hz: f64, n: usize, lo_hz: f64, hi_hz: f64) -> f64 {
    assert!(hi_hz > lo_hz, "band must be non-empty");
    let bin_width = sample_rate_hz / n as f64;
    let mut peak = 0.0_f64;
    for (k, &m) in mags.iter().enumerate() {
        let f = k as f64 * bin_width;
        if f > lo_hz + 1e-12 && f < hi_hz - 1e-12 {
            peak = peak.max(m);
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Build a test signal: sum of sinusoids at the given (freq, amplitude) pairs.
    fn tone_mix(n: usize, fs: f64, tones: &[(f64, f64)]) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                tones
                    .iter()
                    .map(|&(f, a)| a * (2.0 * PI * f * t).sin())
                    .sum()
            })
            .collect()
    }

    #[test]
    fn single_tone_peak_at_expected_frequency() {
        let fs = 100.0;
        let sig = tone_mix(500, fs, &[(5.0, 3.0)]);
        let spec = Spectrum::of_signal(&sig, fs, true);
        let (_, freq) = spec.dominant_frequency();
        assert!((freq - 5.0).abs() < spec.bin_width_hz() + 1e-9);
        // Amplitude-a sine splits between the positive and negative bins:
        // the one-sided magnitude is a/2.
        assert!((spec.peak_near(5.0, 0.3) - 1.5).abs() < 0.1);
    }

    #[test]
    fn elasticity_style_ratio_distinguishes_tone_from_noise_free_band() {
        let fs = 100.0;
        let sig = tone_mix(500, fs, &[(5.0, 2.0), (12.0, 0.2)]);
        let spec = Spectrum::of_signal(&sig, fs, true);
        let peak_fp = spec.peak_near(5.0, 0.3);
        let band = spec.peak_in_open_band(5.3, 10.0);
        assert!(peak_fp / band.max(1e-12) > 5.0);
    }

    #[test]
    fn dc_removed_when_requested() {
        let sig = vec![10.0; 200];
        let spec = Spectrum::of_signal(&sig, 100.0, true);
        assert!(spec.magnitudes[0] < 1e-9);
        let spec_dc = Spectrum::of_signal(&sig, 100.0, false);
        assert!(spec_dc.magnitudes[0] > 9.0);
    }

    #[test]
    fn bin_frequency_round_trip() {
        let spec = Spectrum::of_signal(&vec![0.0; 500], 100.0, true);
        for bin in [0usize, 5, 25, 50, 100, 250] {
            let f = spec.frequency_of_bin(bin);
            assert_eq!(spec.bin_of_frequency(f), bin);
        }
        assert!((spec.bin_width_hz() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn open_band_excludes_endpoints() {
        // Put a strong tone exactly at 5 Hz; the open band (5, 10) must not see it.
        let fs = 100.0;
        let n = 500;
        let sig = tone_mix(n, fs, &[(5.0, 4.0)]);
        let spec = Spectrum::of_signal(&sig, fs, true);
        let in_band = spec.peak_in_open_band(5.0, 10.0);
        let at_fp = spec.peak_near(5.0, 0.05);
        assert!(at_fp > 1.0);
        // Leakage is small compared to the on-bin peak.
        assert!(in_band < at_fp * 0.5);
    }

    #[test]
    fn band_peak_empty_band_is_zero() {
        let mags = vec![1.0, 2.0, 3.0];
        // Band narrower than one bin at high frequency: no interior bins.
        assert_eq!(band_peak(&mags, 100.0, 100, 70.0, 70.5), 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_band_panics() {
        let mags = vec![1.0; 8];
        band_peak(&mags, 100.0, 16, 10.0, 5.0);
    }

    #[test]
    fn energy_reflects_signal_power() {
        let fs = 100.0;
        let quiet = tone_mix(256, fs, &[(5.0, 0.1)]);
        let loud = tone_mix(256, fs, &[(5.0, 5.0)]);
        let e_quiet = Spectrum::of_signal(&quiet, fs, true).energy_excluding_dc();
        let e_loud = Spectrum::of_signal(&loud, fs, true).energy_excluding_dc();
        assert!(e_loud > e_quiet * 100.0);
    }
}
