//! Biquad (second-order IIR) filter sections, including the notch used by
//! the ẑ pre-filter stage.
//!
//! The elasticity detector's input ẑ(t) can carry a large component at the
//! *link's* rate-variation frequency: on a time-varying bottleneck the
//! µ-estimation error `µ̂ − µ(t)` oscillates with the link, and Eq. 1 turns
//! that error into a spurious cross-traffic swing that both dwarfs and (via
//! spectral leakage) contaminates the pulse band the detector inspects.
//! A narrow notch at the known link-variation frequency removes exactly that
//! component while leaving the pulse frequency `f_p` untouched — one of the
//! `ZFilter` strategies of the µ-estimation API (see
//! `nimbus_core::estimator`).
//!
//! Coefficients follow the RBJ Audio-EQ cookbook; the filter is applied as a
//! *streaming* direct-form-I section so its state is continuous across the
//! detector's sliding windows (re-filtering each window from scratch would
//! put the filter's own transient inside every FFT).

use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// A second-order IIR section with normalized coefficients (`a0 == 1`):
///
/// ```text
/// y[n] = b0·x[n] + b1·x[n−1] + b2·x[n−2] − a1·y[n−1] − a2·y[n−2]
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Biquad {
    /// Feed-forward coefficients.
    b0: f64,
    /// Feed-forward, one sample back.
    b1: f64,
    /// Feed-forward, two samples back.
    b2: f64,
    /// Feedback, one sample back.
    a1: f64,
    /// Feedback, two samples back.
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// A section from raw normalized coefficients.
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// A notch at `freq_hz` with quality factor `q`, sampled at
    /// `sample_rate_hz` (RBJ cookbook).  Unity gain away from the notch; the
    /// −3 dB bandwidth is `freq_hz / q`.
    ///
    /// # Panics
    /// Panics unless `0 < freq_hz < sample_rate_hz / 2` and `q > 0`.
    pub fn notch(freq_hz: f64, q: f64, sample_rate_hz: f64) -> Self {
        assert!(
            freq_hz > 0.0 && freq_hz < sample_rate_hz / 2.0,
            "notch frequency {freq_hz} Hz must lie in (0, {}) for sample rate {sample_rate_hz} Hz",
            sample_rate_hz / 2.0
        );
        assert!(q > 0.0, "notch Q must be positive");
        let omega = TAU * freq_hz / sample_rate_hz;
        let alpha = omega.sin() / (2.0 * q);
        let cos = omega.cos();
        let a0 = 1.0 + alpha;
        Biquad::from_coefficients(
            1.0 / a0,
            -2.0 * cos / a0,
            1.0 / a0,
            -2.0 * cos / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Process one sample and return the filtered value.
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Filter a whole signal (streaming state carries across calls).
    pub fn process_signal(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process(x)).collect()
    }

    /// Reset the delay lines to zero.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }

    /// Magnitude response at `freq_hz` for sample rate `sample_rate_hz`
    /// (evaluates `|H(e^{jω})|` analytically; used by tests and docs).
    pub fn magnitude_at(&self, freq_hz: f64, sample_rate_hz: f64) -> f64 {
        let omega = TAU * freq_hz / sample_rate_hz;
        let (sin, cos) = omega.sin_cos();
        let (sin2, cos2) = (2.0 * omega).sin_cos();
        // H(z) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)
        let num_re = self.b0 + self.b1 * cos + self.b2 * cos2;
        let num_im = -self.b1 * sin - self.b2 * sin2;
        let den_re = 1.0 + self.a1 * cos + self.a2 * cos2;
        let den_im = -self.a1 * sin - self.a2 * sin2;
        (num_re * num_re + num_im * num_im).sqrt() / (den_re * den_re + den_im * den_im).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq_hz: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (TAU * freq_hz * i as f64 / fs).sin())
            .collect()
    }

    fn rms(xs: &[f64]) -> f64 {
        (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
    }

    #[test]
    fn notch_kills_its_frequency_and_passes_others() {
        let fs = 100.0;
        let mut f = Biquad::notch(0.1, 0.7, fs);
        // 60 s of warm-up + 60 s of measurement at the notch frequency.
        let sig = tone(0.1, fs, 12_000);
        let out = f.process_signal(&sig);
        let tail = &out[6_000..];
        assert!(
            rms(tail) < 0.1 * rms(&sig[6_000..]),
            "notch left rms {}",
            rms(tail)
        );
        // The pulse band (5 Hz) passes essentially untouched.
        let mut f = Biquad::notch(0.1, 0.7, fs);
        let sig = tone(5.0, fs, 4_000);
        let out = f.process_signal(&sig);
        let tail = &out[2_000..];
        let ratio = rms(tail) / rms(&sig[2_000..]);
        assert!((ratio - 1.0).abs() < 0.05, "passband gain {ratio}");
    }

    #[test]
    fn analytic_magnitude_matches_measured_attenuation() {
        let fs = 100.0;
        let f = Biquad::notch(1.0, 1.0, fs);
        assert!(f.magnitude_at(1.0, fs) < 1e-9, "gain at the notch");
        assert!((f.magnitude_at(10.0, fs) - 1.0).abs() < 0.02);
        assert!((f.magnitude_at(0.05, fs) - 1.0).abs() < 0.02);
        // −3 dB points sit near f0 ± f0/(2Q).
        let edge = f.magnitude_at(1.0 + 0.5, fs);
        assert!(
            (edge - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.1,
            "{edge}"
        );
    }

    #[test]
    fn filter_is_stable_on_a_step_and_resets() {
        let mut f = Biquad::notch(0.5, 0.7, 100.0);
        let step = vec![1.0; 20_000];
        let out = f.process_signal(&step);
        // DC is in the passband of a notch: settles back to 1.
        assert!((out.last().unwrap() - 1.0).abs() < 1e-6);
        assert!(out.iter().all(|y| y.is_finite() && y.abs() < 10.0));
        f.reset();
        assert_eq!(f.process(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "notch frequency")]
    fn rejects_frequencies_above_nyquist() {
        let _ = Biquad::notch(60.0, 1.0, 100.0);
    }
}
