//! Window functions applied before taking an FFT.
//!
//! The detector's 5-second measurement window does not contain an integer
//! number of pulse periods for every pulse frequency, so spectral leakage can
//! smear the peak at `f_p` into the comparison band `(f_p, 2 f_p)` and lower
//! the elasticity metric.  Applying a mild window (Hann) before the FFT keeps
//! the peak tight.  The rectangular window (no-op) reproduces the behaviour of
//! the reference implementation and is the default.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Available window functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WindowFunction {
    /// No windowing (all-ones). Default; matches the reference Nimbus.
    #[default]
    Rectangular,
    /// Hann window: `0.5 − 0.5·cos(2πn/(N−1))`.
    Hann,
    /// Hamming window: `0.54 − 0.46·cos(2πn/(N−1))`.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl WindowFunction {
    /// The window coefficient for sample `n` of an `N`-point window.
    pub fn coefficient(self, n: usize, len: usize) -> f64 {
        if len <= 1 {
            return 1.0;
        }
        let x = 2.0 * PI * n as f64 / (len - 1) as f64;
        match self {
            WindowFunction::Rectangular => 1.0,
            WindowFunction::Hann => 0.5 - 0.5 * x.cos(),
            WindowFunction::Hamming => 0.54 - 0.46 * x.cos(),
            WindowFunction::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Materialize the full window of length `len`.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.coefficient(n, len)).collect()
    }

    /// Apply the window to a signal in place.
    pub fn apply(self, signal: &mut [f64]) {
        if self == WindowFunction::Rectangular {
            return;
        }
        let len = signal.len();
        for (n, s) in signal.iter_mut().enumerate() {
            *s *= self.coefficient(n, len);
        }
    }

    /// Coherent gain (mean coefficient); used to renormalize amplitudes after
    /// windowing so that pulse-amplitude comparisons stay meaningful.
    pub fn coherent_gain(self, len: usize) -> f64 {
        if len == 0 {
            return 1.0;
        }
        self.coefficients(len).iter().sum::<f64>() / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_identity() {
        let mut sig = vec![1.0, 2.0, 3.0, 4.0];
        WindowFunction::Rectangular.apply(&mut sig);
        assert_eq!(sig, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(WindowFunction::Rectangular.coherent_gain(128), 1.0);
    }

    #[test]
    fn hann_is_zero_at_edges_and_one_in_middle() {
        let w = WindowFunction::Hann.coefficients(101);
        assert!(w[0].abs() < 1e-12);
        assert!(w[100].abs() < 1e-12);
        assert!((w[50] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_windows_bounded_zero_one_ish() {
        for win in [
            WindowFunction::Rectangular,
            WindowFunction::Hann,
            WindowFunction::Hamming,
            WindowFunction::Blackman,
        ] {
            for &c in &win.coefficients(64) {
                assert!(
                    (-1e-12..=1.0 + 1e-12).contains(&c),
                    "{win:?} coefficient {c} out of range"
                );
            }
        }
    }

    #[test]
    fn coherent_gain_of_hann_is_about_half() {
        let g = WindowFunction::Hann.coherent_gain(1000);
        assert!((g - 0.5).abs() < 0.01);
    }

    #[test]
    fn degenerate_lengths_do_not_panic() {
        assert_eq!(WindowFunction::Hann.coefficient(0, 0), 1.0);
        assert_eq!(WindowFunction::Hann.coefficient(0, 1), 1.0);
        assert_eq!(WindowFunction::Blackman.coefficients(1), vec![1.0]);
    }

    #[test]
    fn hann_reduces_leakage_into_comparison_band() {
        // A tone that is deliberately off-bin: without a window it leaks into
        // the (f_p, 2 f_p) band more than with a Hann window.
        use crate::spectrum::Spectrum;
        let fs = 100.0;
        let n = 500;
        let f = 5.07; // off-bin
        let raw: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / fs).sin())
            .collect();
        let mut windowed = raw.clone();
        WindowFunction::Hann.apply(&mut windowed);

        let ratio = |sig: &[f64]| {
            let spec = Spectrum::of_signal(sig, fs, true);
            let peak = spec.peak_near(5.0, 0.3);
            let band = spec.peak_in_open_band(5.4, 10.0);
            peak / band.max(1e-12)
        };
        assert!(ratio(&windowed) > ratio(&raw));
    }
}
