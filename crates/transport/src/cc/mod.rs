//! Congestion-control algorithms.
//!
//! Every scheme the paper evaluates or uses as a building block is
//! implemented here against one small trait, [`CongestionControl`], which the
//! [`Sender`](crate::sender::Sender) machinery drives:
//!
//! | Module       | Scheme          | Role in the paper                                   |
//! |--------------|-----------------|------------------------------------------------------|
//! | [`reno`]     | NewReno         | TCP-competitive mode option; elastic cross traffic    |
//! | [`cubic`]    | Cubic           | default TCP-competitive mode; elastic cross traffic   |
//! | [`vegas`]    | Vegas           | delay-control mode option; baseline                   |
//! | [`copa`]     | Copa            | delay-control mode option; mode-switching baseline    |
//! | [`bbr`]      | BBR             | baseline                                              |
//! | [`vivace`]   | PCC-Vivace      | baseline; rate-based (non-ACK-clocked) elastic flow   |
//! | [`compound`] | Compound TCP    | baseline                                              |
//! | [`constant`] | CBR / unlimited | inelastic cross traffic                                |
//! | `basic_delay` | BasicDelay   | the paper's Eq. 4 delay controller (used by Nimbus)   |
//!
//! `BasicDelay` needs the cross-traffic estimate, so it lives in
//! `nimbus-core`; everything else is here.

pub mod bbr;
pub mod compound;
pub mod constant;
pub mod copa;
pub mod cubic;
pub mod reno;
pub mod vegas;
pub mod vivace;

use crate::ccp::Report;
use nimbus_netsim::Time;

/// Everything a congestion controller learns from one (new, non-duplicate) ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Time the ACK arrived.
    pub now: Time,
    /// Segments newly acknowledged by this ACK.
    pub newly_acked_packets: u64,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked_bytes: u64,
    /// RTT sample carried by this ACK.
    pub rtt: Time,
    /// Smallest RTT observed so far on this connection.
    pub min_rtt: Time,
    /// Segments in flight after processing this ACK.
    pub in_flight_packets: u64,
    /// The flow's maximum segment size in bytes.
    pub mss: u32,
}

/// A congestion-control algorithm.
///
/// The controller exposes a congestion window (in packets) and, optionally, a
/// pacing rate.  Window-only schemes (Reno, Cubic, Vegas, …) return `None`
/// from [`CongestionControl::pacing_rate_bps`] and are therefore purely
/// ACK-clocked — which is what makes them *elastic* in the paper's sense.
/// Rate-based schemes (BBR, Vivace, CBR, Nimbus) return a pacing rate; their
/// window then acts only as a safety cap.
pub trait CongestionControl: Send {
    /// Process a new (non-duplicate) ACK.
    fn on_ack(&mut self, ack: &AckEvent);

    /// A loss was detected by duplicate ACKs (fast retransmit).
    fn on_loss(&mut self, now: Time, in_flight_packets: u64);

    /// A retransmission timeout fired.
    fn on_timeout(&mut self, now: Time);

    /// A periodic (10 ms) CCP-style measurement report.
    fn on_report(&mut self, _report: &Report) {}

    /// Current congestion window in packets.
    fn cwnd_packets(&self) -> f64;

    /// Current pacing rate in bits/s, or `None` for pure window/ACK clocking.
    fn pacing_rate_bps(&self, _now: Time) -> Option<f64> {
        None
    }

    /// Reinitialize the controller to operate at roughly `rate_bps` given an
    /// RTT of `rtt_s` seconds.  Nimbus uses this when switching into its
    /// TCP-competitive mode: "Nimbus sets the rate (and equivalent window) to
    /// the rate that was used 5 seconds ago" (§4.1).  The default is a no-op.
    fn reinitialize(&mut self, _rate_bps: f64, _rtt_s: f64, _mss: u32) {}

    /// Short name for labels and result tables.
    fn name(&self) -> &'static str;

    /// Downcast support: controllers that want to expose internal logs to the
    /// experiment harness (Nimbus does) return `Some(self)` here.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The congestion-control schemes available to experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// TCP NewReno.
    NewReno,
    /// TCP Cubic.
    Cubic,
    /// TCP Vegas.
    Vegas,
    /// Copa (with its own default/competitive mode switching).
    Copa,
    /// BBR (model of v1).
    Bbr,
    /// PCC-Vivace.
    Vivace,
    /// Compound TCP.
    Compound,
    /// Constant-bit-rate (paced, unlimited window) at the given rate.
    ConstantRate(f64),
    /// No congestion control at all: send whenever the application has data.
    Unlimited,
}

impl CcKind {
    /// Instantiate the scheme.  `mss` and the flow's propagation RTT estimate
    /// are needed by some controllers for initialization.
    pub fn build(self, mss: u32) -> Box<dyn CongestionControl> {
        match self {
            CcKind::NewReno => Box::new(reno::NewReno::new()),
            CcKind::Cubic => Box::new(cubic::Cubic::new()),
            CcKind::Vegas => Box::new(vegas::Vegas::new()),
            CcKind::Copa => Box::new(copa::Copa::new()),
            CcKind::Bbr => Box::new(bbr::Bbr::new(mss)),
            CcKind::Vivace => Box::new(vivace::Vivace::new(mss)),
            CcKind::Compound => Box::new(compound::Compound::new()),
            CcKind::ConstantRate(bps) => Box::new(constant::ConstantRate::new(bps)),
            CcKind::Unlimited => Box::new(constant::Unlimited::new()),
        }
    }

    /// Whether this scheme is, per Table 1 of the paper, expected to be
    /// classified as elastic by the detector when running as a backlogged flow.
    pub fn expected_elastic(self) -> bool {
        match self {
            CcKind::NewReno | CcKind::Cubic | CcKind::Vegas | CcKind::Copa | CcKind::Compound => {
                true
            }
            // BBR: "Elastic*" (only when CWND-limited); Vivace: "Inelastic*".
            CcKind::Bbr => true,
            CcKind::Vivace => false,
            CcKind::ConstantRate(_) | CcKind::Unlimited => false,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::NewReno => "newreno",
            CcKind::Cubic => "cubic",
            CcKind::Vegas => "vegas",
            CcKind::Copa => "copa",
            CcKind::Bbr => "bbr",
            CcKind::Vivace => "pcc-vivace",
            CcKind::Compound => "compound",
            CcKind::ConstantRate(_) => "cbr",
            CcKind::Unlimited => "unlimited",
        }
    }
}

/// Parse a bit-rate string: a plain number is bits/s, and a trailing
/// `k`/`M`/`G` (case-insensitive) scales by 10³/10⁶/10⁹ — `48M`, `2.5M`,
/// `1200k`, `96000000` are all valid.
pub fn parse_rate_bps(s: &str) -> Result<f64, String> {
    let s = s.trim();
    let (digits, multiplier) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1e3),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1e6),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1e9),
        _ => (s, 1.0),
    };
    let value: f64 = digits.trim().parse().map_err(|_| {
        format!("invalid rate `{s}`: expected a number with optional k/M/G suffix, e.g. `48M`")
    })?;
    if !value.is_finite() || value <= 0.0 {
        return Err(format!("invalid rate `{s}`: must be positive and finite"));
    }
    Ok(value * multiplier)
}

/// Render a bit-rate the way [`parse_rate_bps`] reads it, preferring the
/// shortest exact form (`48M`, `1200k`, `2.5M`, …).  The fallback is the
/// shortest decimal that round-trips through `f64`.
pub fn format_rate_bps(bps: f64) -> String {
    for (div, suffix) in [(1e9, "G"), (1e6, "M"), (1e3, "k")] {
        let scaled = bps / div;
        // `{}` on f64 prints the shortest decimal that round-trips, and the
        // guard re-applies the parser's own multiplication, so the printed
        // form always parses back to exactly `bps`.
        if scaled >= 1.0 && scaled * div == bps {
            return format!("{scaled}{suffix}");
        }
    }
    if bps.fract() == 0.0 && bps < 1e15 {
        format!("{}", bps as u64)
    } else {
        format!("{bps:?}")
    }
}

impl std::fmt::Display for CcKind {
    /// The canonical spec-string form, re-parseable by the `FromStr` impl:
    /// bare lowercase names plus `constant(<rate>)` for CBR senders.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcKind::Vivace => write!(f, "vivace"),
            CcKind::ConstantRate(bps) => write!(f, "constant({})", format_rate_bps(*bps)),
            other => write!(f, "{}", other.name()),
        }
    }
}

impl std::str::FromStr for CcKind {
    type Err = String;

    /// Parse a bare-CCA spec string: `cubic`, `newreno` (alias `reno`),
    /// `vegas`, `copa`, `bbr`, `vivace` (alias `pcc-vivace`), `compound`,
    /// `unlimited`, or `constant(<rate>)` (alias `cbr(<rate>)`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "cubic" => return Ok(CcKind::Cubic),
            "newreno" | "reno" => return Ok(CcKind::NewReno),
            "vegas" => return Ok(CcKind::Vegas),
            "copa" => return Ok(CcKind::Copa),
            "bbr" => return Ok(CcKind::Bbr),
            "vivace" | "pcc-vivace" => return Ok(CcKind::Vivace),
            "compound" => return Ok(CcKind::Compound),
            "unlimited" => return Ok(CcKind::Unlimited),
            _ => {}
        }
        if let Some(args) = lower
            .strip_prefix("constant(")
            .or_else(|| lower.strip_prefix("cbr("))
        {
            let rate = args.strip_suffix(')').ok_or_else(|| {
                format!("invalid scheme `{s}`: missing closing `)` after the rate")
            })?;
            return Ok(CcKind::ConstantRate(parse_rate_bps(rate)?));
        }
        Err(format!(
            "unknown congestion-control scheme `{s}` (expected cubic, newreno, vegas, copa, \
             bbr, vivace, compound, unlimited, or constant(<rate>) such as constant(24M))"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        for kind in [
            CcKind::NewReno,
            CcKind::Cubic,
            CcKind::Vegas,
            CcKind::Copa,
            CcKind::Bbr,
            CcKind::Vivace,
            CcKind::Compound,
            CcKind::ConstantRate(10e6),
            CcKind::Unlimited,
        ] {
            let cc = kind.build(1500);
            assert!(!cc.name().is_empty());
            assert!(
                cc.cwnd_packets() > 0.0,
                "{} must start with a window",
                cc.name()
            );
        }
    }

    #[test]
    fn rates_parse_and_format_exactly() {
        assert_eq!(parse_rate_bps("48M").unwrap(), 48e6);
        assert_eq!(parse_rate_bps("1200k").unwrap(), 1.2e6);
        assert_eq!(parse_rate_bps("2.5M").unwrap(), 2.5e6);
        assert_eq!(parse_rate_bps("1G").unwrap(), 1e9);
        assert_eq!(parse_rate_bps(" 96000000 ").unwrap(), 96e6);
        assert!(parse_rate_bps("fast").is_err());
        assert!(parse_rate_bps("-3M").is_err());
        assert!(parse_rate_bps("").is_err());

        assert_eq!(format_rate_bps(48e6), "48M");
        assert_eq!(format_rate_bps(2.5e6), "2.5M");
        assert_eq!(format_rate_bps(1e9), "1G");
        assert_eq!(format_rate_bps(999.0), "999");
        // Round-trip exactness for awkward values.
        for bps in [4e5, 1.23e6, 7.0, 123456789.0, 2.5e3, 48e6 / 7.0] {
            let text = format_rate_bps(bps);
            assert_eq!(parse_rate_bps(&text).unwrap(), bps, "via `{text}`");
        }
    }

    #[test]
    fn kind_display_round_trips_through_from_str() {
        for kind in [
            CcKind::NewReno,
            CcKind::Cubic,
            CcKind::Vegas,
            CcKind::Copa,
            CcKind::Bbr,
            CcKind::Vivace,
            CcKind::Compound,
            CcKind::ConstantRate(2.5e6),
            CcKind::Unlimited,
        ] {
            let text = kind.to_string();
            assert_eq!(text.parse::<CcKind>().unwrap(), kind, "via `{text}`");
        }
        assert_eq!("reno".parse::<CcKind>().unwrap(), CcKind::NewReno);
        assert_eq!("pcc-vivace".parse::<CcKind>().unwrap(), CcKind::Vivace);
        assert_eq!(
            "cbr(24M)".parse::<CcKind>().unwrap(),
            CcKind::ConstantRate(24e6)
        );
        assert!("quic".parse::<CcKind>().is_err());
    }

    #[test]
    fn table1_expectations() {
        // Table 1 of the paper.
        assert!(CcKind::Cubic.expected_elastic());
        assert!(CcKind::NewReno.expected_elastic());
        assert!(CcKind::Copa.expected_elastic());
        assert!(CcKind::Vegas.expected_elastic());
        assert!(!CcKind::Vivace.expected_elastic());
        assert!(!CcKind::ConstantRate(1e6).expected_elastic());
    }
}
