//! Application (traffic source) models.
//!
//! A [`Source`] answers one question for the sender machinery: *how many
//! bytes has the application produced up to time `t`?*  Whether a flow is
//! elastic or inelastic begins here:
//!
//! * a [`BackloggedSource`] always has data — paired with a window-based
//!   congestion controller the flow is elastic (ACK-clocked);
//! * a [`FixedSizeSource`] produces a finite transfer (the CAIDA-style
//!   cross-flows of §8.1);
//! * a [`ScriptedSource`] produces bytes at a scripted, time-varying rate —
//!   the application-limited / constant-bit-rate cross traffic of Figs. 1
//!   and 8 (paired with an unconstrained controller this is inelastic);
//! * a [`PoissonSource`] produces packets with exponential inter-arrivals —
//!   the "Poisson packet arrivals at the specified mean rate" inelastic
//!   traffic of §5.

use nimbus_netsim::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An application data source.
pub trait Source: Send {
    /// The flow this source feeds started at `now`.  Time-accruing sources
    /// (scripted rates, Poisson arrivals) discard anything they would have
    /// produced *before* the start: a cross flow configured to arrive at
    /// t = 90 s offers its rate from 90 s on, it does not dump 90 seconds of
    /// backlog into the network in one burst.  Sources whose data exists all
    /// at once (backlogged, fixed-size transfers) ignore this.
    fn on_flow_start(&mut self, now: Time) {
        let _ = now;
    }

    /// Cumulative number of bytes the application has made available for
    /// transmission up to (and including) time `now`.
    fn bytes_available(&mut self, now: Time) -> u64;

    /// If the source is currently idle but will produce more data later,
    /// returns the earliest time more data appears. `None` when the sender
    /// need not set a timer (either data is available now or the source is done).
    fn next_data_time(&self, now: Time) -> Option<Time>;

    /// True when the application will never produce more data than it already has.
    fn done_writing(&self) -> bool;

    /// A short label for diagnostics.
    fn label(&self) -> &'static str {
        "source"
    }
}

/// An infinite, always-ready source (a bulk transfer that never ends).
#[derive(Debug, Clone, Default)]
pub struct BackloggedSource;

impl Source for BackloggedSource {
    fn bytes_available(&mut self, _now: Time) -> u64 {
        u64::MAX / 2
    }
    fn next_data_time(&self, _now: Time) -> Option<Time> {
        None
    }
    fn done_writing(&self) -> bool {
        false
    }
    fn label(&self) -> &'static str {
        "backlogged"
    }
}

/// A finite transfer of `size_bytes`, all available immediately.
#[derive(Debug, Clone)]
pub struct FixedSizeSource {
    size_bytes: u64,
}

impl FixedSizeSource {
    /// A transfer of exactly `size_bytes`.
    pub fn new(size_bytes: u64) -> Self {
        FixedSizeSource { size_bytes }
    }
}

impl Source for FixedSizeSource {
    fn bytes_available(&mut self, _now: Time) -> u64 {
        self.size_bytes
    }
    fn next_data_time(&self, _now: Time) -> Option<Time> {
        None
    }
    fn done_writing(&self) -> bool {
        true
    }
    fn label(&self) -> &'static str {
        "fixed-size"
    }
}

/// A piecewise-constant-rate source: the application writes at `rate_bps`
/// according to a schedule of `(start_time, rate_bps)` segments.
///
/// Used for constant-bit-rate cross traffic, the scripted phases of Fig. 8
/// ("xM denotes x Mbit/s of inelastic cross-traffic") and as the base of the
/// DASH video model in `nimbus-traffic`.
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    /// (segment start, rate in bits/s), sorted by start time.
    schedule: Vec<(Time, f64)>,
    /// Optional hard end: no bytes produced after this time.
    end: Option<Time>,
    /// Bytes the schedule had accrued when the flow started; production
    /// before the flow exists is discarded (see [`Source::on_flow_start`]).
    base_bytes: u64,
}

impl ScriptedSource {
    /// Constant rate forever.
    pub fn constant(rate_bps: f64) -> Self {
        ScriptedSource {
            schedule: vec![(Time::ZERO, rate_bps)],
            end: None,
            base_bytes: 0,
        }
    }

    /// A schedule of `(start, rate_bps)` segments (must be sorted by start).
    pub fn scheduled(schedule: Vec<(Time, f64)>) -> Self {
        assert!(!schedule.is_empty(), "schedule must not be empty");
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "schedule must be sorted by start time"
        );
        ScriptedSource {
            schedule,
            end: None,
            base_bytes: 0,
        }
    }

    /// Stop producing data at `end`.
    pub fn until(mut self, end: Time) -> Self {
        self.end = Some(end);
        self
    }

    /// Integral of the rate schedule from 0 to `t`, in bytes.
    fn cumulative_bytes(&self, t: Time) -> u64 {
        let t = match self.end {
            Some(e) => t.min(e),
            None => t,
        };
        let mut total_bits = 0.0;
        for (i, &(start, rate)) in self.schedule.iter().enumerate() {
            if start >= t {
                break;
            }
            let seg_end = self
                .schedule
                .get(i + 1)
                .map(|&(s, _)| s)
                .unwrap_or(Time::MAX)
                .min(t);
            let dur = seg_end.saturating_sub(start).as_secs_f64();
            total_bits += rate * dur;
        }
        (total_bits / 8.0) as u64
    }
}

impl Source for ScriptedSource {
    fn on_flow_start(&mut self, now: Time) {
        self.base_bytes = self.cumulative_bytes(now);
    }
    fn bytes_available(&mut self, now: Time) -> u64 {
        self.cumulative_bytes(now).saturating_sub(self.base_bytes)
    }
    fn next_data_time(&self, now: Time) -> Option<Time> {
        if self.done_writing() && Some(now) >= self.end {
            return None;
        }
        // Data accrues continuously; wake the sender one packet-time-ish later.
        Some(now + Time::from_millis(1))
    }
    fn done_writing(&self) -> bool {
        false
    }
    fn label(&self) -> &'static str {
        "scripted"
    }
}

/// Poisson packet arrivals: each arrival makes one MSS of data available.
///
/// This is the paper's inelastic cross traffic for most robustness
/// experiments ("We generate inelastic cross-traffic using Poisson packet
/// arrivals at the specified mean rate", §5).
#[derive(Debug)]
pub struct PoissonSource {
    mean_rate_bps: f64,
    packet_bytes: u64,
    rng: StdRng,
    /// Arrival times generated so far (cumulative bytes counter + next arrival).
    generated_bytes: u64,
    next_arrival: Time,
    end: Option<Time>,
}

impl PoissonSource {
    /// Poisson arrivals of `packet_bytes`-sized writes at `mean_rate_bps`.
    pub fn new(mean_rate_bps: f64, packet_bytes: u64, seed: u64) -> Self {
        assert!(mean_rate_bps > 0.0);
        PoissonSource {
            mean_rate_bps,
            packet_bytes,
            rng: StdRng::seed_from_u64(seed ^ 0x5851f42d4c957f2d),
            generated_bytes: 0,
            next_arrival: Time::ZERO,
            end: None,
        }
    }

    /// Stop producing data at `end`.
    pub fn until(mut self, end: Time) -> Self {
        self.end = Some(end);
        self
    }

    fn advance_to(&mut self, now: Time) {
        let mean_gap_s = self.packet_bytes as f64 * 8.0 / self.mean_rate_bps;
        while self.next_arrival <= now {
            if let Some(end) = self.end {
                if self.next_arrival > end {
                    break;
                }
            }
            self.generated_bytes += self.packet_bytes;
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = self.rng.gen::<f64>().max(1e-12);
            let gap = -mean_gap_s * u.ln();
            self.next_arrival += Time::from_secs_f64(gap.max(1e-9));
        }
    }
}

impl Source for PoissonSource {
    fn on_flow_start(&mut self, now: Time) {
        // Fast-forward the arrival process and drop everything generated
        // before the flow existed.
        self.advance_to(now);
        self.generated_bytes = 0;
    }
    fn bytes_available(&mut self, now: Time) -> u64 {
        self.advance_to(now);
        self.generated_bytes
    }
    fn next_data_time(&self, now: Time) -> Option<Time> {
        if let Some(end) = self.end {
            if now >= end {
                return None;
            }
        }
        Some(self.next_arrival.max(now + Time::from_micros(100)))
    }
    fn done_writing(&self) -> bool {
        false
    }
    fn label(&self) -> &'static str {
        "poisson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlogged_always_has_data() {
        let mut s = BackloggedSource;
        assert!(s.bytes_available(Time::ZERO) > 1 << 40);
        assert!(!s.done_writing());
        assert_eq!(s.next_data_time(Time::ZERO), None);
    }

    #[test]
    fn fixed_size_is_all_available_and_done() {
        let mut s = FixedSizeSource::new(150_000);
        assert_eq!(s.bytes_available(Time::ZERO), 150_000);
        assert!(s.done_writing());
    }

    #[test]
    fn scripted_constant_rate_integrates_linearly() {
        let mut s = ScriptedSource::constant(24e6); // 3 MB/s
        assert_eq!(s.bytes_available(Time::ZERO), 0);
        let b1 = s.bytes_available(Time::from_secs_f64(1.0));
        assert!((b1 as f64 - 3e6).abs() < 1e3);
        let b10 = s.bytes_available(Time::from_secs_f64(10.0));
        assert!((b10 as f64 - 30e6).abs() < 1e4);
    }

    #[test]
    fn scripted_schedule_switches_rates() {
        // 8 Mbit/s for 10 s, then 0 for 10 s, then 16 Mbit/s.
        let mut s = ScriptedSource::scheduled(vec![
            (Time::ZERO, 8e6),
            (Time::from_secs_f64(10.0), 0.0),
            (Time::from_secs_f64(20.0), 16e6),
        ]);
        let at_10 = s.bytes_available(Time::from_secs_f64(10.0));
        assert!((at_10 as f64 - 10e6).abs() < 1e4); // 8 Mbit/s * 10 s = 10 MB
        let at_20 = s.bytes_available(Time::from_secs_f64(20.0));
        assert_eq!(at_20, at_10); // idle period adds nothing
        let at_25 = s.bytes_available(Time::from_secs_f64(25.0));
        assert!((at_25 as f64 - at_10 as f64 - 10e6).abs() < 1e4);
    }

    #[test]
    fn scripted_until_caps_production() {
        let mut s = ScriptedSource::constant(8e6).until(Time::from_secs_f64(5.0));
        let at_5 = s.bytes_available(Time::from_secs_f64(5.0));
        let at_50 = s.bytes_available(Time::from_secs_f64(50.0));
        assert_eq!(at_5, at_50);
    }

    #[test]
    #[should_panic]
    fn scripted_unsorted_schedule_panics() {
        let _ =
            ScriptedSource::scheduled(vec![(Time::from_secs_f64(10.0), 1e6), (Time::ZERO, 2e6)]);
    }

    #[test]
    fn poisson_long_run_rate_matches_mean() {
        let mut s = PoissonSource::new(24e6, 1500, 7);
        let bytes = s.bytes_available(Time::from_secs_f64(100.0));
        let rate = bytes as f64 * 8.0 / 100.0;
        assert!((rate - 24e6).abs() < 1.5e6, "rate {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_bursty() {
        let gen = |seed| {
            let mut s = PoissonSource::new(10e6, 1500, seed);
            (0..100)
                .map(|i| s.bytes_available(Time::from_millis(i * 10)))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
        // Burstiness: increments over fixed intervals should vary.
        let series = gen(3);
        let increments: Vec<u64> = series.windows(2).map(|w| w[1] - w[0]).collect();
        let distinct: std::collections::HashSet<_> = increments.iter().collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn poisson_until_stops_production() {
        let mut s = PoissonSource::new(24e6, 1500, 9).until(Time::from_secs_f64(1.0));
        let b1 = s.bytes_available(Time::from_secs_f64(1.5));
        let b2 = s.bytes_available(Time::from_secs_f64(100.0));
        assert_eq!(b1, b2);
        assert_eq!(s.next_data_time(Time::from_secs_f64(2.0)), None);
    }
}
