//! # nimbus-transport
//!
//! The transport substrate of the Nimbus reproduction: everything between the
//! raw packet simulator ([`nimbus_netsim`]) and the congestion-control brains.
//!
//! * [`sender`] — the sender machinery implementing
//!   [`nimbus_netsim::FlowEndpoint`]: sequence tracking, windowing, pacing,
//!   duplicate-ACK and timeout loss recovery, RTT estimation.  It is generic
//!   over a [`cc::CongestionControl`] implementation, mirroring how the
//!   paper's system layers congestion-control "programs" on top of a CCP
//!   datapath.
//! * [`ccp`] — the CCP-style measurement report (§4.2): aggregated send rate,
//!   receive rate, RTT and loss counts delivered to the controller every
//!   10 ms, exactly the quantities Nimbus's estimator consumes.
//! * [`source`] — application models: backlogged, fixed-size, scripted-rate
//!   and Poisson sources deciding *when data exists to send* (elastic vs.
//!   application-limited behaviour starts here).
//! * [`cc`] — from-scratch implementations of every congestion-control
//!   algorithm the paper evaluates or uses as a component: NewReno, Cubic,
//!   Vegas, Copa (default + competitive modes), BBR, PCC-Vivace, Compound,
//!   plus constant-rate (CBR) and Poisson inelastic senders.
//! * [`rtt`] — SRTT/RTTVAR/RTO estimation (RFC 6298) and min-RTT tracking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cc;
pub mod ccp;
pub mod rtt;
pub mod sender;
pub mod source;

pub use cc::{format_rate_bps, parse_rate_bps, CcKind, CongestionControl};
pub use ccp::{Report, ReportAggregator};
pub use rtt::RttEstimator;
pub use sender::{Sender, SenderConfig};
pub use source::{BackloggedSource, FixedSizeSource, PoissonSource, ScriptedSource, Source};
