//! # nimbus-transport
//!
//! The transport substrate of the Nimbus reproduction: the host-side glue
//! between the raw packet simulator ([`nimbus_netsim`]) and the
//! simulator-free congestion-control algorithms in `nimbus-core`.
//!
//! * [`sender`] — the sender machinery implementing
//!   [`nimbus_netsim::FlowEndpoint`]: sequence tracking, windowing, pacing,
//!   duplicate-ACK and timeout loss recovery, RTT estimation.  It is generic
//!   over a [`cc::CongestionControl`] implementation, mirroring how the
//!   paper's system layers congestion-control "programs" on top of a CCP
//!   datapath.
//! * [`source`] — application models: backlogged, fixed-size, scripted-rate
//!   and Poisson sources deciding *when data exists to send* (elastic vs.
//!   application-limited behaviour starts here).
//!
//! The congestion-control algorithms themselves ([`cc`]), the CCP-style
//! measurement reports ([`ccp`], §4.2) and the RFC 6298 RTT estimator
//! ([`rtt`]) live in the host-independent `nimbus-core` crate; this crate
//! re-exports them under their historical paths so existing code keeps
//! compiling unchanged.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use nimbus_core::cc;
pub use nimbus_core::ccp;
pub use nimbus_core::rtt;
pub mod sender;
pub mod source;

pub use cc::{format_rate_bps, parse_rate_bps, CcKind, CongestionControl, PathInfo};
pub use ccp::{Report, ReportAggregator};
pub use rtt::RttEstimator;
pub use sender::{Sender, SenderConfig};
pub use source::{BackloggedSource, FixedSizeSource, PoissonSource, ScriptedSource, Source};
