//! The sender machinery: a [`FlowEndpoint`] that drives a congestion
//! controller over an application [`Source`].
//!
//! This is the "datapath" half of the CCP split the paper's implementation
//! uses (§4.2): sequence tracking, windowing, pacing, duplicate-ACK and
//! timeout-based loss recovery, RTT estimation and the 10 ms measurement
//! report.  The congestion-control "program" on top only ever sees
//! [`AckEvent`]s, loss notifications and
//! [`Report`](crate::ccp::Report)s, and only ever answers with a window and
//! an optional pacing rate.

use crate::cc::{AckEvent, CongestionControl, CongestionEvent, LossEvent};
use crate::ccp::ReportAggregator;
use crate::rtt::RttEstimator;
use crate::source::Source;
use nimbus_netsim::{AckInfo, FlowEndpoint, SendAction, Time};
use std::collections::{BTreeSet, VecDeque};

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Label used in logs and results.
    pub label: String,
    /// Initial RTO before any RTT samples exist.
    pub initial_rto: Time,
    /// Allow pacing catch-up after idle periods up to this long (to avoid
    /// giant bursts after an application-limited pause).
    pub max_pacing_debt: Time,
    /// Receiver advertised window, in packets: `next_seq` never runs more
    /// than this far ahead of `cum_acked`.  Without it, a flow whose front
    /// hole keeps being re-lost (persistently full queue) would keep sending
    /// new data forever, growing the SACK scoreboard without bound.  The
    /// default (4096 packets ≈ 6 MB) is far above any bandwidth-delay
    /// product simulated here.
    pub max_window_packets: u64,
    /// Hard stop: the flow terminates (like killing the sending process) at
    /// this time even if the application still has data queued.  Used to model
    /// "y long-running cross-flows during this phase" workloads.
    pub stop_at: Option<Time>,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            mss: 1500,
            label: "sender".to_string(),
            initial_rto: Time::from_millis(1000),
            max_pacing_debt: Time::from_millis(10),
            max_window_packets: 4096,
            stop_at: None,
        }
    }
}

impl SenderConfig {
    /// A default configuration with the given label.
    pub fn labelled(label: &str) -> Self {
        SenderConfig {
            label: label.to_string(),
            ..Default::default()
        }
    }

    /// Terminate the flow at `stop` even if data remains unsent.
    pub fn stopping_at(mut self, stop: Time) -> Self {
        self.stop_at = Some(stop);
        self
    }
}

/// The generic sender: reliability + pacing + windowing around a
/// [`CongestionControl`] implementation and a [`Source`].
pub struct Sender {
    cfg: SenderConfig,
    cc: Box<dyn CongestionControl>,
    source: Box<dyn Source>,

    /// Next new (never sent) sequence number.
    next_seq: u64,
    /// Highest cumulative ACK received (all seq < cum_acked delivered).
    cum_acked: u64,
    /// Duplicate-ACK counter.
    dup_acks: u32,
    /// Segments above `cum_acked` known (from the ACKs' triggering sequence
    /// numbers) to have reached the receiver — a SACK scoreboard.
    sacked: BTreeSet<u64>,
    /// Segments scheduled for retransmission.
    rtx_queue: VecDeque<u64>,
    /// Segments already queued or re-sent for retransmission in the current
    /// recovery episode (avoid duplicates).
    rtx_pending: BTreeSet<u64>,
    /// Fast-recovery state: recovery ends when cum_acked passes this point.
    recovery_point: Option<u64>,
    /// Loss-inference resume point: every hole below this sequence has
    /// already been queued for retransmission (it sits in `rtx_pending` for
    /// the rest of the episode) or was SACKed, so [`Sender::infer_losses`]
    /// can resume its scoreboard walk here instead of rescanning from
    /// `cum_acked` on every ACK.  Reset whenever `rtx_pending` is cleared
    /// (a new recovery episode or a timeout).
    scan_frontier: u64,
    /// Scoreboard positions examined by loss inference (scan-cost statistic;
    /// see [`Sender::scoreboard_scan_steps`]).
    scan_steps: u64,
    /// RTO state.
    rtt: RttEstimator,
    rto_deadline: Time,
    rto_backoff: u32,
    /// Pacing state.
    next_send_time: Time,
    /// Measurement aggregation for CCP-style reports.
    reports: ReportAggregator,
    /// Statistics.
    packets_sent: u64,
    packets_retransmitted: u64,
    timeouts: u64,
    fast_retransmits: u64,
    ce_echoes: u64,
}

impl Sender {
    /// Create a sender from a configuration, a congestion controller and a source.
    pub fn new(cfg: SenderConfig, cc: Box<dyn CongestionControl>, source: Box<dyn Source>) -> Self {
        let initial_rto = cfg.initial_rto;
        Sender {
            cfg,
            cc,
            source,
            next_seq: 0,
            cum_acked: 0,
            dup_acks: 0,
            sacked: BTreeSet::new(),
            rtx_queue: VecDeque::new(),
            rtx_pending: BTreeSet::new(),
            recovery_point: None,
            scan_frontier: 0,
            scan_steps: 0,
            rtt: RttEstimator::default(),
            rto_deadline: Time::MAX,
            rto_backoff: 0,
            next_send_time: Time::ZERO,
            reports: ReportAggregator::new(Time::from_millis(100)),
            packets_sent: 0,
            packets_retransmitted: 0,
            timeouts: 0,
            fast_retransmits: 0,
            ce_echoes: 0,
        }
        .with_initial_rto(initial_rto)
    }

    fn with_initial_rto(mut self, _rto: Time) -> Self {
        self.rto_deadline = Time::MAX;
        self
    }

    /// The congestion controller, for post-run inspection.
    pub fn congestion_control(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Mutable access to the congestion controller.
    pub fn congestion_control_mut(&mut self) -> &mut dyn CongestionControl {
        self.cc.as_mut()
    }

    /// Segments currently believed to be in the network ("pipe", RFC 6675):
    /// sent, not cumulatively acknowledged, not selectively acknowledged and
    /// not deemed lost (queued for retransmission but not yet re-sent).
    pub fn in_flight_packets(&self) -> u64 {
        self.next_seq
            .saturating_sub(self.cum_acked)
            .saturating_sub(self.sacked.len() as u64)
            .saturating_sub(self.rtx_queue.len() as u64)
    }

    /// Total data packets transmitted (including retransmissions).
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Total retransmissions.
    pub fn packets_retransmitted(&self) -> u64 {
        self.packets_retransmitted
    }

    /// Number of retransmission timeouts taken.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Number of fast retransmits triggered by triple duplicate ACKs.
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// Number of ACKs received carrying a CE echo (0 on non-ECN paths).
    pub fn ce_echoes(&self) -> u64 {
        self.ce_echoes
    }

    /// Scoreboard positions (SACK entries and hole candidates) examined by
    /// SACK loss inference over the flow's lifetime.  This is the sender's
    /// dominant per-ACK cost under sustained loss; it must stay proportional
    /// to the number of ACKs plus the number of distinct holes, *not*
    /// ACKs × scoreboard size.  The `step50-vs-cbr50` sweep cell regressed to
    /// the latter (a 5× per-event slowdown) when every ACK of a permanently
    /// recovering flow re-walked a ~2000-entry scoreboard; the regression
    /// test in `tests/` pins this counter so the pathology cannot return.
    pub fn scoreboard_scan_steps(&self) -> u64 {
        self.scan_steps
    }

    /// The RTT estimator (for inspection).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Total segments the application has made available by `now`.
    fn available_segments(&mut self, now: Time) -> u64 {
        let bytes = self.source.bytes_available(now);
        let mss = self.cfg.mss as u64;
        if self.source.done_writing() {
            bytes.div_ceil(mss)
        } else {
            bytes / mss
        }
    }

    /// The size in bytes of segment `seq`.
    fn segment_size(&mut self, seq: u64, now: Time) -> u32 {
        let mss = self.cfg.mss as u64;
        let bytes = self.source.bytes_available(now);
        let start = seq * mss;
        if bytes <= start {
            self.cfg.mss
        } else {
            ((bytes - start).min(mss)) as u32
        }
    }

    fn arm_rto(&mut self, now: Time) {
        let rto = self.rtt.rto().mul_f64(2f64.powi(self.rto_backoff as i32));
        self.rto_deadline = now + rto.min(Time::from_secs_f64(60.0));
    }

    /// Arm the RTO only if it is not already running.  Transmissions use this
    /// rather than `arm_rto`: re-arming on every packet would keep pushing the
    /// deadline forward while ACK-clocked transmissions continue, so the loss
    /// of a retransmission (whose hole stalls `cum_acked` but not the ACK
    /// stream) would never time out and recovery would wedge forever.
    fn arm_rto_if_idle(&mut self, now: Time) {
        if self.rto_deadline == Time::MAX {
            self.arm_rto(now);
        }
    }

    fn handle_timeout(&mut self, now: Time) {
        self.timeouts += 1;
        self.rto_backoff = (self.rto_backoff + 1).min(6);
        // A timeout restarts loss recovery from scratch: anything previously
        // queued or retransmitted may itself have been lost, so forget that
        // bookkeeping and go back to the first unacknowledged segment.
        self.rtx_queue.clear();
        self.rtx_pending.clear();
        self.scan_frontier = self.cum_acked;
        if self.next_seq > self.cum_acked {
            self.queue_retransmit(self.cum_acked);
        }
        if self.rto_backoff >= 2 {
            // Second consecutive timeout with zero progress: the first RTO's
            // retransmission never got through — the signature of a whole
            // flight dropped at once (e.g. a deep rate fade shrinking the
            // queue) with no surviving SACKs to drain `in_flight_packets()`.
            // The phantom flight then pins `in_flight` above the post-timeout
            // cwnd, the `in_flight < cwnd` send gate never opens, and backoff
            // walks to the 60 s cap while the flow sits dead.  Deem the
            // entire unsacked flight lost (RFC 5681: after an RTO the pipe is
            // empty) by queueing every hole — queued segments don't count as
            // in flight, so the gate opens and recovery proceeds ACK-clocked,
            // skipping anything SACKed in the meantime.
            for seq in self.cum_acked..self.next_seq {
                self.queue_retransmit(seq);
            }
        }
        self.dup_acks = 0;
        self.recovery_point = None;
        self.cc.on_congestion_event(&CongestionEvent::Rto { now });
        self.reports.on_loss(1);
        self.arm_rto(now);
    }

    fn queue_retransmit(&mut self, seq: u64) {
        if seq >= self.cum_acked && !self.sacked.contains(&seq) && self.rtx_pending.insert(seq) {
            self.rtx_queue.push_back(seq);
        }
    }

    /// SACK-style loss inference: while in recovery, any unsacked segment
    /// with at least `dupthresh` sacked segments above it is considered lost
    /// and queued for retransmission (once per recovery episode).
    ///
    /// The walk is incremental.  A hole qualifies exactly when it lies below
    /// the DUPTHRESH-th-highest sacked segment, and within one recovery
    /// episode that bound only moves up (the scoreboard grows at the top;
    /// cumulative-ACK progress removes entries only from the bottom).  Every
    /// hole queued here stays in `rtx_pending` for the rest of the episode,
    /// so once a region of the scoreboard has been scanned its verdict never
    /// changes and `scan_frontier` lets the next ACK resume where this one
    /// stopped.  Without the frontier this rescanned the whole scoreboard on
    /// every ACK — O(ACKs × window) — which is precisely what ground the
    /// `step50-vs-cbr50` sweep cells to 5× per-event cost: after the rate
    /// step, the CBR cross flow saturates the halved link, never exits
    /// recovery, and holds a ~2000-entry scoreboard for the rest of the run.
    fn infer_losses(&mut self) {
        if self.recovery_point.is_none() {
            return;
        }
        const DUPTHRESH: usize = 3;
        if self.sacked.len() < DUPTHRESH {
            return;
        }
        // Holes strictly below `bound` have >= DUPTHRESH sacked segments
        // above them — the standard SACK dup-threshold rule.
        let bound = *self
            .sacked
            .iter()
            .nth_back(DUPTHRESH - 1)
            .expect("len checked above");
        let mut expected = self.scan_frontier.max(self.cum_acked);
        if expected >= bound {
            return;
        }
        const MAX_HOLES: usize = 2048;
        let mut holes: Vec<u64> = Vec::new();
        'walk: for &s in self.sacked.range(expected..=bound) {
            self.scan_steps += 1;
            let mut seq = expected;
            while seq < s {
                if holes.len() >= MAX_HOLES {
                    // Budget spent: remember where we stopped and resume on
                    // the next ACK (everything queued below is in
                    // `rtx_pending`, so the invariant holds up to `seq`).
                    expected = seq;
                    break 'walk;
                }
                self.scan_steps += 1;
                if !self.rtx_pending.contains(&seq) {
                    holes.push(seq);
                }
                seq += 1;
            }
            expected = s + 1;
        }
        self.scan_frontier = expected;
        for h in holes {
            self.queue_retransmit(h);
        }
    }

    /// The flow has delivered everything it ever will.
    fn is_complete(&mut self, now: Time) -> bool {
        if !self.source.done_writing() {
            return false;
        }
        let total = self.available_segments(now);
        self.cum_acked >= total
    }
}

impl FlowEndpoint for Sender {
    fn on_start(&mut self, now: Time) {
        self.next_send_time = now;
        self.source.on_flow_start(now);
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let now = ack.now;
        // Feed the measurement machinery with every ACK.
        self.rtt.on_sample(ack.rtt_sample, now);
        // Rates are measured over the packets that physically arrived (the
        // ACK trigger), not over in-order delivery progress: a hole-filling
        // retransmission makes `newly_delivered_bytes` jump by the whole
        // reordering buffer at one instant, which used to spike the measured
        // receive rate to several times the link rate and poison the learned
        // µ's max filter for a full window.
        self.reports.on_ack(
            ack.data_sent_at,
            now,
            ack.triggering_bytes as u64,
            ack.rtt_sample,
        );
        // The receiver echoes CE marks on the very next ACK; surface each
        // echo to the controller before the ACK's own bookkeeping so a
        // once-per-window reaction gate sees the pre-ACK window.
        if ack.ce {
            self.ce_echoes += 1;
            self.reports.on_mark(ack.triggering_bytes as u64);
            self.cc.on_congestion_event(&CongestionEvent::EcnCe {
                now,
                marked_bytes: ack.triggering_bytes as u64,
            });
        }
        if let Some(min_rtt) = self.rtt.global_min_rtt() {
            // S/R are measured over one RTT of packets (§3.4).  The *base*
            // (minimum) RTT is used, not the smoothed RTT: under bufferbloat
            // the smoothed RTT approaches the 5 Hz pulse period and a window
            // that long averages the pulse — and the cross traffic's reaction
            // to it — out of the measured rates entirely.
            self.reports.set_measurement_window(min_rtt);
        }

        // Update the SACK scoreboard with the segment that triggered this ACK.
        if ack.triggering_seq >= ack.cum_ack {
            self.sacked.insert(ack.triggering_seq);
        }

        if ack.cum_ack > self.cum_acked {
            // Progress.
            let newly_acked = ack.cum_ack - self.cum_acked;
            self.cum_acked = ack.cum_ack;
            self.dup_acks = 0;
            self.rto_backoff = 0;
            // Anything below the new cumulative ACK is no longer interesting.
            self.sacked = self.sacked.split_off(&self.cum_acked);
            self.rtx_pending = self.rtx_pending.split_off(&self.cum_acked);
            self.rtx_queue.retain(|&s| s >= self.cum_acked);

            if let Some(rp) = self.recovery_point {
                if self.cum_acked >= rp {
                    // Recovery complete.
                    self.recovery_point = None;
                } else {
                    // Still recovering: keep filling holes.
                    self.infer_losses();
                    self.queue_retransmit(self.cum_acked);
                }
            }

            let event = AckEvent {
                now,
                newly_acked_packets: newly_acked,
                newly_acked_bytes: ack
                    .newly_delivered_bytes
                    .max(newly_acked * self.cfg.mss as u64),
                rtt: ack.rtt_sample,
                min_rtt: self.rtt.global_min_rtt().unwrap_or(ack.rtt_sample),
                in_flight_packets: self.in_flight_packets(),
                mss: self.cfg.mss,
            };
            self.cc.on_packet_acked(&event);
            if self.next_seq > self.cum_acked {
                self.arm_rto(now);
            } else {
                self.rto_deadline = Time::MAX;
            }
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks >= 3 && self.recovery_point.is_none() && self.next_seq > self.cum_acked
            {
                self.fast_retransmits += 1;
                self.recovery_point = Some(self.next_seq);
                self.rtx_pending.clear();
                self.scan_frontier = self.cum_acked;
                self.queue_retransmit(self.cum_acked);
                self.infer_losses();
                self.cc.on_packets_lost(&LossEvent {
                    now,
                    lost_packets: 1,
                    in_flight_packets: self.in_flight_packets(),
                });
                self.reports.on_loss(1);
            } else if self.recovery_point.is_some() {
                // Keep discovering holes as more SACK information arrives.
                self.infer_losses();
            }
        }
    }

    fn on_tick(&mut self, now: Time) {
        let report = self.reports.report(now);
        self.cc.on_report(&report);
    }

    fn poll_send(&mut self, now: Time) -> SendAction {
        // Hard stop: the "application" went away.
        if let Some(stop) = self.cfg.stop_at {
            if now >= stop {
                return SendAction::Finished;
            }
        }
        // 0. Retransmission timeout?
        if self.next_seq > self.cum_acked && now >= self.rto_deadline {
            self.handle_timeout(now);
        }

        // 1. Completed?
        if self.rtx_queue.is_empty() && self.is_complete(now) {
            return SendAction::Finished;
        }

        let cwnd = self.cc.cwnd_packets();

        // 2. Pending retransmissions go out first, but respect the congestion
        // window: `in_flight_packets()` (the RFC 6675 "pipe") already excludes
        // segments deemed lost, so each departing ACK opens room for roughly
        // one retransmission — ACK-clocked recovery rather than a line-rate
        // burst of every inferred hole at once.
        while (self.in_flight_packets() as f64) < cwnd {
            let Some(&seq) = self.rtx_queue.front() else {
                break;
            };
            self.rtx_queue.pop_front();
            if seq < self.cum_acked || self.sacked.contains(&seq) {
                self.rtx_pending.remove(&seq);
                continue; // already received meanwhile
            }
            let bytes = self.segment_size(seq, now);
            self.packets_sent += 1;
            self.packets_retransmitted += 1;
            // The RTO conceptually times the oldest outstanding segment, so a
            // retransmission covering the front hole restarts it (the
            // cumulative ACK stalls for a full RTT while that copy is in
            // flight, and without the restart the stall races the RTO and
            // fires spurious timeouts under bufferbloat).  Retransmissions of
            // higher holes and new data must NOT restart it: under sustained
            // overload they flow continuously, and pushing the deadline on
            // every one would let a lost front-hole retransmission wedge
            // recovery forever with the SACK scoreboard growing per ACK.
            if seq == self.cum_acked {
                self.arm_rto(now);
            } else {
                self.arm_rto_if_idle(now);
            }
            return SendAction::Transmit {
                seq,
                bytes,
                retransmit: true,
            };
        }

        // 3. New data, gated by the window, the application and pacing.
        let available = self.available_segments(now);
        let window_ok = (self.in_flight_packets() as f64) < cwnd
            && self.rtx_queue.is_empty()
            && self.next_seq < self.cum_acked + self.cfg.max_window_packets;
        let app_ok = self.next_seq < available;

        if window_ok && app_ok {
            match self.cc.pacing_rate_bps(now) {
                None => {
                    // Pure window/ACK clocking: send immediately.
                    let seq = self.next_seq;
                    let bytes = self.segment_size(seq, now);
                    self.next_seq += 1;
                    self.packets_sent += 1;
                    self.arm_rto_if_idle(now);
                    return SendAction::Transmit {
                        seq,
                        bytes,
                        retransmit: false,
                    };
                }
                Some(rate) if rate > 0.0 => {
                    // Paced: honour the inter-packet gap.
                    if self.next_send_time <= now {
                        // Cap accumulated sending "debt" so an idle period
                        // does not turn into a line-rate burst.
                        if now.saturating_sub(self.next_send_time) > self.cfg.max_pacing_debt {
                            self.next_send_time = now.saturating_sub(self.cfg.max_pacing_debt);
                        }
                        let seq = self.next_seq;
                        let bytes = self.segment_size(seq, now);
                        self.next_seq += 1;
                        self.packets_sent += 1;
                        let gap = Time::from_secs_f64(bytes as f64 * 8.0 / rate);
                        self.next_send_time += gap;
                        self.arm_rto_if_idle(now);
                        return SendAction::Transmit {
                            seq,
                            bytes,
                            retransmit: false,
                        };
                    } else {
                        return SendAction::WaitUntil(self.next_send_time.min(self.rto_deadline));
                    }
                }
                Some(_) => {
                    // Zero/negative pacing rate: effectively paused; check back shortly.
                    return SendAction::WaitUntil(
                        (now + Time::from_millis(10)).min(self.rto_deadline),
                    );
                }
            }
        }

        // 4. Blocked. Work out why and when to wake up.
        if !app_ok && !self.source.done_writing() {
            // Application-limited: wake when the source promises more data.
            let wake = self
                .source
                .next_data_time(now)
                .unwrap_or(now + Time::from_millis(10));
            return SendAction::WaitUntil(wake.min(self.rto_deadline));
        }
        if self.next_seq > self.cum_acked {
            // Window-limited (or finished writing with data still in flight):
            // wake at the RTO in case everything outstanding is lost.
            if self.rto_deadline == Time::MAX {
                self.arm_rto(now);
            }
            return SendAction::WaitUntil(self.rto_deadline);
        }
        SendAction::Idle
    }

    fn label(&self) -> &str {
        &self.cfg.label
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{CcKind, PathInfo};
    use crate::source::{BackloggedSource, FixedSizeSource, PoissonSource, ScriptedSource};
    use nimbus_netsim::{FlowConfig, Network, SimConfig};

    fn sender(kind: CcKind, source: Box<dyn Source>) -> Box<Sender> {
        Box::new(Sender::new(
            SenderConfig::labelled(kind.name()),
            kind.build(&PathInfo::new(1500)),
            source,
        ))
    }

    /// Run a single backlogged flow of the given kind over a standard link and
    /// return (mean throughput Mbit/s, mean queueing delay ms, drop count).
    fn run_single(
        kind: CcKind,
        rate_bps: f64,
        rtt_ms: u64,
        buffer_s: f64,
        duration_s: f64,
    ) -> (f64, f64, u64) {
        let mut net = Network::new(SimConfig::new(rate_bps, buffer_s, duration_s));
        let h = net.add_flow(
            FlowConfig::primary(kind.name(), Time::from_millis(rtt_ms)),
            sender(kind, Box::new(BackloggedSource)),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let tput = rec.throughput_mbps[slot].mean_in_range(duration_s * 0.25, duration_s);
        let qd = rec.queue_delay_ms[slot].mean_in_range(duration_s * 0.25, duration_s);
        (tput, qd, rec.flows[h.0].dropped_packets)
    }

    #[test]
    fn cubic_fills_a_96mbps_link_and_its_buffer() {
        let (tput, qd, drops) = run_single(CcKind::Cubic, 96e6, 50, 0.1, 40.0);
        assert!(tput > 85.0, "cubic throughput {tput}");
        // Loss-based: the buffer stays mostly full => high queueing delay and drops.
        assert!(qd > 40.0, "cubic queueing delay {qd}");
        assert!(drops > 0, "cubic should overflow the buffer");
    }

    #[test]
    fn newreno_fills_the_link() {
        let (tput, _qd, drops) = run_single(CcKind::NewReno, 48e6, 50, 0.1, 40.0);
        assert!(tput > 42.0, "reno throughput {tput}");
        assert!(drops > 0);
    }

    #[test]
    fn vegas_keeps_the_queue_short() {
        let (tput, qd, _) = run_single(CcKind::Vegas, 48e6, 50, 0.1, 40.0);
        assert!(tput > 40.0, "vegas throughput {tput}");
        assert!(qd < 15.0, "vegas queueing delay {qd}");
    }

    #[test]
    fn copa_gets_high_throughput_with_low_delay_alone() {
        let (tput, qd, _) = run_single(CcKind::Copa, 48e6, 50, 0.1, 40.0);
        assert!(tput > 38.0, "copa throughput {tput}");
        assert!(qd < 30.0, "copa queueing delay {qd}");
    }

    #[test]
    fn bbr_fills_the_link_without_collapsing() {
        let (tput, _qd, _) = run_single(CcKind::Bbr, 48e6, 50, 0.1, 40.0);
        assert!(tput > 38.0, "bbr throughput {tput}");
    }

    #[test]
    fn vivace_achieves_reasonable_throughput() {
        let (tput, _qd, _) = run_single(CcKind::Vivace, 48e6, 50, 0.1, 60.0);
        assert!(tput > 20.0, "vivace throughput {tput}");
    }

    #[test]
    fn compound_fills_the_link() {
        let (tput, _qd, _) = run_single(CcKind::Compound, 48e6, 50, 0.1, 40.0);
        assert!(tput > 40.0, "compound throughput {tput}");
    }

    #[test]
    fn cubic_beats_vegas_when_sharing_a_bottleneck() {
        // The motivating problem of the paper: a delay-controlling scheme is
        // starved by a loss-based scheme at a shared bottleneck.
        let mut net = Network::new(SimConfig::new(96e6, 0.1, 60.0));
        let hv = net.add_flow(
            FlowConfig::primary("vegas", Time::from_millis(50)),
            sender(CcKind::Vegas, Box::new(BackloggedSource)),
        );
        let hc = net.add_flow(
            FlowConfig::primary("cubic", Time::from_millis(50)),
            sender(CcKind::Cubic, Box::new(BackloggedSource)),
        );
        net.run();
        let (rec, _) = net.finish();
        let tv = rec.throughput_mbps[rec.monitored_slot(hv.0).unwrap()].mean_in_range(20.0, 60.0);
        let tc = rec.throughput_mbps[rec.monitored_slot(hc.0).unwrap()].mean_in_range(20.0, 60.0);
        assert!(tc > tv * 2.0, "cubic ({tc}) should starve vegas ({tv})");
    }

    #[test]
    fn two_cubics_share_fairly() {
        let mut net = Network::new(SimConfig::new(96e6, 0.1, 60.0));
        let h1 = net.add_flow(
            FlowConfig::primary("cubic-1", Time::from_millis(50)),
            sender(CcKind::Cubic, Box::new(BackloggedSource)),
        );
        let h2 = net.add_flow(
            FlowConfig::primary("cubic-2", Time::from_millis(50)),
            sender(CcKind::Cubic, Box::new(BackloggedSource)),
        );
        net.run();
        let (rec, _) = net.finish();
        let t1 = rec.throughput_mbps[rec.monitored_slot(h1.0).unwrap()].mean_in_range(20.0, 60.0);
        let t2 = rec.throughput_mbps[rec.monitored_slot(h2.0).unwrap()].mean_in_range(20.0, 60.0);
        assert!((t1 + t2) > 85.0, "link under-utilized: {t1} + {t2}");
        let ratio = t1.max(t2) / t1.min(t2).max(1.0);
        assert!(ratio < 1.6, "unfair split {t1} vs {t2}");
    }

    #[test]
    fn finite_flow_completes_and_reports_fct() {
        let mut net = Network::new(SimConfig::new(48e6, 0.1, 30.0));
        let h = net.add_flow(
            FlowConfig::cross("short", Time::from_millis(40), true).with_size(1_500_000),
            sender(CcKind::Cubic, Box::new(FixedSizeSource::new(1_500_000))),
        );
        net.run();
        let (rec, _) = net.finish();
        let stats = &rec.flows[h.0];
        assert!(stats.finish.is_some(), "flow must complete");
        assert_eq!(stats.delivered_bytes, 1_500_000);
        let fct = stats.fct().unwrap().as_secs_f64();
        // 1.5 MB at 48 Mbit/s is 0.25 s minimum; slow start makes it longer.
        assert!(fct > 0.25 && fct < 5.0, "fct {fct}");
    }

    #[test]
    fn poisson_source_offers_its_mean_rate() {
        let mut net = Network::new(SimConfig::new(96e6, 0.1, 30.0));
        let h = net.add_flow(
            FlowConfig::primary("poisson", Time::from_millis(50)),
            sender(
                CcKind::Unlimited,
                Box::new(PoissonSource::new(24e6, 1500, 11)),
            ),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let tput = rec.throughput_mbps[slot].mean_in_range(5.0, 30.0);
        assert!((tput - 24.0).abs() < 2.0, "poisson throughput {tput}");
    }

    #[test]
    fn scripted_cbr_respects_its_schedule() {
        let mut net = Network::new(SimConfig::new(96e6, 0.1, 30.0));
        let schedule = vec![
            (Time::ZERO, 8e6),
            (Time::from_secs_f64(10.0), 32e6),
            (Time::from_secs_f64(20.0), 0.0),
        ];
        let h = net.add_flow(
            FlowConfig::primary("scripted", Time::from_millis(50)),
            sender(
                CcKind::Unlimited,
                Box::new(ScriptedSource::scheduled(schedule)),
            ),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let phase1 = rec.throughput_mbps[slot].mean_in_range(2.0, 9.5);
        let phase2 = rec.throughput_mbps[slot].mean_in_range(12.0, 19.5);
        let phase3 = rec.throughput_mbps[slot].mean_in_range(22.0, 29.5);
        assert!((phase1 - 8.0).abs() < 1.5, "phase1 {phase1}");
        assert!((phase2 - 32.0).abs() < 3.0, "phase2 {phase2}");
        assert!(phase3 < 1.0, "phase3 {phase3}");
    }

    #[test]
    fn loss_recovery_retransmits_and_completes_under_random_loss() {
        let mut cfg = SimConfig::new(24e6, 0.1, 60.0);
        cfg.link_mut().loss = nimbus_netsim::LossModel::Bernoulli { p: 0.01 };
        let mut net = Network::new(cfg);
        let h = net.add_flow(
            FlowConfig::cross("lossy-transfer", Time::from_millis(40), true).with_size(6_000_000),
            sender(CcKind::NewReno, Box::new(FixedSizeSource::new(6_000_000))),
        );
        net.run();
        let (rec, endpoints) = net.finish();
        let stats = &rec.flows[h.0];
        assert!(
            stats.finish.is_some(),
            "transfer must complete despite loss"
        );
        assert_eq!(stats.delivered_bytes, 6_000_000);
        // The sender must actually have retransmitted something.
        let s = endpoints[h.0].label().to_string();
        assert_eq!(s, "newreno");
    }

    #[test]
    fn sender_statistics_are_consistent() {
        let mut cfg = SimConfig::new(24e6, 0.05, 30.0);
        cfg.link_mut().loss = nimbus_netsim::LossModel::Bernoulli { p: 0.02 };
        let mut net = Network::new(cfg);
        net.add_flow(
            FlowConfig::primary("cubic", Time::from_millis(40)),
            sender(CcKind::Cubic, Box::new(BackloggedSource)),
        );
        net.run();
        let (_rec, endpoints) = net.finish();
        // Downcast is not available through the trait object; instead rebuild
        // a sender and check invariants directly with a manual drive below.
        drop(endpoints);

        // Manual drive: ack pattern with a hole triggers exactly one fast
        // retransmit and no timeout.
        let mut s = Sender::new(
            SenderConfig::labelled("manual"),
            CcKind::NewReno.build(&PathInfo::new(1500)),
            Box::new(BackloggedSource),
        );
        s.on_start(Time::ZERO);
        // Send 10 packets.
        let mut sent = Vec::new();
        for _ in 0..10 {
            match s.poll_send(Time::from_millis(1)) {
                SendAction::Transmit { seq, .. } => sent.push(seq),
                other => panic!("expected transmit, got {other:?}"),
            }
        }
        assert_eq!(sent, (0..10).collect::<Vec<_>>());
        assert_eq!(s.in_flight_packets(), 10);
        // Ack 1..=2 then three duplicates for a hole at seq 2.
        let mk_ack = |cum: u64, trig: u64, t_ms: u64| AckInfo {
            now: Time::from_millis(t_ms),
            cum_ack: cum,
            triggering_seq: trig,
            triggering_bytes: 1500,
            data_sent_at: Time::from_millis(1),
            rtt_sample: Time::from_millis(50),
            is_duplicate: false,
            newly_delivered_bytes: 1500,
            total_delivered_bytes: cum * 1500,
            ce: false,
        };
        s.on_ack(&mk_ack(1, 0, 51));
        s.on_ack(&mk_ack(2, 1, 52));
        s.on_ack(&mk_ack(2, 3, 53));
        s.on_ack(&mk_ack(2, 4, 54));
        s.on_ack(&mk_ack(2, 5, 55));
        assert_eq!(s.fast_retransmits(), 1);
        match s.poll_send(Time::from_millis(56)) {
            SendAction::Transmit {
                seq, retransmit, ..
            } => {
                assert_eq!(seq, 2);
                assert!(retransmit);
            }
            other => panic!("expected retransmission, got {other:?}"),
        }
        assert_eq!(s.packets_retransmitted(), 1);
        assert_eq!(s.timeouts(), 0);
    }

    #[test]
    fn ce_echo_reaches_the_controller_and_counts() {
        let mut s = Sender::new(
            SenderConfig::labelled("ce"),
            CcKind::NewReno.build(&PathInfo::new(1500)),
            Box::new(BackloggedSource),
        );
        s.on_start(Time::ZERO);
        for _ in 0..10 {
            let _ = s.poll_send(Time::from_millis(1));
        }
        let mk_ack = |cum: u64, t_ms: u64, ce: bool| AckInfo {
            now: Time::from_millis(t_ms),
            cum_ack: cum,
            triggering_seq: cum.saturating_sub(1),
            triggering_bytes: 1500,
            data_sent_at: Time::from_millis(1),
            rtt_sample: Time::from_millis(50),
            is_duplicate: false,
            newly_delivered_bytes: 1500,
            total_delivered_bytes: cum * 1500,
            ce,
        };
        let before = s.congestion_control().cwnd_packets();
        s.on_ack(&mk_ack(1, 51, false));
        assert_eq!(s.ce_echoes(), 0);
        assert!(s.congestion_control().cwnd_packets() >= before);
        // A CE echo must reach the controller (NewReno halves) and count.
        s.on_ack(&mk_ack(2, 52, true));
        assert_eq!(s.ce_echoes(), 1);
        assert!(
            s.congestion_control().cwnd_packets() < before,
            "CE should shrink the window"
        );
    }

    #[test]
    fn timeout_fires_when_no_acks_return() {
        let mut s = Sender::new(
            SenderConfig::labelled("timeout"),
            CcKind::NewReno.build(&PathInfo::new(1500)),
            Box::new(BackloggedSource),
        );
        s.on_start(Time::ZERO);
        for _ in 0..5 {
            let _ = s.poll_send(Time::from_millis(1));
        }
        assert_eq!(s.in_flight_packets(), 5);
        // No ACKs ever arrive; polling far in the future must trigger a timeout
        // and a retransmission of segment 0.
        match s.poll_send(Time::from_secs_f64(30.0)) {
            SendAction::Transmit {
                seq, retransmit, ..
            } => {
                assert_eq!(seq, 0);
                assert!(retransmit);
            }
            other => panic!("expected timeout retransmission, got {other:?}"),
        }
        assert_eq!(s.timeouts(), 1);
    }
}
