//! RTT-estimator edge cases: behaviour on the very first sample, and how a
//! single spurious spike (e.g. a delayed ACK after a retransmission) moves —
//! and does not move — each of the estimator's outputs.

use nimbus_netsim::Time;
use nimbus_transport::RttEstimator;

#[test]
fn first_sample_initializes_all_outputs() {
    let mut e = RttEstimator::default();
    assert!(e.srtt().is_none());
    assert!(e.latest().is_none());
    assert!(e.min_rtt().is_none());
    assert!(e.global_min_rtt().is_none());
    assert!(e.queueing_delay().is_none());
    assert_eq!(e.rto(), Time::from_millis(1000), "pre-sample RTO default");

    e.on_sample(Time::from_millis(80), Time::ZERO);
    // RFC 6298: SRTT := R, RTTVAR := R/2 on the first sample.
    assert_eq!(e.srtt().unwrap(), Time::from_millis(80));
    assert_eq!(e.min_rtt().unwrap(), Time::from_millis(80));
    assert_eq!(e.global_min_rtt().unwrap(), Time::from_millis(80));
    assert_eq!(e.queueing_delay().unwrap(), Time::ZERO);
    // RTO = SRTT + 4·RTTVAR = 80 + 160 = 240 ms.
    assert_eq!(e.rto(), Time::from_millis(240));
}

#[test]
fn single_spike_barely_moves_srtt_and_never_moves_the_min() {
    let mut e = RttEstimator::default();
    for i in 0..100u64 {
        e.on_sample(Time::from_millis(50), Time::from_millis(i * 10));
    }
    let srtt_before = e.srtt().unwrap().as_millis_f64();
    // One 1-second spike.
    e.on_sample(Time::from_secs_f64(1.0), Time::from_millis(1010));
    let srtt_after = e.srtt().unwrap().as_millis_f64();
    // EWMA with alpha 1/8: the spike moves SRTT by (1000-50)/8 ≈ 119 ms.
    assert!(srtt_after - srtt_before < 125.0, "srtt moved {srtt_after}");
    assert!(srtt_after > srtt_before, "spike must move srtt somewhat");
    // The propagation-delay estimate must be immune to the spike.
    assert_eq!(e.min_rtt().unwrap(), Time::from_millis(50));
    assert_eq!(e.global_min_rtt().unwrap(), Time::from_millis(50));
    // Queueing-delay estimate reflects the spike (latest − min).
    assert_eq!(e.queueing_delay().unwrap(), Time::from_millis(950));
}

#[test]
fn spike_inflates_rto_then_recovery_drains_it() {
    let mut e = RttEstimator::default();
    for i in 0..100u64 {
        e.on_sample(Time::from_millis(50), Time::from_millis(i * 10));
    }
    let rto_before = e.rto();
    e.on_sample(Time::from_secs_f64(1.0), Time::from_millis(1010));
    let rto_spiked = e.rto();
    assert!(
        rto_spiked > rto_before,
        "a spike must inflate the RTO ({rto_before:?} -> {rto_spiked:?})"
    );
    // Steady samples afterwards pull the RTO back toward the floor.
    for i in 0..200u64 {
        e.on_sample(Time::from_millis(50), Time::from_millis(1020 + i * 10));
    }
    assert!(
        e.rto() < rto_spiked.mul_f64(0.5),
        "RTO must recover after the spike ({:?})",
        e.rto()
    );
}

#[test]
fn min_rtt_window_expires_but_global_min_survives() {
    let mut e = RttEstimator::new(5.0);
    e.on_sample(Time::from_millis(40), Time::ZERO);
    for s in 1..20u64 {
        e.on_sample(Time::from_millis(90), Time::from_secs_f64(s as f64));
    }
    assert_eq!(
        e.min_rtt().unwrap(),
        Time::from_millis(90),
        "windowed min expired"
    );
    assert_eq!(
        e.global_min_rtt().unwrap(),
        Time::from_millis(40),
        "global min never expires"
    );
}

#[test]
fn rto_is_floored_for_low_jitter_paths() {
    let mut e = RttEstimator::default();
    for i in 0..500u64 {
        e.on_sample(Time::from_millis(10), Time::from_millis(i * 10));
    }
    // SRTT 10 ms with ~zero variance: the 200 ms floor must apply.
    assert_eq!(e.rto(), Time::from_millis(200));
}
