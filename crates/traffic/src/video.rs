//! DASH-style adaptive video cross traffic (Fig. 11).
//!
//! A video client downloads the stream chunk by chunk (chunk duration a few
//! seconds) and paces itself off its playback buffer: it fetches the next
//! chunk as soon as the buffer has room, and idles when the buffer is full.
//! Two regimes matter for the paper:
//!
//! * **4K** — the encoded bitrate exceeds the flow's fair share of the link,
//!   so the client is perpetually behind: the transfer is network-limited and
//!   behaves like a backlogged (elastic) flow;
//! * **1080p** — the encoded bitrate is comfortably below the fair share, so
//!   the client spends most of its time idle between chunk downloads:
//!   application-limited, hence inelastic.
//!
//! The model implements a [`Source`]: bytes become available chunk-by-chunk,
//! with the next chunk released once the previous chunk's bytes *could* have
//! been played out (i.e. the application writes at most `buffer_chunks`
//! chunks ahead of real-time playback).

use nimbus_netsim::Time;
use nimbus_transport::Source;
use serde::{Deserialize, Serialize};

/// Video quality presets used by the Fig. 11 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VideoQuality {
    /// 4K ladder: ~25 Mbit/s encoded bitrate.
    Uhd4k,
    /// 1080p ladder: ~8 Mbit/s encoded bitrate.
    Fhd1080p,
    /// 720p ladder: ~5 Mbit/s (extra point for robustness sweeps).
    Hd720p,
}

impl VideoQuality {
    /// Encoded bitrate in bits per second.
    pub fn bitrate_bps(self) -> f64 {
        match self {
            VideoQuality::Uhd4k => 25e6,
            VideoQuality::Fhd1080p => 8e6,
            VideoQuality::Hd720p => 5e6,
        }
    }

    /// Label for results.
    pub fn label(self) -> &'static str {
        match self {
            VideoQuality::Uhd4k => "4k",
            VideoQuality::Fhd1080p => "1080p",
            VideoQuality::Hd720p => "720p",
        }
    }
}

/// A chunked video source.
#[derive(Debug, Clone)]
pub struct VideoSource {
    /// Encoded bitrate (bits/s).
    bitrate_bps: f64,
    /// Duration of video covered by one chunk.
    chunk_duration: Time,
    /// How many chunks of playback buffer the client keeps ahead of real time.
    buffer_chunks: u32,
    /// Total stream duration (no more chunks after this much *content*).
    stream_duration: Time,
    /// When the session began (set by [`Source::on_flow_start`]); playback
    /// position is measured from here, so a video flow that starts
    /// mid-experiment begins at its first chunk instead of offering the
    /// whole elapsed stream as backlog.
    session_start: Time,
}

impl VideoSource {
    /// A video source with 4-second chunks and a 4-chunk client buffer.
    pub fn new(quality: VideoQuality, stream_duration_s: f64) -> Self {
        VideoSource {
            bitrate_bps: quality.bitrate_bps(),
            chunk_duration: Time::from_secs_f64(4.0),
            buffer_chunks: 4,
            stream_duration: Time::from_secs_f64(stream_duration_s),
            session_start: Time::ZERO,
        }
    }

    /// Override the chunk duration.
    pub fn with_chunk_duration(mut self, seconds: f64) -> Self {
        self.chunk_duration = Time::from_secs_f64(seconds);
        self
    }

    /// Size of one chunk in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        (self.bitrate_bps * self.chunk_duration.as_secs_f64() / 8.0) as u64
    }

    /// Total number of chunks in the stream.
    pub fn total_chunks(&self) -> u64 {
        (self.stream_duration.as_secs_f64() / self.chunk_duration.as_secs_f64()).ceil() as u64
    }

    /// Number of chunks the application has released for transmission by `now`:
    /// the playback position (in chunks) plus the buffer allowance, capped at
    /// the stream length.
    fn chunks_released(&self, now: Time) -> u64 {
        let elapsed = now.saturating_sub(self.session_start).as_secs_f64();
        let played = (elapsed / self.chunk_duration.as_secs_f64()).floor() as u64;
        (played + self.buffer_chunks as u64).min(self.total_chunks())
    }
}

impl Source for VideoSource {
    fn on_flow_start(&mut self, now: Time) {
        self.session_start = now;
    }

    fn bytes_available(&mut self, now: Time) -> u64 {
        self.chunks_released(now) * self.chunk_bytes()
    }

    fn next_data_time(&self, now: Time) -> Option<Time> {
        if self.chunks_released(now) >= self.total_chunks() {
            return None;
        }
        // The next chunk is released at the next chunk boundary (relative to
        // the session start).
        let chunk_s = self.chunk_duration.as_secs_f64();
        let elapsed = now.saturating_sub(self.session_start).as_secs_f64();
        let next_boundary = ((elapsed / chunk_s).floor() + 1.0) * chunk_s;
        Some(self.session_start + Time::from_secs_f64(next_boundary))
    }

    fn done_writing(&self) -> bool {
        // The stream has a fixed number of chunks; from the sender's point of
        // view writing finishes once every chunk has been released, which we
        // approximate by comparing against the stream duration at query time.
        false
    }

    fn label(&self) -> &'static str {
        "dash-video"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_sizing_matches_bitrate() {
        let v = VideoSource::new(VideoQuality::Fhd1080p, 120.0);
        // 8 Mbit/s * 4 s / 8 = 4 MB per chunk.
        assert_eq!(v.chunk_bytes(), 4_000_000);
        assert_eq!(v.total_chunks(), 30);
    }

    #[test]
    fn initial_burst_then_chunk_by_chunk() {
        let mut v = VideoSource::new(VideoQuality::Fhd1080p, 120.0);
        // At t=0 the client may buffer 4 chunks ahead.
        assert_eq!(v.bytes_available(Time::ZERO), 4 * 4_000_000);
        // At t=4s one more chunk is released.
        assert_eq!(v.bytes_available(Time::from_secs_f64(4.0)), 5 * 4_000_000);
        // Release times line up with chunk boundaries.
        let next = v.next_data_time(Time::from_secs_f64(5.0)).unwrap();
        assert!((next.as_secs_f64() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn release_rate_equals_encoded_bitrate() {
        let mut v = VideoSource::new(VideoQuality::Uhd4k, 600.0);
        let b100 = v.bytes_available(Time::from_secs_f64(100.0));
        let b200 = v.bytes_available(Time::from_secs_f64(200.0));
        let rate = (b200 - b100) as f64 * 8.0 / 100.0;
        assert!((rate - 25e6).abs() < 2e6, "release rate {rate}");
    }

    #[test]
    fn stream_ends_and_stops_releasing() {
        let mut v = VideoSource::new(VideoQuality::Hd720p, 40.0);
        let at_end = v.bytes_available(Time::from_secs_f64(40.0));
        let later = v.bytes_available(Time::from_secs_f64(400.0));
        assert_eq!(at_end, later);
        assert_eq!(v.next_data_time(Time::from_secs_f64(400.0)), None);
        assert_eq!(later, v.total_chunks() * v.chunk_bytes());
    }

    #[test]
    fn late_starting_session_begins_at_its_first_chunk() {
        let mut v = VideoSource::new(VideoQuality::Fhd1080p, 120.0);
        v.on_flow_start(Time::from_secs_f64(90.0));
        // At the session start only the client's buffer allowance is
        // released, not 90 seconds of stream.
        assert_eq!(v.bytes_available(Time::from_secs_f64(90.0)), 4 * 4_000_000);
        assert_eq!(v.bytes_available(Time::from_secs_f64(94.0)), 5 * 4_000_000);
        let next = v.next_data_time(Time::from_secs_f64(95.0)).unwrap();
        assert!((next.as_secs_f64() - 98.0).abs() < 1e-9);
    }

    #[test]
    fn quality_presets_are_ordered() {
        assert!(VideoQuality::Uhd4k.bitrate_bps() > VideoQuality::Fhd1080p.bitrate_bps());
        assert!(VideoQuality::Fhd1080p.bitrate_bps() > VideoQuality::Hd720p.bitrate_bps());
        assert_eq!(VideoQuality::Uhd4k.label(), "4k");
    }
}
