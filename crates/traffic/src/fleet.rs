//! Fleet workload: open-loop flow churn at population scale.
//!
//! Where [`crate::wan`] pre-generates a flow list and instantiates every
//! sender up front, this module implements the simulator's
//! [`nimbus_netsim::FlowSpawner`] interface: flows are created
//! lazily at their arrival instants and *retired* (endpoint freed) when they
//! complete, so a run can churn through thousands of flows while only the
//! concurrently active population costs memory and per-tick work.
//!
//! Two arrival processes are provided.  Poisson arrivals are the open-loop
//! model the paper uses for its CAIDA-derived workload (§8.1); Pareto
//! ("bursty") interarrivals offer the same mean rate but heavy-tailed gaps,
//! so arrivals clump — a stress test for detectors that assume smooth
//! population churn.  Both are deterministic per seed.

use crate::flow_sizes::FlowSizeDistribution;
use crate::wan::CcKindSerde;
use nimbus_netsim::{FlowConfig, FlowEndpoint, FlowSpawner, Time};
use nimbus_transport::{CcKind, FixedSizeSource, PathInfo, Sender, SenderConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How interarrival gaps between fleet flows are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential interarrivals — memoryless churn at a constant mean rate.
    Poisson,
    /// Pareto interarrivals with shape `alpha` (must satisfy `1 < alpha`):
    /// same mean rate as Poisson, but heavy-tailed gaps make arrivals clump
    /// into bursts separated by long silences.
    Bursty {
        /// Pareto shape parameter; smaller means burstier (variance is
        /// infinite for `alpha <= 2`).
        alpha: f64,
    },
}

/// The default shape for [`ArrivalProcess::Bursty`]: infinite-variance
/// interarrivals while keeping the mean finite.
pub const DEFAULT_BURSTY_ALPHA: f64 = 1.5;

impl ArrivalProcess {
    /// Draw one interarrival gap in seconds for mean arrival rate `lambda`
    /// (flows per second).
    fn sample_gap(&self, lambda: f64, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        match *self {
            ArrivalProcess::Poisson => -u.ln() / lambda,
            ArrivalProcess::Bursty { alpha } => {
                // Pareto(xm, alpha) has mean xm * alpha / (alpha - 1); choose
                // xm so the mean gap is exactly 1/lambda.
                let xm = (alpha - 1.0) / (alpha * lambda);
                xm / u.powf(1.0 / alpha)
            }
        }
    }
}

/// Configuration of a fleet workload: an open-loop arrival process paired
/// with a heavy-tailed size distribution, targeting a fixed offered load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetWorkloadConfig {
    /// Target offered load in bits per second.
    pub offered_load_bps: f64,
    /// Interarrival process.
    pub arrivals: ArrivalProcess,
    /// Flow-size distribution.
    pub sizes: FlowSizeDistribution,
    /// Time of the first possible arrival, seconds.
    pub start_s: f64,
    /// No arrivals at or after this time, seconds.
    pub stop_s: f64,
    /// Base propagation RTT for fleet flows, seconds.
    pub base_rtt_s: f64,
    /// If true, jitter each flow's RTT by up to ±50%.
    pub jitter_rtt: bool,
    /// Congestion control used by the fleet flows.
    pub cc: CcKindSerde,
    /// RNG seed; the whole workload is deterministic given this.
    pub seed: u64,
    /// Size (bytes) above which a flow is tagged elastic for the ground truth.
    pub elastic_threshold_bytes: u64,
}

impl FleetWorkloadConfig {
    /// A fleet offering `load_fraction` of `link_rate_bps`, arriving over
    /// `[0, stop_s)`: Poisson arrivals, default sizes, 50 ms base RTT, Cubic.
    pub fn default_for_link(link_rate_bps: f64, load_fraction: f64, stop_s: f64) -> Self {
        FleetWorkloadConfig {
            offered_load_bps: link_rate_bps * load_fraction,
            arrivals: ArrivalProcess::Poisson,
            sizes: FlowSizeDistribution::default(),
            start_s: 0.0,
            stop_s,
            base_rtt_s: 0.05,
            jitter_rtt: true,
            cc: CcKindSerde::Cubic,
            seed: 1,
            elastic_threshold_bytes: 15_000,
        }
    }

    /// Mean arrival rate implied by the offered load and the size
    /// distribution's analytic mean, flows per second.
    pub fn lambda(&self) -> f64 {
        self.offered_load_bps / (self.sizes.mean_bytes() * 8.0)
    }
}

/// A [`FlowSpawner`] emitting the configured fleet: each call advances the
/// arrival clock by one sampled gap and materializes one finite, retiring,
/// unmonitored cross-flow.
pub struct FleetSpawner {
    cfg: FleetWorkloadConfig,
    rng: StdRng,
    /// Current arrival-clock position, seconds.
    t_s: f64,
    emitted: u64,
}

impl FleetSpawner {
    /// Build the spawner; all randomness derives from `cfg.seed`.
    pub fn new(cfg: FleetWorkloadConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        let t_s = cfg.start_s;
        FleetSpawner {
            cfg,
            rng,
            t_s,
            emitted: 0,
        }
    }

    /// Flows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl FlowSpawner for FleetSpawner {
    fn next_flow(&mut self) -> Option<(Time, FlowConfig, Box<dyn FlowEndpoint>)> {
        let lambda = self.cfg.lambda();
        self.t_s += self.cfg.arrivals.sample_gap(lambda, &mut self.rng);
        if self.t_s >= self.cfg.stop_s {
            return None;
        }
        let size = self.cfg.sizes.sample(&mut self.rng);
        let rtt_s = if self.cfg.jitter_rtt {
            self.cfg.base_rtt_s * self.rng.gen_range(0.5..1.5)
        } else {
            self.cfg.base_rtt_s
        };
        let i = self.emitted;
        self.emitted += 1;
        let label = format!("fleet-{i}");
        let at = Time::from_secs_f64(self.t_s);
        let flow_cfg = FlowConfig::cross(
            &label,
            Time::from_secs_f64(rtt_s),
            size > self.cfg.elastic_threshold_bytes,
        )
        .starting_at(at)
        .with_size(size)
        .retiring();
        let endpoint: Box<dyn FlowEndpoint> = Box::new(Sender::new(
            SenderConfig::labelled(&label),
            CcKind::from(self.cfg.cc).build(&PathInfo::new(1500)),
            Box::new(FixedSizeSource::new(size)),
        ));
        Some((at, flow_cfg, endpoint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_arrivals(cfg: FleetWorkloadConfig) -> Vec<(f64, u64)> {
        let mut sp = FleetSpawner::new(cfg);
        let mut out = Vec::new();
        while let Some((at, fc, _ep)) = sp.next_flow() {
            out.push((at.as_secs_f64(), fc.size_bytes.unwrap()));
        }
        out
    }

    #[test]
    fn fleet_generation_is_deterministic_per_seed() {
        let cfg = FleetWorkloadConfig::default_for_link(96e6, 0.5, 30.0);
        let a = drain_arrivals(cfg.clone());
        let b = drain_arrivals(cfg.clone());
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let mut other = cfg;
        other.seed = 2;
        assert_ne!(a, drain_arrivals(other), "a different seed must differ");
    }

    #[test]
    fn arrivals_are_ordered_and_bounded() {
        for arrivals in [
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty {
                alpha: DEFAULT_BURSTY_ALPHA,
            },
        ] {
            let mut cfg = FleetWorkloadConfig::default_for_link(96e6, 0.6, 60.0);
            cfg.arrivals = arrivals;
            let flows = drain_arrivals(cfg);
            assert!(flows.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(flows.iter().all(|f| f.0 < 60.0));
        }
    }

    #[test]
    fn offered_load_is_near_target_for_both_processes() {
        for arrivals in [
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty {
                alpha: DEFAULT_BURSTY_ALPHA,
            },
        ] {
            let mut cfg = FleetWorkloadConfig::default_for_link(96e6, 0.5, 600.0);
            cfg.arrivals = arrivals;
            let flows = drain_arrivals(cfg);
            let total_bits: f64 = flows.iter().map(|f| f.1 as f64 * 8.0).sum();
            let load = total_bits / 600.0;
            // The heavy-tailed size distribution makes this noisy; a factor-2
            // band still catches a wrong lambda (off by mean-size factors).
            assert!(
                load > 24e6 && load < 96e6,
                "{arrivals:?}: offered load {load:.3e} far from 48e6"
            );
        }
    }

    #[test]
    fn bursty_gaps_are_heavier_tailed_than_poisson() {
        let gaps = |arrivals: ArrivalProcess| -> Vec<f64> {
            let mut cfg = FleetWorkloadConfig::default_for_link(96e6, 0.5, 300.0);
            cfg.arrivals = arrivals;
            let flows = drain_arrivals(cfg);
            flows.windows(2).map(|w| w[1].0 - w[0].0).collect()
        };
        let cv = |g: &[f64]| -> f64 {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            let var = g.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / g.len() as f64;
            var.sqrt() / mean
        };
        let poisson_cv = cv(&gaps(ArrivalProcess::Poisson));
        let bursty_cv = cv(&gaps(ArrivalProcess::Bursty {
            alpha: DEFAULT_BURSTY_ALPHA,
        }));
        // Exponential gaps have CV ≈ 1; Pareto(1.5) gaps have unbounded
        // variance, so their sample CV must come out clearly higher.
        assert!(
            poisson_cv > 0.7 && poisson_cv < 1.4,
            "poisson CV {poisson_cv}"
        );
        assert!(
            bursty_cv > poisson_cv * 1.5,
            "bursty CV {bursty_cv} vs poisson {poisson_cv}"
        );
    }

    #[test]
    fn spawned_flows_are_finite_retiring_and_unmonitored() {
        let mut sp = FleetSpawner::new(FleetWorkloadConfig::default_for_link(48e6, 0.4, 10.0));
        let mut n = 0;
        while let Some((at, fc, ep)) = sp.next_flow() {
            assert_eq!(fc.start, at);
            assert!(fc.retire_on_finish);
            assert!(!fc.monitored);
            assert!(fc.size_bytes.is_some());
            assert!(fc.counts_as_elastic.is_some());
            assert!(fc.prop_rtt.as_secs_f64() >= 0.025 && fc.prop_rtt.as_secs_f64() <= 0.075);
            assert!(ep.label().starts_with("fleet-"));
            n += 1;
        }
        assert_eq!(sp.emitted(), n);
        assert!(n > 10, "expected a population, got {n}");
    }

    #[test]
    fn churn_runs_end_to_end_and_retires_every_finished_flow() {
        use nimbus_netsim::{Network, SimConfig};
        let mut cfg = FleetWorkloadConfig::default_for_link(96e6, 0.3, 8.0);
        cfg.seed = 5;
        let mut net = Network::new(SimConfig::new(96e6, 0.1, 10.0));
        net.add_spawner(Box::new(FleetSpawner::new(cfg)));
        net.run();
        assert!(net.flow_count() > 20, "flows spawned: {}", net.flow_count());
        assert!(net.retired_flow_count() > 0);
        let finished = net
            .recorder()
            .flows
            .iter()
            .filter(|f| f.finish.is_some())
            .count();
        assert_eq!(
            net.retired_flow_count(),
            finished,
            "every finished fleet flow must be retired"
        );
        // The recorder's streaming FCTs cover exactly the finished flows.
        assert_eq!(net.recorder().fct_stream().len(), finished);
    }
}
