//! Heavy-tailed flow-size distribution standing in for the CAIDA 2016 trace.
//!
//! The paper draws cross-flow sizes "from an empirical distribution of flow
//! sizes derived from a wide-area packet trace from CAIDA" (§8.1) and relies
//! on exactly two properties of that distribution:
//!
//! 1. it is heavy-tailed — most flows are mice, most *bytes* belong to
//!    elephants, so the workload alternates between inelastic periods (only
//!    short flows in flight) and elastic periods (an elephant is active);
//! 2. its mean, together with the Poisson arrival rate, sets the offered load.
//!
//! We reproduce those properties with a mixture: a log-normal body (web-like
//! transfers, median ~10 kB) and a Pareto tail (α < 2, so the tail is heavy)
//! switched with a configurable probability.  The defaults give a mean flow
//! size of ~100 kB with ~10% of flows carrying ~80% of the bytes, in line
//! with published characterizations of backbone traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sampler for heavy-tailed flow sizes (in bytes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSizeDistribution {
    /// Median of the log-normal body, bytes.
    pub body_median_bytes: f64,
    /// σ of the underlying normal for the body.
    pub body_sigma: f64,
    /// Probability that a flow is drawn from the Pareto tail.
    pub tail_probability: f64,
    /// Pareto scale (minimum) for tail flows, bytes.
    pub tail_min_bytes: f64,
    /// Pareto shape α (1 < α < 2 gives a heavy tail with finite mean).
    pub tail_alpha: f64,
    /// Hard cap on a single flow (keeps single simulations bounded), bytes.
    pub max_bytes: f64,
}

impl Default for FlowSizeDistribution {
    fn default() -> Self {
        FlowSizeDistribution {
            body_median_bytes: 10_000.0,
            body_sigma: 1.3,
            tail_probability: 0.07,
            tail_min_bytes: 300_000.0,
            tail_alpha: 1.3,
            max_bytes: 150e6,
        }
    }
}

impl FlowSizeDistribution {
    /// Analytic mean of the distribution in bytes (used to convert an offered
    /// load into a Poisson flow-arrival rate).
    pub fn mean_bytes(&self) -> f64 {
        // Log-normal mean = exp(µ + σ²/2) with µ = ln(median).
        let body_mean =
            (self.body_median_bytes.ln() + self.body_sigma * self.body_sigma / 2.0).exp();
        // Truncated Pareto mean; for α > 1 and a cap L >> x_m this is close to
        // α·x_m/(α−1) but we account for the cap explicitly.
        let a = self.tail_alpha;
        let xm = self.tail_min_bytes;
        let l = self.max_bytes;
        let tail_mean = if (a - 1.0).abs() < 1e-9 {
            xm * (l / xm).ln() / (1.0 - xm / l)
        } else {
            (a * xm / (a - 1.0)) * (1.0 - (xm / l).powf(a - 1.0)) / (1.0 - (xm / l).powf(a))
        };
        (1.0 - self.tail_probability) * body_mean + self.tail_probability * tail_mean
    }

    /// Draw one flow size in bytes.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let bytes = if rng.gen::<f64>() < self.tail_probability {
            // Pareto via inverse CDF, truncated at max_bytes.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            self.tail_min_bytes / u.powf(1.0 / self.tail_alpha)
        } else {
            // Log-normal via Box-Muller.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.body_median_bytes * (self.body_sigma * z).exp()
        };
        bytes.clamp(500.0, self.max_bytes) as u64
    }

    /// Draw `n` flow sizes.
    pub fn sample_many(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2545f4914f6cdd1d);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Fraction of flows whose size exceeds `threshold_bytes` (Monte-Carlo, for tests
    /// and ground-truth labelling of "guaranteed ACK-clocked" flows per Fig. 12:
    /// flows larger than the initial window are labelled elastic).
    pub fn fraction_larger_than(&self, threshold_bytes: u64, samples: usize, seed: u64) -> f64 {
        let sizes = self.sample_many(samples, seed);
        sizes.iter().filter(|&&s| s > threshold_bytes).count() as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let dist = FlowSizeDistribution::default();
        let sizes = dist.sample_many(200_000, 1);
        let empirical = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        let analytic = dist.mean_bytes();
        let ratio = empirical / analytic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let dist = FlowSizeDistribution::default();
        let mut sizes = dist.sample_many(100_000, 2);
        sizes.sort_unstable();
        let total: u128 = sizes.iter().map(|&s| s as u128).sum();
        // Bytes carried by the largest 10% of flows.
        let top10: u128 = sizes[sizes.len() * 9 / 10..]
            .iter()
            .map(|&s| s as u128)
            .sum();
        let share = top10 as f64 / total as f64;
        assert!(share > 0.6, "top-10% byte share {share} not heavy-tailed");
        // Median should remain mouse-sized.
        let median = sizes[sizes.len() / 2];
        assert!(median < 50_000, "median {median}");
    }

    #[test]
    fn tail_concentration_twenty_percent_of_flows_carry_sixty_percent_of_bytes() {
        // The fleet workload's defining property: a small minority of flows
        // (the elephants) must account for the bulk of the bytes, or churn
        // would never produce elastic periods.  Pin it across several seeds
        // so one lucky sample can't mask a regression.
        let dist = FlowSizeDistribution::default();
        for seed in [7, 11, 13] {
            let mut sizes = dist.sample_many(100_000, seed);
            sizes.sort_unstable();
            let total: u128 = sizes.iter().map(|&s| s as u128).sum();
            let top20: u128 = sizes[sizes.len() * 8 / 10..]
                .iter()
                .map(|&s| s as u128)
                .sum();
            let share = top20 as f64 / total as f64;
            assert!(
                share >= 0.6,
                "seed {seed}: top-20% of flows carry only {share:.3} of bytes"
            );
        }
    }

    #[test]
    fn most_flows_are_larger_than_the_initial_window() {
        // Fig. 12 labels flows larger than 10 packets (15 kB) as elastic;
        // with the default mix a sizeable fraction of flows qualify.
        let dist = FlowSizeDistribution::default();
        let frac = dist.fraction_larger_than(15_000, 50_000, 3);
        assert!(frac > 0.2 && frac < 0.9, "fraction {frac}");
    }

    #[test]
    fn samples_are_bounded_and_deterministic() {
        let dist = FlowSizeDistribution::default();
        let a = dist.sample_many(1000, 42);
        let b = dist.sample_many(1000, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s >= 500 && s as f64 <= dist.max_bytes));
    }

    #[test]
    fn mean_is_in_a_realistic_wan_range() {
        let dist = FlowSizeDistribution::default();
        let mean = dist.mean_bytes();
        assert!(
            (30_000.0..400_000.0).contains(&mean),
            "mean flow size {mean} bytes out of expected WAN range"
        );
    }
}
