//! # nimbus-traffic
//!
//! Cross-traffic workload generators for the Nimbus reproduction.
//!
//! The paper's evaluation draws its cross traffic from three families, all of
//! which are built here on top of `nimbus-transport` senders:
//!
//! * [`flow_sizes`] + [`wan`] — a CAIDA-like wide-area workload: Cubic
//!   cross-flows whose sizes come from a heavy-tailed distribution and whose
//!   arrivals form a Poisson process targeting a configurable offered load
//!   (§8.1 "Throughput and delay with WAN cross-traffic").  The real trace is
//!   proprietary; DESIGN.md documents the substitution.
//! * [`fleet`] — the same size distribution driven open-loop at population
//!   scale: flows are spawned at Poisson or bursty (Pareto) arrival instants
//!   via the engine's `FlowSpawner` hook and retired on completion, so
//!   1000+-flow churn runs only pay for the concurrently active population.
//! * [`video`] — DASH-style adaptive video sources: a 4K ladder that exceeds
//!   its fair share (network-limited, elastic) and a 1080p ladder that stays
//!   below it (application-limited, inelastic), reproducing Fig. 11.
//! * [`phases`] — the scripted elastic/inelastic phase schedules of Figs. 1
//!   and 8 ("xM of Poisson cross traffic, yT long-running Cubic flows"),
//!   together with the fair-share reference line plotted in those figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fleet;
pub mod flow_sizes;
pub mod phases;
pub mod video;
pub mod wan;

pub use fleet::{ArrivalProcess, FleetSpawner, FleetWorkloadConfig};
pub use flow_sizes::FlowSizeDistribution;
pub use phases::{fair_share_mbps, Phase, PhaseSchedule};
pub use video::{VideoQuality, VideoSource};
pub use wan::{WanWorkload, WanWorkloadConfig};
