//! Scripted cross-traffic phase schedules (Figs. 1, 8, 17).
//!
//! The paper's time-varying scenarios are described as a sequence of phases,
//! each with an inelastic Poisson component ("`xM` denotes x Mbit/s of
//! inelastic Poisson cross-traffic") and a number of long-running Cubic
//! cross-flows ("`yT` denotes y long-running Cubic cross-flows").  This
//! module turns such a schedule into concrete flows for the simulator and
//! computes the fair-share reference line plotted in those figures.

use nimbus_netsim::Time;
use serde::{Deserialize, Serialize};

/// One phase of a scripted scenario.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Phase {
    /// Phase start time, seconds.
    pub start_s: f64,
    /// Inelastic Poisson cross-traffic rate during this phase, bits/s.
    pub poisson_rate_bps: f64,
    /// Number of long-running Cubic (elastic) cross-flows during this phase.
    pub cubic_flows: usize,
}

/// A full schedule: consecutive phases plus the total experiment duration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSchedule {
    /// Phases, sorted by start time; each lasts until the next one starts.
    pub phases: Vec<Phase>,
    /// End of the experiment, seconds.
    pub end_s: f64,
}

impl PhaseSchedule {
    /// Build a schedule from `(start_s, poisson_rate_bps, cubic_flows)` triples.
    pub fn new(phases: Vec<(f64, f64, usize)>, end_s: f64) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phases must be sorted by start time"
        );
        PhaseSchedule {
            phases: phases
                .into_iter()
                .map(|(start_s, poisson_rate_bps, cubic_flows)| Phase {
                    start_s,
                    poisson_rate_bps,
                    cubic_flows,
                })
                .collect(),
            end_s,
        }
    }

    /// The Fig. 1 scenario: 30 s alone, 60 s with one Cubic flow, 60 s with
    /// 24 Mbit/s of inelastic traffic, then alone again (on a 48 Mbit/s link).
    pub fn fig1() -> Self {
        PhaseSchedule::new(
            vec![
                (0.0, 0.0, 0),
                (30.0, 0.0, 1),
                (90.0, 24e6, 0),
                (150.0, 0.0, 0),
            ],
            180.0,
        )
    }

    /// The Fig. 8 scenario (96 Mbit/s link): the nine phases annotated at the
    /// top of the figure, 20 s each: `16M/1T, 32M/2T, 0M/4T, 0M/3T, 0M/1T,
    /// 16M/0T, 32M/0T, 48M/0T, 16M/0T`.
    pub fn fig8() -> Self {
        let spec: [(f64, usize); 9] = [
            (16e6, 1),
            (32e6, 2),
            (0.0, 4),
            (0.0, 3),
            (0.0, 1),
            (16e6, 0),
            (32e6, 0),
            (48e6, 0),
            (16e6, 0),
        ];
        PhaseSchedule::new(
            spec.iter()
                .enumerate()
                .map(|(i, &(m, t))| (i as f64 * 20.0, m, t))
                .collect(),
            180.0,
        )
    }

    /// The Fig. 17 scenario (192 Mbit/s link, 3 Nimbus flows): elastic cross
    /// traffic (3 Cubic flows) from 30–90 s, a 96 Mbit/s constant-bit-rate
    /// stream from 90–150 s.
    pub fn fig17() -> Self {
        PhaseSchedule::new(
            vec![
                (0.0, 0.0, 0),
                (30.0, 0.0, 3),
                (90.0, 96e6, 0),
                (150.0, 0.0, 0),
            ],
            180.0,
        )
    }

    /// The phase active at time `t_s`.
    pub fn phase_at(&self, t_s: f64) -> &Phase {
        let mut current = &self.phases[0];
        for p in &self.phases {
            if p.start_s <= t_s {
                current = p;
            } else {
                break;
            }
        }
        current
    }

    /// End time of the phase starting at index `i`.
    pub fn phase_end(&self, i: usize) -> f64 {
        self.phases
            .get(i + 1)
            .map(|p| p.start_s)
            .unwrap_or(self.end_s)
    }

    /// The scripted Poisson-rate schedule, as `(start, rate_bps)` pairs for a
    /// [`ScriptedSource`](nimbus_transport::ScriptedSource)-driven aggregate.
    pub fn poisson_schedule(&self) -> Vec<(Time, f64)> {
        self.phases
            .iter()
            .map(|p| (Time::from_secs_f64(p.start_s), p.poisson_rate_bps))
            .collect()
    }

    /// Intervals `(start_s, end_s)` during which the `k`-th concurrent Cubic
    /// cross-flow slot is occupied.  Slot `k` is active in every phase with
    /// `cubic_flows > k`; contiguous phases merge into one interval (one flow).
    pub fn cubic_flow_intervals(&self) -> Vec<(f64, f64)> {
        let max_flows = self.phases.iter().map(|p| p.cubic_flows).max().unwrap_or(0);
        let mut intervals = Vec::new();
        for slot in 0..max_flows {
            let mut active_since: Option<f64> = None;
            for (i, p) in self.phases.iter().enumerate() {
                let active = p.cubic_flows > slot;
                match (active, active_since) {
                    (true, None) => active_since = Some(p.start_s),
                    (false, Some(s)) => {
                        intervals.push((s, p.start_s));
                        active_since = None;
                    }
                    _ => {}
                }
                if i == self.phases.len() - 1 {
                    if let Some(s) = active_since.take() {
                        intervals.push((s, self.end_s));
                    }
                }
            }
        }
        intervals
    }

    /// The correct fair-share rate (Mbit/s) for the monitored flow(s) at time
    /// `t_s` — the solid black reference line of Fig. 8: the link capacity
    /// left over by the inelastic traffic, split equally among the monitored
    /// flows and the elastic cross-flows.
    pub fn fair_share_mbps(&self, t_s: f64, link_rate_bps: f64, monitored_flows: usize) -> f64 {
        let p = self.phase_at(t_s);
        fair_share_mbps(
            link_rate_bps,
            p.poisson_rate_bps,
            p.cubic_flows,
            monitored_flows,
        )
    }
}

/// Fair share (Mbit/s) of each monitored flow on a link of `link_rate_bps`
/// carrying `inelastic_rate_bps` of inelastic traffic and `elastic_flows`
/// elastic cross-flows, shared with `monitored_flows` monitored flows.
pub fn fair_share_mbps(
    link_rate_bps: f64,
    inelastic_rate_bps: f64,
    elastic_flows: usize,
    monitored_flows: usize,
) -> f64 {
    let leftover = (link_rate_bps - inelastic_rate_bps).max(0.0);
    let claimants = (elastic_flows + monitored_flows).max(1);
    leftover / claimants as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_schedule_matches_the_figure_annotations() {
        let s = PhaseSchedule::fig8();
        assert_eq!(s.phases.len(), 9);
        assert_eq!(s.end_s, 180.0);
        // Phase 3 (40–60 s): 0M / 4T.
        let p = s.phase_at(45.0);
        assert_eq!(p.poisson_rate_bps, 0.0);
        assert_eq!(p.cubic_flows, 4);
        // Phase 8 (140–160 s): 48M / 0T.
        let p = s.phase_at(150.0);
        assert_eq!(p.poisson_rate_bps, 48e6);
        assert_eq!(p.cubic_flows, 0);
    }

    #[test]
    fn fair_share_line_matches_the_paper() {
        let s = PhaseSchedule::fig8();
        // Phase 1 (16M, 1T) on a 96 Mbit/s link with one monitored flow:
        // (96-16)/2 = 40 Mbit/s.
        assert!((s.fair_share_mbps(10.0, 96e6, 1) - 40.0).abs() < 1e-9);
        // Phase 3 (0M, 4T): 96/5 = 19.2.
        assert!((s.fair_share_mbps(50.0, 96e6, 1) - 19.2).abs() < 1e-9);
        // Phase 8 (48M, 0T): 48.
        assert!((s.fair_share_mbps(150.0, 96e6, 1) - 48.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_phases() {
        let s = PhaseSchedule::fig1();
        assert_eq!(s.phase_at(45.0).cubic_flows, 1);
        assert_eq!(s.phase_at(100.0).poisson_rate_bps, 24e6);
        assert_eq!(s.phase_at(170.0).cubic_flows, 0);
        // Fair share on 48 Mbit/s: alone -> 48, vs 1 cubic -> 24, vs 24M CBR -> 24.
        assert!((s.fair_share_mbps(10.0, 48e6, 1) - 48.0).abs() < 1e-9);
        assert!((s.fair_share_mbps(60.0, 48e6, 1) - 24.0).abs() < 1e-9);
        assert!((s.fair_share_mbps(120.0, 48e6, 1) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_intervals_merge_contiguous_phases() {
        let s = PhaseSchedule::fig8();
        let intervals = s.cubic_flow_intervals();
        // Slot 0 is active in phases 0-4 (0 s to 100 s) -> one merged interval.
        assert!(intervals.contains(&(0.0, 100.0)));
        // Slot 3 is active only in phase 2 (40-60 s).
        assert!(intervals.contains(&(40.0, 60.0)));
        // Total flow count: slot0 (1) + slot1 (2 phases 1,2 merged = 20..60) +
        // slot2 (40..80) + slot3 (40..60) = 4 intervals.
        assert_eq!(intervals.len(), 4);
    }

    #[test]
    fn poisson_schedule_is_time_sorted() {
        let s = PhaseSchedule::fig8();
        let sched = s.poisson_schedule();
        assert_eq!(sched.len(), 9);
        assert!(sched.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(sched[7].1, 48e6);
    }

    #[test]
    #[should_panic]
    fn unsorted_phases_panic() {
        let _ = PhaseSchedule::new(vec![(10.0, 0.0, 0), (0.0, 0.0, 0)], 20.0);
    }

    #[test]
    fn fair_share_never_negative() {
        assert_eq!(fair_share_mbps(48e6, 96e6, 0, 1), 0.0);
        assert!(fair_share_mbps(96e6, 0.0, 0, 1) > 0.0);
    }
}
