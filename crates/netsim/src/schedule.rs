//! Time-varying bottleneck rates.
//!
//! The paper's detector depends on a live estimate of the bottleneck rate µ
//! (§4.2) and claims robustness across network conditions; real links — and
//! especially cellular links — do not hold a constant rate.  A
//! [`RateSchedule`] describes µ(t) as a piecewise-constant function of
//! simulation time, which the engine consults both for packet serialization
//! (including packets that are mid-serialization when the rate changes) and
//! for keeping delay-sized queue capacities coherent as µ(t) moves.
//!
//! Four families are supported:
//!
//! * [`RateSchedule::Constant`] — the classic fixed-µ link.
//! * [`RateSchedule::Steps`] — an initial rate plus a sorted sequence of
//!   `(time, new_rate)` transitions (rate steps, outages, staircases).
//! * [`RateSchedule::Sinusoid`] — µ oscillates around a mean, quantized into
//!   piecewise-constant segments of `update_interval` so event scheduling
//!   stays exact and deterministic.
//! * [`RateSchedule::Trace`] — a slice of rates applied in fixed intervals
//!   (trace-driven cellular-like links), optionally repeating.
//!
//! All schedules floor the rate at [`MIN_RATE_BPS`] so a "zero-rate outage"
//! segment serializes glacially instead of dividing by zero or wedging the
//! event loop.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// The minimum rate any schedule will report, in bits per second.  A segment
/// configured at or below zero is clamped here, which models a (near-)outage
/// without producing infinite serialization times.
pub const MIN_RATE_BPS: f64 = 1.0;

/// A piecewise-constant bottleneck-rate schedule µ(t).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RateSchedule {
    /// A fixed rate for the whole run.
    Constant(f64),
    /// An initial rate plus sorted `(transition_time, new_rate)` steps.
    Steps {
        /// Rate before the first transition, bits/s.
        initial_bps: f64,
        /// Sorted transition points: at each `Time` the rate becomes the paired value.
        steps: Vec<(Time, f64)>,
    },
    /// `µ(t) = mean + amplitude·sin(2π·t/period)`, quantized into
    /// piecewise-constant segments of `update_interval`.
    Sinusoid {
        /// Mean rate, bits/s.
        mean_bps: f64,
        /// Peak deviation from the mean, bits/s.
        amplitude_bps: f64,
        /// Oscillation period.
        period: Time,
        /// Quantization interval: the rate is re-evaluated (and the engine
        /// notified) every `update_interval`.
        update_interval: Time,
    },
    /// A rate trace sampled at a fixed interval.
    Trace {
        /// Duration of each trace sample.
        interval: Time,
        /// The per-interval rates, bits/s.
        rates_bps: Vec<f64>,
        /// Whether the trace wraps around when exhausted (otherwise the last
        /// sample's rate holds forever).
        repeat: bool,
    },
}

impl RateSchedule {
    /// A constant-rate schedule.
    pub fn constant(rate_bps: f64) -> Self {
        RateSchedule::Constant(rate_bps)
    }

    /// A single rate step: `initial_bps` until `at`, then `to_bps`.
    pub fn step(initial_bps: f64, at: Time, to_bps: f64) -> Self {
        RateSchedule::Steps {
            initial_bps,
            steps: vec![(at, to_bps)],
        }
    }

    /// A sinusoid of `amplitude_frac·mean_bps` around `mean_bps`, quantized
    /// at `period/64` (bounded below by 1 ms).
    pub fn sinusoid(mean_bps: f64, amplitude_frac: f64, period: Time) -> Self {
        let update = Time::from_nanos((period.as_nanos() / 64).max(1_000_000));
        RateSchedule::Sinusoid {
            mean_bps,
            amplitude_bps: amplitude_frac * mean_bps,
            period,
            update_interval: update,
        }
    }

    /// The names of the curated built-in traces accepted by
    /// [`RateSchedule::builtin_trace`], for error messages and docs.
    pub fn builtin_trace_names() -> &'static [&'static str] {
        &["cellular", "wifi", "step-outage"]
    }

    /// The curated built-in trace with the given name, as `(interval_s,
    /// factors-of-base-rate)`, or `None` for an unknown name.
    ///
    /// * `cellular` — LTE-like: large swings (0.15–1.5× base) with deep
    ///   fades, 500 ms granularity, repeating every 16 s.
    /// * `wifi` — moderate variation (0.55–1.2× base) with occasional dips
    ///   from contention, 200 ms granularity, repeating every 4.8 s.
    /// * `step-outage` — nominal rate with a 2-second near-outage (0.02×)
    ///   and a staged recovery, 1 s granularity, repeating every 16 s.
    pub fn builtin_trace_factors(name: &str) -> Option<(f64, &'static [f64])> {
        match name {
            "cellular" => Some((
                0.5,
                &[
                    1.0, 1.2, 0.9, 0.5, 0.3, 0.15, 0.4, 0.8, 1.1, 1.5, 1.3, 0.7, 0.45, 0.25, 0.6,
                    1.0, 1.4, 1.1, 0.8, 0.35, 0.2, 0.55, 0.9, 1.2, 1.0, 0.65, 0.4, 0.85, 1.3, 1.5,
                    1.1, 0.75,
                ],
            )),
            "wifi" => Some((
                0.2,
                &[
                    1.0, 1.1, 1.2, 1.0, 0.9, 1.1, 0.7, 0.6, 1.0, 1.2, 1.1, 0.95, 0.8, 0.55, 0.9,
                    1.15, 1.05, 1.0, 0.85, 0.7, 1.1, 1.2, 0.95, 0.65,
                ],
            )),
            "step-outage" => Some((
                1.0,
                &[
                    1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.02, 0.02, 0.3, 0.6, 1.0, 1.0, 1.0, 1.0, 1.0,
                    1.0,
                ],
            )),
            _ => None,
        }
    }

    /// A curated built-in trace materialized against `base_bps` (the trace's
    /// factors scale the base rate), or `None` for an unknown name.  See
    /// [`RateSchedule::builtin_trace_factors`] for the catalogue.
    pub fn builtin_trace(name: &str, base_bps: f64) -> Option<Self> {
        let (interval_s, factors) = Self::builtin_trace_factors(name)?;
        Some(Self::trace(
            Time::from_secs_f64(interval_s),
            factors.iter().map(|f| f * base_bps).collect(),
            true,
        ))
    }

    /// Bytes one Mahimahi delivery opportunity carries (the mahimahi shell's
    /// fixed MTU).
    pub const MAHIMAHI_BYTES_PER_OPPORTUNITY: f64 = 1504.0;

    /// Default binning interval for Mahimahi traces: fine enough to keep
    /// sub-second fades, coarse enough that a handful of opportunities per
    /// bin quantizes the rate reasonably.
    pub const MAHIMAHI_DEFAULT_BIN: Time = Time::from_millis(100);

    /// Parse a [Mahimahi](http://mahimahi.mit.edu/) packet-delivery trace:
    /// one integer per line, the millisecond timestamp at which one
    /// MTU-sized (1504-byte) packet can cross the link; repeated timestamps
    /// mean multiple deliveries in that millisecond.  Like `mm-link` the
    /// replay loops on the final timestamp — rounded *up* to a whole number
    /// of bins, since the piecewise-constant schedule cannot end
    /// mid-segment; a trace whose length is not a bin multiple replays with
    /// up to one bin of extra period.  The last (possibly partial) bin's
    /// rate is computed over its actual width, so it is not diluted by the
    /// rounding.
    ///
    /// Opportunities are binned into `bin`-sized intervals and converted to
    /// a repeating piecewise-constant [`RateSchedule::Trace`]; the absolute
    /// rates come from the file (unlike the factor-based built-in traces, no
    /// base rate scales them).
    ///
    /// Errors carry the 1-based line number and the offending token.
    pub fn from_mahimahi_str(text: &str, bin: Time) -> Result<Self, String> {
        assert!(bin > Time::ZERO, "bin interval must be positive");
        let mut timestamps_ms: Vec<u64> = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ts: u64 = line.parse().map_err(|_| {
                format!(
                    "mahimahi trace line {}: `{line}` is not a millisecond timestamp",
                    idx + 1
                )
            })?;
            timestamps_ms.push(ts);
        }
        let last_ms = *timestamps_ms
            .iter()
            .max()
            .ok_or("mahimahi trace holds no delivery opportunities")?;
        if last_ms == 0 {
            return Err("mahimahi trace ends at t=0: the replay period would be empty".to_string());
        }
        // Bin in nanoseconds: sub-millisecond (or non-whole-millisecond)
        // bins must not truncate to zero-width divisions.
        let bin_ns = bin.as_nanos() as u128;
        let last_ns = last_ms as u128 * 1_000_000;
        let bins = last_ns.div_ceil(bin_ns) as usize;
        let mut counts = vec![0u64; bins];
        for ts in timestamps_ms {
            let idx = ((ts as u128 * 1_000_000 / bin_ns) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let bin_s = bin.as_secs_f64();
        // The final bin may be partial (the trace ends inside it): quote its
        // deliveries over the width the trace actually covers.
        let last_width_ns = last_ns - bin_ns * (bins as u128 - 1);
        let last_width_s = last_width_ns as f64 / 1e9;
        let n = counts.len();
        let rates = counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let width = if i == n - 1 { last_width_s } else { bin_s };
                c as f64 * Self::MAHIMAHI_BYTES_PER_OPPORTUNITY * 8.0 / width
            })
            .collect();
        Ok(Self::trace(bin, rates, true))
    }

    /// [`RateSchedule::from_mahimahi_str`] reading from a file, at the
    /// default 100 ms binning.
    pub fn from_mahimahi_file(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read mahimahi trace {}: {e}", path.display()))?;
        Self::from_mahimahi_str(&text, Self::MAHIMAHI_DEFAULT_BIN)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// A trace schedule from per-interval rates.
    pub fn trace(interval: Time, rates_bps: Vec<f64>, repeat: bool) -> Self {
        assert!(
            !rates_bps.is_empty(),
            "trace must contain at least one rate"
        );
        assert!(interval > Time::ZERO, "trace interval must be positive");
        RateSchedule::Trace {
            interval,
            rates_bps,
            repeat,
        }
    }

    /// The instantaneous rate at time `t`, floored at [`MIN_RATE_BPS`].
    pub fn rate_at(&self, t: Time) -> f64 {
        let raw = match self {
            RateSchedule::Constant(r) => *r,
            RateSchedule::Steps { initial_bps, steps } => {
                let mut rate = *initial_bps;
                for &(at, to) in steps {
                    if t >= at {
                        rate = to;
                    } else {
                        break;
                    }
                }
                rate
            }
            RateSchedule::Sinusoid {
                mean_bps,
                amplitude_bps,
                period,
                update_interval,
            } => {
                // Quantize to the start of the containing segment so the value
                // is constant between transitions the engine knows about.
                let seg_start =
                    (t.as_nanos() / update_interval.as_nanos()) * update_interval.as_nanos();
                let phase =
                    (seg_start % period.as_nanos().max(1)) as f64 / period.as_nanos().max(1) as f64;
                mean_bps + amplitude_bps * (std::f64::consts::TAU * phase).sin()
            }
            RateSchedule::Trace {
                interval,
                rates_bps,
                repeat,
            } => {
                let idx = (t.as_nanos() / interval.as_nanos()) as usize;
                let idx = if *repeat {
                    idx % rates_bps.len()
                } else {
                    idx.min(rates_bps.len() - 1)
                };
                rates_bps[idx]
            }
        };
        raw.max(MIN_RATE_BPS)
    }

    /// The earliest time strictly after `t` at which the rate changes, or
    /// `None` if the rate is constant from `t` on.
    pub fn next_transition_after(&self, t: Time) -> Option<Time> {
        match self {
            RateSchedule::Constant(_) => None,
            RateSchedule::Steps { steps, .. } => steps.iter().map(|&(at, _)| at).find(|&at| at > t),
            RateSchedule::Sinusoid {
                update_interval, ..
            } => {
                let iv = update_interval.as_nanos();
                Some(Time::from_nanos((t.as_nanos() / iv + 1) * iv))
            }
            RateSchedule::Trace {
                interval,
                rates_bps,
                repeat,
            } => {
                let iv = interval.as_nanos();
                let next_k = t.as_nanos() / iv + 1;
                if !*repeat && next_k as usize >= rates_bps.len() {
                    // After the last sample the final rate holds forever.
                    return None;
                }
                Some(Time::from_nanos(next_k * iv))
            }
        }
    }

    /// The rate at simulation start (used to size queues and as the nominal
    /// µ handed to schemes that take a configured link rate).
    pub fn initial_rate_bps(&self) -> f64 {
        self.rate_at(Time::ZERO)
    }

    /// The largest rate the schedule ever takes (floored at [`MIN_RATE_BPS`]).
    pub fn max_rate_bps(&self) -> f64 {
        match self {
            RateSchedule::Constant(r) => r.max(MIN_RATE_BPS),
            RateSchedule::Steps { initial_bps, steps } => steps
                .iter()
                .map(|&(_, r)| r)
                .fold(*initial_bps, f64::max)
                .max(MIN_RATE_BPS),
            RateSchedule::Sinusoid {
                mean_bps,
                amplitude_bps,
                ..
            } => (mean_bps + amplitude_bps.abs()).max(MIN_RATE_BPS),
            RateSchedule::Trace { rates_bps, .. } => {
                rates_bps.iter().copied().fold(MIN_RATE_BPS, f64::max)
            }
        }
    }

    /// The smallest rate the schedule ever takes (floored at [`MIN_RATE_BPS`]).
    pub fn min_rate_bps(&self) -> f64 {
        match self {
            RateSchedule::Constant(r) => r.max(MIN_RATE_BPS),
            RateSchedule::Steps { initial_bps, steps } => steps
                .iter()
                .map(|&(_, r)| r)
                .fold(*initial_bps, f64::min)
                .max(MIN_RATE_BPS),
            RateSchedule::Sinusoid {
                mean_bps,
                amplitude_bps,
                ..
            } => (mean_bps - amplitude_bps.abs()).max(MIN_RATE_BPS),
            RateSchedule::Trace { rates_bps, .. } => rates_bps
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .max(MIN_RATE_BPS),
        }
    }

    /// True when the schedule never changes rate.
    pub fn is_constant(&self) -> bool {
        matches!(self, RateSchedule::Constant(_))
            || self.next_transition_after(Time::ZERO).is_none()
    }

    /// Exact integral `∫ µ(t) dt` over `[t0, t1]`, in bits.  Because every
    /// schedule is piecewise constant this walks the transitions analytically;
    /// it is the reference the conservation property tests compare delivered
    /// bytes against.
    pub fn integral_bits(&self, t0: Time, t1: Time) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut cursor = t0;
        while cursor < t1 {
            let seg_end = match self.next_transition_after(cursor) {
                Some(next) if next < t1 => next,
                _ => t1,
            };
            let dt = seg_end.saturating_sub(cursor).as_secs_f64();
            total += self.rate_at(cursor) * dt;
            cursor = seg_end;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_flat() {
        let s = RateSchedule::constant(48e6);
        assert_eq!(s.rate_at(Time::ZERO), 48e6);
        assert_eq!(s.rate_at(Time::from_secs_f64(1e6)), 48e6);
        assert_eq!(s.next_transition_after(Time::ZERO), None);
        assert!(s.is_constant());
        assert_eq!(s.max_rate_bps(), 48e6);
        assert_eq!(s.min_rate_bps(), 48e6);
    }

    #[test]
    fn step_schedule_switches_at_the_boundary() {
        let s = RateSchedule::step(96e6, Time::from_secs_f64(10.0), 48e6);
        assert_eq!(s.rate_at(Time::from_secs_f64(9.999)), 96e6);
        assert_eq!(s.rate_at(Time::from_secs_f64(10.0)), 48e6);
        assert_eq!(s.rate_at(Time::from_secs_f64(100.0)), 48e6);
        assert_eq!(
            s.next_transition_after(Time::ZERO),
            Some(Time::from_secs_f64(10.0))
        );
        assert_eq!(s.next_transition_after(Time::from_secs_f64(10.0)), None);
        assert!(!s.is_constant());
    }

    #[test]
    fn multi_step_schedule_applies_in_order() {
        let s = RateSchedule::Steps {
            initial_bps: 10e6,
            steps: vec![
                (Time::from_secs_f64(1.0), 20e6),
                (Time::from_secs_f64(2.0), 5e6),
            ],
        };
        assert_eq!(s.rate_at(Time::from_millis(500)), 10e6);
        assert_eq!(s.rate_at(Time::from_millis(1500)), 20e6);
        assert_eq!(s.rate_at(Time::from_millis(2500)), 5e6);
        assert_eq!(s.max_rate_bps(), 20e6);
        assert_eq!(s.min_rate_bps(), 5e6);
    }

    #[test]
    fn zero_and_negative_rates_are_floored() {
        let s = RateSchedule::step(48e6, Time::from_secs_f64(1.0), 0.0);
        assert_eq!(s.rate_at(Time::from_secs_f64(2.0)), MIN_RATE_BPS);
        let t = RateSchedule::trace(Time::from_millis(100), vec![-5.0, 1e6], false);
        assert_eq!(t.rate_at(Time::ZERO), MIN_RATE_BPS);
        assert_eq!(t.min_rate_bps(), MIN_RATE_BPS);
    }

    #[test]
    fn sinusoid_oscillates_within_bounds_and_quantizes() {
        let s = RateSchedule::sinusoid(48e6, 0.25, Time::from_secs_f64(8.0));
        let lo = s.min_rate_bps();
        let hi = s.max_rate_bps();
        assert_eq!(lo, 36e6);
        assert_eq!(hi, 60e6);
        let mut seen_hi = f64::MIN;
        let mut seen_lo = f64::MAX;
        let mut t = Time::ZERO;
        for _ in 0..200 {
            let r = s.rate_at(t);
            assert!(r >= lo - 1.0 && r <= hi + 1.0, "rate {r} out of bounds");
            seen_hi = seen_hi.max(r);
            seen_lo = seen_lo.min(r);
            t = s.next_transition_after(t).unwrap();
        }
        // The quantized waveform still swings through most of its range.
        assert!(seen_hi > 48e6 + 0.9 * 12e6, "peak {seen_hi}");
        assert!(seen_lo < 48e6 - 0.9 * 12e6, "trough {seen_lo}");
        // Constant within a segment.
        let mid = Time::from_nanos(s.next_transition_after(Time::ZERO).unwrap().as_nanos() / 2);
        assert_eq!(s.rate_at(mid), s.rate_at(Time::ZERO));
    }

    #[test]
    fn trace_repeats_or_holds() {
        let iv = Time::from_millis(100);
        let rates = vec![10e6, 20e6, 30e6];
        let hold = RateSchedule::trace(iv, rates.clone(), false);
        assert_eq!(hold.rate_at(Time::from_millis(50)), 10e6);
        assert_eq!(hold.rate_at(Time::from_millis(150)), 20e6);
        assert_eq!(hold.rate_at(Time::from_millis(250)), 30e6);
        assert_eq!(hold.rate_at(Time::from_secs_f64(100.0)), 30e6);
        // Transitions stop after the last sample.
        assert_eq!(
            hold.next_transition_after(Time::from_millis(150)),
            Some(Time::from_millis(200))
        );
        assert_eq!(hold.next_transition_after(Time::from_millis(250)), None);

        let wrap = RateSchedule::trace(iv, rates, true);
        assert_eq!(wrap.rate_at(Time::from_millis(350)), 10e6);
        assert_eq!(
            wrap.next_transition_after(Time::from_millis(350)),
            Some(Time::from_millis(400))
        );
    }

    #[test]
    fn builtin_traces_materialize_and_unknown_names_do_not() {
        for &name in RateSchedule::builtin_trace_names() {
            let (interval_s, factors) = RateSchedule::builtin_trace_factors(name).unwrap();
            assert!(interval_s > 0.0);
            assert!(factors.len() >= 8, "trace {name} too short to be useful");
            let s = RateSchedule::builtin_trace(name, 48e6).unwrap();
            // Factors scale the base rate; the schedule repeats.
            assert_eq!(s.rate_at(Time::ZERO), (factors[0] * 48e6).max(MIN_RATE_BPS));
            let period = interval_s * factors.len() as f64;
            assert_eq!(
                s.rate_at(Time::from_secs_f64(period + interval_s / 2.0)),
                s.rate_at(Time::from_secs_f64(interval_s / 2.0)),
            );
        }
        // The outage trace actually dips near zero but never to zero.
        let outage = RateSchedule::builtin_trace("step-outage", 48e6).unwrap();
        assert!(outage.min_rate_bps() < 2e6);
        assert!(outage.min_rate_bps() >= MIN_RATE_BPS);
        assert!(RateSchedule::builtin_trace("nonexistent", 48e6).is_none());
    }

    #[test]
    fn mahimahi_traces_bin_into_rates_and_repeat() {
        // 5 opportunities in [0, 100) ms, 0 in [100, 200), 2 in [200, 300):
        // 3 bins at 100 ms, repeating.  Note the unsorted + repeated lines.
        let text = "0\n50\n50\n99\n20\n250\n201\n300\n";
        let s = RateSchedule::from_mahimahi_str(text, Time::from_millis(100)).unwrap();
        let bps = |packets: f64| packets * 1504.0 * 8.0 / 0.1;
        assert_eq!(s.rate_at(Time::from_millis(50)), bps(5.0));
        // The floor keeps the empty bin from dividing by zero downstream.
        assert_eq!(s.rate_at(Time::from_millis(150)), MIN_RATE_BPS);
        // The final timestamp (300 = the wrap point) lands in the last bin.
        assert_eq!(s.rate_at(Time::from_millis(250)), bps(3.0));
        // Wraps like mm-link.
        assert_eq!(s.rate_at(Time::from_millis(350)), bps(5.0));
        assert!(!s.is_constant());
    }

    #[test]
    fn mahimahi_parse_errors_are_actionable() {
        let err =
            RateSchedule::from_mahimahi_str("12\nfast\n20\n", Time::from_millis(100)).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("fast"), "{err}");
        let err = RateSchedule::from_mahimahi_str("\n  \n", Time::from_millis(100)).unwrap_err();
        assert!(err.contains("no delivery opportunities"), "{err}");
        let err = RateSchedule::from_mahimahi_str("0\n0\n", Time::from_millis(100)).unwrap_err();
        assert!(err.contains("t=0"), "{err}");
        let err = RateSchedule::from_mahimahi_file("/nonexistent/x.trace").unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn bundled_sample_trace_loads() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../traces/sample-cellular.mahimahi"
        );
        let s = RateSchedule::from_mahimahi_file(path).unwrap();
        assert!(!s.is_constant());
        // The sample is a varying multi-Mbit/s link with a deep fade.
        assert!(s.max_rate_bps() > 5e6, "max {}", s.max_rate_bps());
        assert!(s.min_rate_bps() < 1e6, "min {}", s.min_rate_bps());
    }

    #[test]
    fn integral_matches_hand_computation() {
        // 10 Mbit/s for 1 s, then 20 Mbit/s for 1 s: 30 Mbit total.
        let s = RateSchedule::step(10e6, Time::from_secs_f64(1.0), 20e6);
        let bits = s.integral_bits(Time::ZERO, Time::from_secs_f64(2.0));
        assert!((bits - 30e6).abs() < 1.0, "{bits}");
        // Partial windows.
        let bits = s.integral_bits(Time::from_millis(500), Time::from_millis(1500));
        assert!((bits - 15e6).abs() < 1.0, "{bits}");
        // Empty and inverted windows.
        assert_eq!(
            s.integral_bits(Time::from_secs_f64(2.0), Time::from_secs_f64(2.0)),
            0.0
        );
        assert_eq!(
            s.integral_bits(Time::from_secs_f64(3.0), Time::from_secs_f64(2.0)),
            0.0
        );
    }

    #[test]
    fn sinusoid_integral_approximates_mean_rate() {
        // Over a whole number of periods the sinusoid's integral equals the
        // mean rate times the duration (the quantized waveform is slightly
        // off; allow 2%).
        let s = RateSchedule::sinusoid(48e6, 0.25, Time::from_secs_f64(4.0));
        let bits = s.integral_bits(Time::ZERO, Time::from_secs_f64(8.0));
        let expect = 48e6 * 8.0;
        assert!(
            (bits - expect).abs() / expect < 0.02,
            "integral {bits} vs {expect}"
        );
    }
}
