//! The discrete-event engine: a dumbbell network whose forward direction is a
//! **path** — an ordered chain of links, each with its own rate schedule,
//! queue discipline, loss model and propagation delay.
//!
//! A single-hop path is exactly the network model of Fig. 2 in the paper: any
//! number of senders share one bottleneck link of rate `µ` fronted by a
//! queue; receivers acknowledge every data packet; the ACK path is
//! uncongested.  Per-flow propagation delay is split evenly between the data
//! direction (after the flow's last hop → receiver) and the ACK direction
//! (receiver → sender), so a flow's base RTT equals its configured
//! propagation RTT plus per-hop propagation plus serialization.
//!
//! Multi-hop paths generalize this: packets traverse the hops in order, each
//! hop serializing independently at its own (possibly time-varying) rate, so
//! a *secondary* bottleneck — fixed or moving as the schedules shift — and
//! cross traffic entering or exiting at interior hops are both expressible.
//! Flows declare the span of hops they traverse (`entry_hop ..= exit_hop`);
//! the default span is the whole path.
//!
//! Event types:
//!
//! * `FlowStart` — activate a flow at its configured start time.
//! * `PollSend`  — ask a flow's endpoint for its next action (pacing timers,
//!   retransmission timers and post-ACK transmission opportunities all funnel
//!   through this one event).
//! * `LinkDone`  — a hop finished serializing a packet; forward it to the
//!   next hop (or its receiver) and start on the next one.
//! * `HopArrival` — a data packet propagated to an interior hop's queue.
//! * `ReceiverArrival` — a data packet reached its receiver; generate an ACK.
//! * `AckArrival` — an ACK reached the sender; inform the endpoint, poll it.
//! * `RateChange` — one hop's rate schedule µᵢ(t) reached a transition;
//!   re-plan the in-flight packet's serialization and re-size delay-specified
//!   buffers on that hop.
//! * `Tick` — the global 10 ms measurement tick (CCP reporting cadence).
//! * `Sample` — the recorder's sampling interval elapsed.

use crate::endpoint::{AckInfo, FlowEndpoint, SendAction};
use crate::eventq::CalendarQueue;
use crate::loss::{LossModel, LossProcess, Policer};
use crate::packet::{AckPacket, EcnCodepoint, FlowId, Packet};
use crate::queue::{
    delay_capacity_bytes, CoDelQueue, DropTailQueue, EcnMarking, EnqueueResult, PieQueue,
    QueueDiscipline, RedQueue,
};
use crate::recorder::{Recorder, RecorderConfig};
use crate::schedule::RateSchedule;
use crate::slab::Slab;
use crate::time::Time;
use std::collections::BTreeMap;

/// Which queue discipline the bottleneck uses.
#[derive(Debug, Clone)]
pub enum QueueKind {
    /// Drop-tail with an explicit byte capacity.
    DropTailBytes(u64),
    /// Drop-tail sized to this many seconds of buffering at the link rate
    /// ("100 ms of buffering" in the paper's experiment descriptions).
    DropTailDelay(f64),
    /// PIE AQM with the given target delay (seconds) and physical buffer (seconds).
    Pie {
        /// Target queueing delay in seconds.
        target_delay_s: f64,
        /// Physical buffer size in seconds of line rate.
        buffer_s: f64,
    },
    /// RED with a physical buffer of this many seconds of line rate.
    Red {
        /// Physical buffer size in seconds of line rate.
        buffer_s: f64,
    },
    /// CoDel with standard parameters and a physical buffer of this many seconds.
    CoDel {
        /// Physical buffer size in seconds of line rate.
        buffer_s: f64,
    },
}

/// Configuration of one link (hop) on the forward path.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Link rate µ(t) in bits per second — constant or time-varying.
    pub schedule: RateSchedule,
    /// Queue discipline in front of the link.
    pub queue: QueueKind,
    /// Random-loss model applied to packets before they reach the queue.
    pub loss: LossModel,
    /// Optional token-bucket policer in front of the queue.
    pub policer: Option<(f64, f64)>,
    /// ECN marking profile of the queue: [`EcnMarking::None`] keeps the pure
    /// drop behaviour; `Classic` / `Step` convert the discipline's congestion
    /// signal into CE marks for ECT packets (drops for everything else).
    pub ecn: EcnMarking,
    /// Propagation delay from the *previous* hop's output into this link's
    /// queue.  Ignored on the first hop a flow traverses (senders inject
    /// directly); after a flow's last hop the packet instead travels the
    /// data half of the flow's configured propagation RTT to its receiver.
    pub prop_delay: Time,
}

impl LinkConfig {
    /// A plain drop-tail bottleneck: `rate_bps` with `buffer_s` seconds of buffering.
    pub fn drop_tail(rate_bps: f64, buffer_s: f64) -> Self {
        LinkConfig {
            schedule: RateSchedule::constant(rate_bps),
            queue: QueueKind::DropTailDelay(buffer_s),
            loss: LossModel::None,
            policer: None,
            ecn: EcnMarking::None,
            prop_delay: Time::ZERO,
        }
    }

    /// Replace the (constant) rate with an arbitrary schedule.
    pub fn with_schedule(mut self, schedule: RateSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Set the inbound propagation delay (from the previous hop's output).
    pub fn with_prop_delay(mut self, delay: Time) -> Self {
        self.prop_delay = delay;
        self
    }

    /// Enable an ECN marking profile on this hop's queue.
    pub fn with_ecn(mut self, ecn: EcnMarking) -> Self {
        self.ecn = ecn;
        self
    }

    /// The link rate at simulation start, bits/s.
    pub fn initial_rate_bps(&self) -> f64 {
        self.schedule.initial_rate_bps()
    }
}

/// Whole-simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The forward path: an ordered, non-empty chain of links.  `path[0]` is
    /// the hop adjacent to the senders, the last hop hands packets to their
    /// receivers.  A one-element path is the paper's dumbbell.
    pub path: Vec<LinkConfig>,
    /// How long to simulate.
    pub duration: Time,
    /// Measurement tick interval delivered to every endpoint (CCP cadence).
    pub tick_interval: Time,
    /// Recorder configuration.
    pub recorder: RecorderConfig,
    /// Master seed for the engine's stochastic components (loss models).
    pub seed: u64,
}

impl SimConfig {
    /// A convenient default: a single-hop path of the given link rate (bps),
    /// buffer (seconds of line rate) and run duration in seconds.
    pub fn new(rate_bps: f64, buffer_s: f64, duration_s: f64) -> Self {
        SimConfig {
            path: vec![LinkConfig::drop_tail(rate_bps, buffer_s)],
            duration: Time::from_secs_f64(duration_s),
            tick_interval: Time::from_millis(10),
            recorder: RecorderConfig::default(),
            seed: 1,
        }
    }

    /// Append another hop to the forward path (builder style).
    pub fn with_hop(mut self, link: LinkConfig) -> Self {
        self.path.push(link);
        self
    }

    /// The first hop — the classic "the bottleneck" accessor for single-hop
    /// configurations.
    pub fn link_mut(&mut self) -> &mut LinkConfig {
        &mut self.path[0]
    }
}

/// Per-flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Human-readable label for results.
    pub label: String,
    /// Propagation RTT of the flow (excluding queueing and serialization).
    pub prop_rtt: Time,
    /// When the flow starts.
    pub start: Time,
    /// For the experiment ground truth: is this cross-traffic flow elastic?
    /// `None` marks the monitored (primary) flows, which are not cross traffic.
    pub counts_as_elastic: Option<bool>,
    /// Whether the recorder keeps full time series for this flow.
    pub monitored: bool,
    /// Flow size in bytes, if finite (used for FCT bookkeeping only; the
    /// endpoint itself decides when it is `Finished`).
    pub size_bytes: Option<u64>,
    /// First path hop this flow's packets traverse (0 = the full path).
    /// Cross traffic that merges in mid-path enters at a later hop.
    pub entry_hop: usize,
    /// Last path hop this flow traverses, inclusive (`None` = the path's
    /// final hop).  Cross traffic that exits mid-path leaves earlier.
    pub exit_hop: Option<usize>,
    /// Whether this flow negotiated ECN: its data packets are sent as
    /// [`EcnCodepoint::Ect`], marking queues may flip them to CE instead of
    /// dropping, and the receiver echoes the mark on the ACK.
    pub ecn: bool,
    /// Retire the flow when its endpoint reports `Finished`: drop the boxed
    /// endpoint (sender windows, SACK scoreboard, controller state) and the
    /// receiver's reassembly map, replacing the endpoint with an inert stub.
    /// Essential for fleet workloads where thousands of short flows churn
    /// through one run; meaningless for endpoints callers inspect afterwards.
    pub retire_on_finish: bool,
}

impl FlowConfig {
    /// A monitored, backlogged primary flow.
    pub fn primary(label: &str, prop_rtt: Time) -> Self {
        FlowConfig {
            label: label.to_string(),
            prop_rtt,
            start: Time::ZERO,
            counts_as_elastic: None,
            monitored: true,
            size_bytes: None,
            entry_hop: 0,
            exit_hop: None,
            ecn: false,
            retire_on_finish: false,
        }
    }

    /// An unmonitored cross-traffic flow.
    pub fn cross(label: &str, prop_rtt: Time, elastic: bool) -> Self {
        FlowConfig {
            label: label.to_string(),
            prop_rtt,
            start: Time::ZERO,
            counts_as_elastic: Some(elastic),
            monitored: false,
            size_bytes: None,
            entry_hop: 0,
            exit_hop: None,
            ecn: false,
            retire_on_finish: false,
        }
    }

    /// Enter the path at `hop` instead of its head (mid-path cross traffic).
    pub fn entering_at(mut self, hop: usize) -> Self {
        self.entry_hop = hop;
        self
    }

    /// Leave the path after `hop` instead of its tail (inclusive).
    pub fn exiting_at(mut self, hop: usize) -> Self {
        self.exit_hop = Some(hop);
        self
    }

    /// Set the start time.
    pub fn starting_at(mut self, start: Time) -> Self {
        self.start = start;
        self
    }

    /// Set the flow size.
    pub fn with_size(mut self, bytes: u64) -> Self {
        self.size_bytes = Some(bytes);
        self
    }

    /// Mark the flow as monitored (full time series recorded).
    pub fn monitored(mut self, yes: bool) -> Self {
        self.monitored = yes;
        self
    }

    /// Negotiate ECN: send data packets as ECT so marking queues mark
    /// instead of dropping.
    pub fn with_ecn(mut self, yes: bool) -> Self {
        self.ecn = yes;
        self
    }

    /// Free the flow's endpoint and receiver state when it finishes.
    pub fn retiring(mut self) -> Self {
        self.retire_on_finish = true;
        self
    }
}

/// A source of dynamically arriving flows: the engine asks it for the next
/// `(arrival time, config, endpoint)` triple and schedules the flow's
/// creation at that time, so an open-loop workload of thousands of flows
/// costs nothing until each one actually arrives.  Return `None` when the
/// process is exhausted.  Arrival times must be non-decreasing.
pub trait FlowSpawner: Send {
    /// The next flow to arrive, or `None` when no more flows will.
    fn next_flow(&mut self) -> Option<(Time, FlowConfig, Box<dyn FlowEndpoint>)>;
}

/// An inert endpoint installed in place of a retired flow's real one; any
/// straggler event for the flow (late ACK, in-flight drop) hits a no-op.
struct RetiredEndpoint;

impl FlowEndpoint for RetiredEndpoint {
    fn on_ack(&mut self, _ack: &AckInfo) {}
    fn poll_send(&mut self, _now: Time) -> SendAction {
        SendAction::Finished
    }
    fn label(&self) -> &str {
        "retired"
    }
}

/// Handle returned when adding a flow; use it to retrieve the endpoint after
/// the run for inspection (e.g. to read Nimbus's detector log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowHandle(pub FlowId);

/// Pending-event descriptor.  Packet and ACK payloads live in the engine's
/// slabs for the duration of their propagation; events carry only the 4-byte
/// slab ticket, which keeps every queue entry small (two words) no matter the
/// payload — the queue's push/pop traffic is dominated by the payload-free
/// `LinkDone`/`PollSend` kinds.
#[derive(Debug)]
enum EventKind {
    FlowStart(FlowId),
    PollSend(FlowId),
    /// Hop `hop` finished serializing its in-flight packet.  Tagged with the
    /// link generation at scheduling time: a rate transition mid-
    /// serialization bumps the generation and reschedules, orphaning the old
    /// entry, which must then be ignored.
    LinkDone {
        hop: usize,
        gen: u64,
    },
    /// A data packet propagated from one hop's output to the next hop's
    /// queue (the packet's `hop` field names the destination hop); the
    /// ticket indexes the engine's packet slab.
    HopArrival(u32),
    /// A data packet reached its receiver (packet-slab ticket).
    ReceiverArrival(u32),
    /// An ACK reached its sender (ACK-slab ticket).
    AckArrival(u32),
    /// Hop `hop`'s rate schedule reaches its next transition: advance the
    /// in-flight packet's byte progress under the outgoing rate and
    /// reschedule its completion under the incoming one.
    RateChange {
        hop: usize,
    },
    /// Spawner `idx`'s next pending flow arrives now: add it, fetch the
    /// following arrival and reschedule.
    Spawn(usize),
    Tick,
    Sample,
}

/// A registered [`FlowSpawner`] plus its pre-fetched next arrival (fetched
/// eagerly so the arrival *time* is known and schedulable before the flow
/// itself needs to exist).
struct SpawnerState {
    spawner: Box<dyn FlowSpawner>,
    pending: Option<(Time, FlowConfig, Box<dyn FlowEndpoint>)>,
}

struct FlowState {
    cfg: FlowConfig,
    endpoint: Box<dyn FlowEndpoint>,
    started: bool,
    finished: bool,
    // Receiver-side state.
    next_expected: u64,
    out_of_order: BTreeMap<u64, u32>,
    delivered_bytes: u64,
    // Sender-side bookkeeping maintained by the engine.
    last_cum_ack: u64,
    /// Earliest pending `PollSend` event for this flow, used to avoid
    /// scheduling redundant polls (which would otherwise accumulate and blow
    /// up the event queue on paced flows).
    next_scheduled_poll: Time,
}

/// The packet currently being serialized on a link, tracked by byte progress
/// so the schedule can change the rate under it.
struct InFlight {
    pkt: Packet,
    /// Bits still to serialize (at the current rate).
    remaining_bits: f64,
    /// Time the progress was last advanced (transmission start or the most
    /// recent rate transition).
    since: Time,
}

/// Runtime state of one path hop.
struct LinkState {
    queue: Box<dyn QueueDiscipline>,
    busy: bool,
    /// Packet currently being serialized on this hop's link.
    in_flight: Option<InFlight>,
    /// Link rate currently in effect, bits/s.
    current_rate_bps: f64,
    /// Generation counter validating `LinkDone` events across rate changes.
    gen: u64,
    loss: LossProcess,
    policer: Option<Policer>,
}

/// The path network simulator (a dumbbell when the path has one hop).
pub struct Network {
    cfg: SimConfig,
    now: Time,
    events: CalendarQueue<EventKind>,
    event_seq: u64,
    /// Data packets mid-propagation (inside a scheduled `HopArrival` /
    /// `ReceiverArrival` event).
    pkt_slab: Slab<Packet>,
    /// ACKs mid-propagation (inside a scheduled `AckArrival` event).
    ack_slab: Slab<AckPacket>,
    links: Vec<LinkState>,
    flows: Vec<FlowState>,
    /// Registered flow spawners (`None` only transiently during dispatch).
    spawners: Vec<Option<SpawnerState>>,
    /// Flow ids that have started and not yet finished, ascending.  The
    /// per-tick walk visits only these, so a fleet run's cost per tick tracks
    /// the *concurrent* population, not the total number of flows ever
    /// created.  Ascending order keeps the tick's endpoint-call order
    /// identical to the historical `0..flows.len()` scan.
    active_flows: Vec<FlowId>,
    recorder: Recorder,
    /// Reusable per-hop occupancy buffer for recorder samples.
    occupancy_buf: Vec<u64>,
    /// Reusable per-hop cumulative-mark buffer for recorder samples.
    marks_buf: Vec<u64>,
    /// Bytes admitted into the path at each flow's entry hop.
    total_enqueued_bytes: u64,
    /// Bytes delivered in order to receivers.
    total_delivered_bytes: u64,
    /// Bytes that arrived at receivers regardless of order.
    total_received_bytes: u64,
    /// Bytes dropped after admission (at interior hops of a multi-hop path).
    dropped_in_transit_bytes: u64,
    /// Bytes currently propagating between hops or towards a receiver
    /// (inside a scheduled `HopArrival` / `ReceiverArrival` event).
    in_transit_bytes: u64,
    events_processed: u64,
}

/// Serialization time of `bits` at `rate_bps` (already floored by the schedule).
fn bits_time(bits: f64, rate_bps: f64) -> Time {
    Time::from_secs_f64(bits / rate_bps.max(crate::schedule::MIN_RATE_BPS))
}

/// Per-hop seed derivation: hop 0 keeps the master seed byte-for-byte (so
/// single-hop runs reproduce the pre-path engine exactly); later hops fold in
/// their index so independent hops draw independent random streams.
fn hop_seed(master: u64, hop: usize) -> u64 {
    master.wrapping_add((hop as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl Network {
    /// Create an empty network from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(!cfg.path.is_empty(), "the path needs at least one hop");
        let links: Vec<LinkState> = cfg
            .path
            .iter()
            .enumerate()
            .map(|(hop, link)| {
                let rate = link.schedule.initial_rate_bps();
                assert!(rate > 0.0, "hop {hop} rate must be positive");
                let seed = hop_seed(cfg.seed, hop);
                let queue: Box<dyn QueueDiscipline> = match link.queue {
                    QueueKind::DropTailBytes(b) => Box::new(DropTailQueue::new(b)),
                    QueueKind::DropTailDelay(s) => {
                        Box::new(DropTailQueue::with_delay_capacity(rate, s))
                    }
                    QueueKind::Pie {
                        target_delay_s,
                        buffer_s,
                    } => Box::new(PieQueue::new(
                        delay_capacity_bytes(rate, buffer_s),
                        rate,
                        Time::from_secs_f64(target_delay_s),
                        seed,
                    )),
                    QueueKind::Red { buffer_s } => {
                        Box::new(RedQueue::new(delay_capacity_bytes(rate, buffer_s), seed))
                    }
                    QueueKind::CoDel { buffer_s } => {
                        Box::new(CoDelQueue::new(delay_capacity_bytes(rate, buffer_s)))
                    }
                };
                let mut queue = queue;
                queue.set_ecn_marking(link.ecn);
                // Step profiles measure depth in drain time; give every
                // discipline the initial rate (PIE already has it, the
                // others store it only for marking).
                queue.set_drain_rate_bps(rate);
                LinkState {
                    queue,
                    busy: false,
                    in_flight: None,
                    current_rate_bps: rate,
                    gen: 0,
                    loss: LossProcess::new(link.loss.clone(), seed),
                    policer: link
                        .policer
                        .map(|(rate_bps, burst)| Policer::new(rate_bps, burst)),
                }
            })
            .collect();
        let recorder = Recorder::new(cfg.recorder.clone(), cfg.path.len());
        Network {
            cfg,
            now: Time::ZERO,
            events: CalendarQueue::new(),
            event_seq: 0,
            pkt_slab: Slab::new(),
            ack_slab: Slab::new(),
            links,
            flows: Vec::new(),
            spawners: Vec::new(),
            active_flows: Vec::new(),
            recorder,
            occupancy_buf: Vec::new(),
            marks_buf: Vec::new(),
            total_enqueued_bytes: 0,
            total_delivered_bytes: 0,
            total_received_bytes: 0,
            dropped_in_transit_bytes: 0,
            in_transit_bytes: 0,
            events_processed: 0,
        }
    }

    /// Number of hops on the forward path.
    pub fn num_hops(&self) -> usize {
        self.links.len()
    }

    /// The first hop's rate currently in effect, in bits per second.
    pub fn link_rate_bps(&self) -> f64 {
        self.links[0].current_rate_bps
    }

    /// The rate currently in effect on `hop`, bits/s.
    pub fn hop_rate_bps(&self, hop: usize) -> f64 {
        self.links[hop].current_rate_bps
    }

    /// The first hop's configured rate schedule µ(t) (the primary bottleneck
    /// of single-hop configurations).
    pub fn rate_schedule(&self) -> &RateSchedule {
        &self.cfg.path[0].schedule
    }

    /// Every hop's configured rate schedule, in path order.
    pub fn hop_schedules(&self) -> Vec<&RateSchedule> {
        self.cfg.path.iter().map(|l| &l.schedule).collect()
    }

    /// The path's true bottleneck rate at `t`: the minimum of every hop's
    /// schedule — the rate an end-to-end flow can sustain at that instant.
    pub fn path_rate_at(&self, t: Time) -> f64 {
        self.cfg
            .path
            .iter()
            .map(|l| l.schedule.rate_at(t))
            .fold(f64::INFINITY, f64::min)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Add a flow. Returns a handle whose index identifies the flow in the
    /// recorder output.
    pub fn add_flow(&mut self, cfg: FlowConfig, endpoint: Box<dyn FlowEndpoint>) -> FlowHandle {
        assert!(
            cfg.entry_hop < self.links.len(),
            "flow '{}' enters at hop {} of a {}-hop path",
            cfg.label,
            cfg.entry_hop,
            self.links.len()
        );
        if let Some(exit) = cfg.exit_hop {
            assert!(
                exit >= cfg.entry_hop && exit < self.links.len(),
                "flow '{}' exits at hop {exit} outside [{}, {})",
                cfg.label,
                cfg.entry_hop,
                self.links.len()
            );
        }
        let id = self.flows.len();
        self.recorder.register_flow(
            id,
            cfg.label.clone(),
            cfg.counts_as_elastic,
            cfg.monitored,
            cfg.start,
            cfg.size_bytes,
        );
        self.schedule(cfg.start, EventKind::FlowStart(id));
        self.flows.push(FlowState {
            cfg,
            endpoint,
            started: false,
            finished: false,
            next_expected: 0,
            out_of_order: BTreeMap::new(),
            delivered_bytes: 0,
            last_cum_ack: 0,
            next_scheduled_poll: Time::MAX,
        });
        FlowHandle(id)
    }

    /// Register an open-loop flow source.  Its first arrival is fetched and
    /// scheduled immediately; each arrival event adds the pending flow and
    /// fetches the next, so at most one un-created flow per spawner is ever
    /// held in memory.
    pub fn add_spawner(&mut self, spawner: Box<dyn FlowSpawner>) {
        let mut state = SpawnerState {
            spawner,
            pending: None,
        };
        if let Some(next) = state.spawner.next_flow() {
            let at = next.0;
            state.pending = Some(next);
            let idx = self.spawners.len();
            self.schedule(at, EventKind::Spawn(idx));
        }
        self.spawners.push(Some(state));
    }

    /// Total number of flows ever created (static adds plus spawned).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Flows currently started and not finished.  (The internal active list
    /// is compacted lazily at each tick, so filter here for an exact count.)
    pub fn active_flow_count(&self) -> usize {
        self.active_flows
            .iter()
            .filter(|&&id| !self.flows[id].finished)
            .count()
    }

    /// Flows that finished and had their endpoint/receiver state retired.
    pub fn retired_flow_count(&self) -> usize {
        self.flows
            .iter()
            .filter(|f| f.finished && f.cfg.retire_on_finish)
            .count()
    }

    /// Run the simulation to completion (until `duration`).
    pub fn run(&mut self) {
        self.schedule(self.cfg.tick_interval, EventKind::Tick);
        self.schedule(self.cfg.recorder.sample_interval, EventKind::Sample);
        for hop in 0..self.cfg.path.len() {
            if let Some(at) = self.cfg.path[hop]
                .schedule
                .next_transition_after(Time::ZERO)
            {
                self.schedule(at, EventKind::RateChange { hop });
            }
        }
        while let Some((at, _seq, kind)) = self.events.pop() {
            if at > self.cfg.duration {
                break;
            }
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events_processed += 1;
            self.dispatch(kind);
        }
        // Advance the clock to the configured end of the run: the loop above
        // leaves `now` at the last event at or before `duration`, which would
        // stamp the closing sample early and truncate `now()`-based
        // steady-state windows.  This must not depend on any hop's `LinkDone`
        // firing — a hop whose schedule ends in a (near-)zero-rate outage
        // schedules its completion far beyond `duration` and still closes here.
        if self.now < self.cfg.duration {
            self.now = self.cfg.duration;
        }
        // Close the final recorder interval.
        self.take_sample();
    }

    /// Refresh the reusable occupancy buffer and close a recorder interval.
    fn take_sample(&mut self) {
        self.occupancy_buf.clear();
        self.occupancy_buf
            .extend(self.links.iter().map(|l| l.queue.len_bytes()));
        self.recorder.sample(self.now, &self.occupancy_buf);
        self.marks_buf.clear();
        self.marks_buf
            .extend(self.links.iter().map(|l| l.queue.marks()));
        self.recorder.sample_marks(self.now, &self.marks_buf);
    }

    /// Consume the network, returning the recorder (results) and the flow
    /// endpoints (so callers can inspect controller-internal logs).
    pub fn finish(self) -> (Recorder, Vec<Box<dyn FlowEndpoint>>) {
        (
            self.recorder,
            self.flows.into_iter().map(|f| f.endpoint).collect(),
        )
    }

    /// Access the recorder during/after a run.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Borrow a flow's endpoint (e.g. to inspect controller state mid-run in tests).
    pub fn endpoint(&self, handle: FlowHandle) -> &dyn FlowEndpoint {
        self.flows[handle.0].endpoint.as_ref()
    }

    /// Total number of events processed (diagnostics / benchmarking).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total bytes admitted into the path at the flows' entry hops.
    pub fn total_enqueued_bytes(&self) -> u64 {
        self.total_enqueued_bytes
    }

    /// Total bytes delivered in order to receivers.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.total_delivered_bytes
    }

    /// Total bytes that arrived at receivers, regardless of ordering.
    pub fn total_received_bytes(&self) -> u64 {
        self.total_received_bytes
    }

    /// Bytes dropped after admission (interior hops of a multi-hop path).
    pub fn dropped_in_transit_bytes(&self) -> u64 {
        self.dropped_in_transit_bytes
    }

    /// Bytes currently inside the network: queued at a hop, mid-serialization
    /// on a link, or propagating between hops / towards a receiver.  Together
    /// with the counters above this makes admission conservation exact:
    /// `total_enqueued = total_received + dropped_in_transit + in_network`.
    pub fn in_network_bytes(&self) -> u64 {
        self.links
            .iter()
            .map(|l| {
                l.queue.len_bytes() + l.in_flight.as_ref().map_or(0, |f| f.pkt.size_bytes as u64)
            })
            .sum::<u64>()
            + self.in_transit_bytes
    }

    fn schedule(&mut self, at: Time, kind: EventKind) {
        let at = at.max(self.now);
        self.event_seq += 1;
        self.events.push(at, self.event_seq, kind);
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::FlowStart(id) => {
                if !self.flows[id].started {
                    self.flows[id].started = true;
                    let pos = self.active_flows.binary_search(&id).unwrap_or_else(|p| p);
                    self.active_flows.insert(pos, id);
                    self.recorder.on_flow_start(id);
                    let now = self.now;
                    self.flows[id].endpoint.on_start(now);
                    self.poll_flow(id);
                }
            }
            EventKind::PollSend(id) => {
                // Only the poll recorded in `next_scheduled_poll` is live; an
                // entry left in the heap after an earlier poll superseded it
                // must be dropped here, otherwise every stale entry would
                // reschedule itself and the poll chains would multiply without
                // bound (each ACK that moves the wake-up earlier would leak
                // one immortal chain).
                if self.now != self.flows[id].next_scheduled_poll {
                    return;
                }
                self.flows[id].next_scheduled_poll = Time::MAX;
                self.poll_flow(id)
            }
            EventKind::LinkDone { hop, gen } => self.on_link_done(hop, gen),
            EventKind::HopArrival(ticket) => {
                let pkt = self.pkt_slab.take(ticket);
                self.on_hop_arrival(pkt);
            }
            EventKind::ReceiverArrival(ticket) => {
                let pkt = self.pkt_slab.take(ticket);
                self.on_receiver_arrival(pkt);
            }
            EventKind::AckArrival(ticket) => {
                let ack = self.ack_slab.take(ticket);
                self.on_ack_arrival(ack);
            }
            EventKind::RateChange { hop } => self.on_rate_change(hop),
            EventKind::Spawn(idx) => {
                // Take the state out so `add_flow` can borrow `self` freely.
                if let Some(mut state) = self.spawners[idx].take() {
                    if let Some((at, cfg, endpoint)) = state.pending.take() {
                        debug_assert!(at <= self.now, "spawn fired before its arrival time");
                        // The flow's `FlowStart` lands at the same instant but
                        // a later event sequence number, so it fires right
                        // after this event — deterministically.
                        self.add_flow(cfg, endpoint);
                    }
                    if let Some(next) = state.spawner.next_flow() {
                        let at = next.0;
                        state.pending = Some(next);
                        self.schedule(at, EventKind::Spawn(idx));
                    }
                    self.spawners[idx] = Some(state);
                }
            }
            EventKind::Tick => {
                let now = self.now;
                // Walk by index (not iterator) because `poll_flow` needs
                // `&mut self`; the list only grows at `FlowStart`, never
                // during a tick, so the bound is stable.
                let mut i = 0;
                while i < self.active_flows.len() {
                    let id = self.active_flows[i];
                    if !self.flows[id].finished {
                        self.flows[id].endpoint.on_tick(now);
                        self.poll_flow(id);
                    }
                    i += 1;
                }
                self.active_flows.retain(|&id| !self.flows[id].finished);
                self.schedule(now + self.cfg.tick_interval, EventKind::Tick);
            }
            EventKind::Sample => {
                self.take_sample();
                let next = self.now + self.cfg.recorder.sample_interval;
                self.schedule(next, EventKind::Sample);
            }
        }
    }

    fn poll_flow(&mut self, id: FlowId) {
        if !self.flows[id].started || self.flows[id].finished {
            return;
        }
        // Cap the number of back-to-back transmissions per poll so a buggy
        // endpoint cannot wedge the simulation.
        const MAX_BURST: usize = 100_000;
        for iteration in 0.. {
            assert!(
                iteration < MAX_BURST,
                "flow {id} ({}) transmitted {MAX_BURST} packets in one poll; runaway endpoint",
                self.flows[id].cfg.label
            );
            let action = self.flows[id].endpoint.poll_send(self.now);
            match action {
                SendAction::Transmit {
                    seq,
                    bytes,
                    retransmit,
                } => {
                    self.transmit(id, seq, bytes, retransmit);
                }
                SendAction::WaitUntil(t) => {
                    // Guard against endpoints asking to be polled in the past,
                    // which would busy-loop the event queue.
                    let t = t.max(self.now + Time::from_nanos(1));
                    // Only schedule if no earlier (or equal) poll is already
                    // pending; otherwise ACK-triggered polls on paced flows
                    // would pile up duplicate events.
                    if self.flows[id].next_scheduled_poll > t {
                        self.flows[id].next_scheduled_poll = t;
                        self.schedule(t, EventKind::PollSend(id));
                    }
                    break;
                }
                SendAction::Idle => break,
                SendAction::Finished => {
                    self.flows[id].finished = true;
                    self.recorder.on_finish(id, self.now);
                    if self.flows[id].cfg.retire_on_finish {
                        self.retire_flow(id);
                    }
                    break;
                }
            }
        }
    }

    /// Free a finished flow's heavyweight state: the boxed endpoint (sender
    /// window, SACK scoreboard, congestion controller) and the receiver's
    /// reassembly map.  Straggler events — an ACK still propagating, a packet
    /// dropped in transit — find a no-op endpoint and a `finished` flag that
    /// short-circuits the ACK path, so late arrivals are harmless.
    fn retire_flow(&mut self, id: FlowId) {
        let flow = &mut self.flows[id];
        flow.endpoint = Box::new(RetiredEndpoint);
        flow.out_of_order = BTreeMap::new();
    }

    /// The last hop flow `id` traverses.
    fn exit_hop_of(&self, id: FlowId) -> usize {
        self.flows[id].cfg.exit_hop.unwrap_or(self.links.len() - 1)
    }

    /// Offer `pkt` to `hop`'s ingress: policer, then random loss, then the
    /// queue — the same order the single-link engine used.  On a drop the
    /// recorder and the owning endpoint are notified; returns whether the
    /// packet was accepted.
    fn offer_to_hop(&mut self, hop: usize, pkt: Packet) -> bool {
        let id = pkt.flow;
        let seq = pkt.seq;
        let bytes = pkt.size_bytes;
        let link = &mut self.links[hop];
        let policed = match &mut link.policer {
            Some(pol) => !pol.conforms(bytes, self.now),
            None => false,
        };
        // Short-circuit keeps the loss RNG untouched on a policer drop,
        // exactly as the single-link engine behaved.
        let lost = policed || link.loss.should_drop();
        let accepted = !lost && link.queue.enqueue(pkt, self.now) == EnqueueResult::Accepted;
        if !accepted {
            self.recorder.on_drop(id, hop);
            self.flows[id].endpoint.on_packet_dropped(seq, self.now);
        }
        accepted
    }

    fn transmit(&mut self, id: FlowId, seq: u64, bytes: u32, retransmit: bool) {
        debug_assert!(bytes > 0, "cannot transmit an empty packet");
        let entry = self.flows[id].cfg.entry_hop;
        let mut pkt = Packet::new(id, seq, bytes, self.now, retransmit);
        pkt.hop = entry;
        if self.flows[id].cfg.ecn {
            pkt.ecn = EcnCodepoint::Ect;
        }
        if self.offer_to_hop(entry, pkt) {
            self.total_enqueued_bytes += bytes as u64;
            self.recorder.on_enqueue(id, bytes);
            self.maybe_start_transmission(entry);
        }
    }

    /// A packet propagated to an interior hop's queue.
    fn on_hop_arrival(&mut self, pkt: Packet) {
        let hop = pkt.hop;
        let bytes = pkt.size_bytes as u64;
        let id = pkt.flow;
        self.in_transit_bytes -= bytes;
        if self.offer_to_hop(hop, pkt) {
            self.maybe_start_transmission(hop);
        } else {
            // The bytes were admitted upstream but died here.
            self.dropped_in_transit_bytes += bytes;
            self.poll_flow(id);
        }
    }

    fn maybe_start_transmission(&mut self, hop: usize) {
        if self.links[hop].busy {
            return;
        }
        if let Some(mut pkt) = self.links[hop].queue.dequeue(self.now) {
            self.links[hop].busy = true;
            let delay = pkt.queueing_delay(self.now);
            pkt.cum_queue_delay += delay;
            // The recorder sees one sample per packet: its whole-path
            // queueing delay, reported as it clears its final queue.
            if hop >= self.exit_hop_of(pkt.flow) {
                self.recorder.on_dequeue(pkt.flow, pkt.cum_queue_delay);
            }
            let bits = pkt.size_bytes as f64 * 8.0;
            let tx = bits_time(bits, self.links[hop].current_rate_bps);
            self.links[hop].in_flight = Some(InFlight {
                pkt,
                remaining_bits: bits,
                since: self.now,
            });
            self.links[hop].gen += 1;
            let gen = self.links[hop].gen;
            self.schedule(self.now + tx, EventKind::LinkDone { hop, gen });
        }
    }

    /// Apply a scheduled rate transition on `hop`.  The in-flight packet (if
    /// any) has its byte progress advanced under the outgoing rate and its
    /// completion rescheduled under the incoming one; delay-sized queue
    /// capacities are recomputed so "x seconds of buffering" keeps meaning
    /// x seconds.
    fn on_rate_change(&mut self, hop: usize) {
        let new_rate = self.cfg.path[hop].schedule.rate_at(self.now);
        let link = &mut self.links[hop];
        if let Some(inf) = &mut link.in_flight {
            let elapsed = self.now.saturating_sub(inf.since).as_secs_f64();
            inf.remaining_bits = (inf.remaining_bits - elapsed * link.current_rate_bps).max(0.0);
            inf.since = self.now;
        }
        link.current_rate_bps = new_rate;
        if let Some(inf) = &link.in_flight {
            let tx = bits_time(inf.remaining_bits, new_rate);
            link.gen += 1;
            let gen = link.gen;
            let at = self.now + tx;
            self.schedule(at, EventKind::LinkDone { hop, gen });
        }
        // Keep delay-specified buffers coherent with the new rate.
        let buffer_s = match self.cfg.path[hop].queue {
            QueueKind::DropTailBytes(_) => None,
            QueueKind::DropTailDelay(s) => Some(s),
            QueueKind::Pie { buffer_s, .. } => Some(buffer_s),
            QueueKind::Red { buffer_s } => Some(buffer_s),
            QueueKind::CoDel { buffer_s } => Some(buffer_s),
        };
        let link = &mut self.links[hop];
        if let Some(s) = buffer_s {
            link.queue
                .set_capacity_bytes(delay_capacity_bytes(new_rate, s));
        }
        link.queue.set_drain_rate_bps(new_rate);
        if let Some(at) = self.cfg.path[hop].schedule.next_transition_after(self.now) {
            self.schedule(at, EventKind::RateChange { hop });
        }
    }

    fn on_link_done(&mut self, hop: usize, gen: u64) {
        // A rate transition mid-serialization reschedules completion under a
        // new generation; the orphaned entry must not complete the packet.
        if gen != self.links[hop].gen {
            return;
        }
        self.links[hop].busy = false;
        if let Some(inf) = self.links[hop].in_flight.take() {
            let mut pkt = inf.pkt;
            self.in_transit_bytes += pkt.size_bytes as u64;
            if hop >= self.exit_hop_of(pkt.flow) {
                // Last hop for this flow: propagate to the receiver over the
                // data half of the configured RTT.
                let prop = Time::from_nanos(self.flows[pkt.flow].cfg.prop_rtt.as_nanos() / 2);
                let ticket = self.pkt_slab.insert(pkt);
                self.schedule(self.now + prop, EventKind::ReceiverArrival(ticket));
            } else {
                // Interior hop: propagate into the next hop's queue over
                // that hop's configured inbound delay.
                let delay = self.cfg.path[hop + 1].prop_delay;
                pkt.hop = hop + 1;
                let ticket = self.pkt_slab.insert(pkt);
                self.schedule(self.now + delay, EventKind::HopArrival(ticket));
            }
        }
        self.maybe_start_transmission(hop);
    }

    fn on_receiver_arrival(&mut self, pkt: Packet) {
        let id = pkt.flow;
        self.in_transit_bytes -= pkt.size_bytes as u64;
        self.total_received_bytes += pkt.size_bytes as u64;
        let flow = &mut self.flows[id];
        // Receiver: cumulative ACK generation with duplicate-data suppression.
        let mut newly_delivered = 0u64;
        if pkt.seq >= flow.next_expected && !flow.out_of_order.contains_key(&pkt.seq) {
            flow.out_of_order.insert(pkt.seq, pkt.size_bytes);
        }
        while let Some(sz) = flow.out_of_order.remove(&flow.next_expected) {
            newly_delivered += sz as u64;
            flow.next_expected += 1;
        }
        flow.delivered_bytes += newly_delivered;
        self.total_delivered_bytes += newly_delivered;
        self.recorder.on_arrival(id, pkt.size_bytes as u64);
        self.recorder.on_delivered(id, newly_delivered);

        let ack = AckPacket {
            flow: id,
            cum_ack: flow.next_expected,
            triggering_seq: pkt.seq,
            triggering_bytes: pkt.size_bytes,
            data_sent_at: pkt.sent_at,
            received_at: self.now,
            newly_delivered_bytes: newly_delivered,
            total_delivered_bytes: flow.delivered_bytes,
            ce: pkt.ecn == EcnCodepoint::Ce,
        };
        let ack_delay = Time::from_nanos(flow.cfg.prop_rtt.as_nanos() / 2);
        let ticket = self.ack_slab.insert(ack);
        self.schedule(self.now + ack_delay, EventKind::AckArrival(ticket));
    }

    fn on_ack_arrival(&mut self, ack: AckPacket) {
        let id = ack.flow;
        if self.flows[id].finished {
            return;
        }
        let is_duplicate = ack.cum_ack <= self.flows[id].last_cum_ack;
        self.flows[id].last_cum_ack = self.flows[id].last_cum_ack.max(ack.cum_ack);
        let rtt = self.now.saturating_sub(ack.data_sent_at);
        self.recorder.on_rtt_sample(id, rtt);
        let info = AckInfo {
            now: self.now,
            cum_ack: ack.cum_ack,
            triggering_seq: ack.triggering_seq,
            triggering_bytes: ack.triggering_bytes,
            data_sent_at: ack.data_sent_at,
            rtt_sample: rtt,
            is_duplicate,
            newly_delivered_bytes: ack.newly_delivered_bytes,
            total_delivered_bytes: ack.total_delivered_bytes,
            ce: ack.ce,
        };
        self.flows[id].endpoint.on_ack(&info);
        self.poll_flow(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A constant-bit-rate, paced sender: one MSS every `interval`.
    struct PacedCbr {
        rate_bps: f64,
        mss: u32,
        next_seq: u64,
        next_send: Time,
        total_packets: Option<u64>,
    }

    impl PacedCbr {
        fn new(rate_bps: f64) -> Self {
            PacedCbr {
                rate_bps,
                mss: 1500,
                next_seq: 0,
                next_send: Time::ZERO,
                total_packets: None,
            }
        }
        fn with_limit(mut self, packets: u64) -> Self {
            self.total_packets = Some(packets);
            self
        }
    }

    impl FlowEndpoint for PacedCbr {
        fn on_ack(&mut self, _ack: &AckInfo) {}
        fn poll_send(&mut self, now: Time) -> SendAction {
            if let Some(limit) = self.total_packets {
                if self.next_seq >= limit {
                    return SendAction::Finished;
                }
            }
            if now >= self.next_send {
                let seq = self.next_seq;
                self.next_seq += 1;
                let gap = Time::from_secs_f64(self.mss as f64 * 8.0 / self.rate_bps);
                self.next_send = if self.next_send == Time::ZERO {
                    now + gap
                } else {
                    self.next_send + gap
                };
                SendAction::Transmit {
                    seq,
                    bytes: self.mss,
                    retransmit: false,
                }
            } else {
                SendAction::WaitUntil(self.next_send)
            }
        }
        fn label(&self) -> &str {
            "paced-cbr"
        }
    }

    /// A fixed-window, ACK-clocked sender (no loss recovery; relies on the
    /// queue being big enough in these tests).
    struct FixedWindow {
        window: u64,
        next_seq: u64,
        cum_ack: u64,
        mss: u32,
    }

    impl FixedWindow {
        fn new(window: u64) -> Self {
            FixedWindow {
                window,
                next_seq: 0,
                cum_ack: 0,
                mss: 1500,
            }
        }
    }

    impl FlowEndpoint for FixedWindow {
        fn on_ack(&mut self, ack: &AckInfo) {
            self.cum_ack = self.cum_ack.max(ack.cum_ack);
        }
        fn poll_send(&mut self, _now: Time) -> SendAction {
            if self.next_seq < self.cum_ack + self.window {
                let seq = self.next_seq;
                self.next_seq += 1;
                SendAction::Transmit {
                    seq,
                    bytes: self.mss,
                    retransmit: false,
                }
            } else {
                SendAction::Idle
            }
        }
        fn label(&self) -> &str {
            "fixed-window"
        }
    }

    fn base_config(rate_bps: f64, duration_s: f64) -> SimConfig {
        SimConfig::new(rate_bps, 0.1, duration_s)
    }

    #[test]
    fn paced_flow_below_capacity_sees_no_queueing() {
        // 10 Mbit/s offered on a 96 Mbit/s link: essentially zero queueing delay.
        let mut net = Network::new(base_config(96e6, 10.0));
        let h = net.add_flow(
            FlowConfig::primary("cbr", Time::from_millis(50)),
            Box::new(PacedCbr::new(10e6)),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        // Throughput ~10 Mbit/s after startup.
        let tput = rec.throughput_mbps[slot].mean_in_range(2.0, 10.0);
        assert!((tput - 10.0).abs() < 1.0, "throughput {tput}");
        // Mean RTT close to the propagation RTT.
        let rtt = rec.rtt_ms[slot].mean_in_range(2.0, 10.0);
        assert!((rtt - 50.0).abs() < 2.0, "rtt {rtt}");
        // Per-packet queueing delay ~0.
        let qd = rec.queue_delay_ms[slot].mean_in_range(2.0, 10.0);
        assert!(qd < 1.0, "queue delay {qd}");
    }

    #[test]
    fn paced_flow_above_capacity_is_limited_to_link_rate() {
        // Offer 20 Mbit/s on a 12 Mbit/s link: delivery is capped at link rate
        // and the (100 ms) buffer fills, so queueing delay approaches 100 ms.
        let mut net = Network::new(base_config(12e6, 20.0));
        let h = net.add_flow(
            FlowConfig::primary("cbr", Time::from_millis(20)),
            Box::new(PacedCbr::new(20e6)),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let tput = rec.throughput_mbps[slot].mean_in_range(5.0, 20.0);
        assert!((tput - 12.0).abs() < 1.0, "throughput {tput}");
        let qd = rec.queue_delay_ms[slot].mean_in_range(5.0, 20.0);
        assert!(qd > 60.0 && qd <= 105.0, "queue delay {qd}");
        // Drops must have occurred once the buffer filled.
        assert!(rec.flows[h.0].dropped_packets > 0);
    }

    #[test]
    fn ack_clocked_window_flow_matches_bandwidth_delay_product() {
        // Window = 2 * BDP on an otherwise empty link: the flow saturates the
        // link and the standing queue is about one BDP.
        let rate: f64 = 48e6;
        let rtt = Time::from_millis(50);
        let bdp_packets = (rate * 0.050 / 8.0 / 1500.0).round() as u64; // = 200
        let mut net = Network::new(base_config(rate, 30.0));
        let h = net.add_flow(
            FlowConfig::primary("window", rtt),
            Box::new(FixedWindow::new(bdp_packets * 2)),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let tput = rec.throughput_mbps[slot].mean_in_range(5.0, 30.0);
        assert!((tput - 48.0).abs() < 2.0, "throughput {tput}");
        // Standing queue of ~1 BDP => queueing delay ~ RTT (50 ms).
        let qd = rec.queue_delay_ms[slot].mean_in_range(5.0, 30.0);
        assert!((qd - 50.0).abs() < 10.0, "queue delay {qd}");
        // RTT observed = propagation + queueing ≈ 100 ms.
        let rtt_obs = rec.rtt_ms[slot].mean_in_range(5.0, 30.0);
        assert!((rtt_obs - 100.0).abs() < 12.0, "rtt {rtt_obs}");
    }

    #[test]
    fn two_equal_window_flows_share_the_link() {
        let rate = 96e6;
        let mut net = Network::new(base_config(rate, 30.0));
        let h1 = net.add_flow(
            FlowConfig::primary("a", Time::from_millis(50)),
            Box::new(FixedWindow::new(400)),
        );
        let h2 = net.add_flow(
            FlowConfig::primary("b", Time::from_millis(50)),
            Box::new(FixedWindow::new(400)),
        );
        net.run();
        let (rec, _) = net.finish();
        let t1 = rec.throughput_mbps[rec.monitored_slot(h1.0).unwrap()].mean_in_range(10.0, 30.0);
        let t2 = rec.throughput_mbps[rec.monitored_slot(h2.0).unwrap()].mean_in_range(10.0, 30.0);
        assert!((t1 + t2 - 96.0).abs() < 4.0, "sum {t1}+{t2}");
        assert!((t1 - t2).abs() < 10.0, "unfair split {t1} vs {t2}");
    }

    #[test]
    fn finite_flow_records_completion_time() {
        let mut net = Network::new(base_config(96e6, 30.0));
        let h = net.add_flow(
            FlowConfig::cross("finite", Time::from_millis(20), false)
                .with_size(150_000)
                .starting_at(Time::from_secs_f64(1.0)),
            Box::new(PacedCbr::new(12e6).with_limit(100)), // 100 * 1500 B = 150 kB
        );
        net.run();
        let (rec, _) = net.finish();
        let stats = &rec.flows[h.0];
        assert!(stats.finish.is_some(), "flow should have finished");
        let fct = stats.fct().unwrap().as_secs_f64();
        // 150 kB at 12 Mbit/s is 0.1 s; allow pacing/ack slack.
        assert!(fct > 0.05 && fct < 0.5, "fct {fct}");
        assert_eq!(stats.delivered_bytes, 150_000);
    }

    #[test]
    fn byte_conservation_delivered_never_exceeds_enqueued() {
        let mut net = Network::new(base_config(24e6, 10.0));
        net.add_flow(
            FlowConfig::primary("a", Time::from_millis(30)),
            Box::new(PacedCbr::new(30e6)),
        );
        net.add_flow(
            FlowConfig::cross("b", Time::from_millis(60), false),
            Box::new(PacedCbr::new(10e6)),
        );
        net.run();
        assert!(net.total_delivered_bytes() <= net.total_enqueued_bytes());
        assert!(net.total_delivered_bytes() > 0);
        // Link can have delivered at most rate * duration.
        let cap = 24e6 * 10.0 / 8.0;
        assert!((net.total_delivered_bytes() as f64) <= cap * 1.01);
    }

    #[test]
    fn ground_truth_elastic_fraction_tracks_flow_tags() {
        let mut net = Network::new(base_config(96e6, 10.0));
        // 10 Mbit/s tagged elastic + 30 Mbit/s tagged inelastic => fraction 0.25.
        net.add_flow(
            FlowConfig::cross("elastic", Time::from_millis(50), true),
            Box::new(PacedCbr::new(10e6)),
        );
        net.add_flow(
            FlowConfig::cross("inelastic", Time::from_millis(50), false),
            Box::new(PacedCbr::new(30e6)),
        );
        net.run();
        let (rec, _) = net.finish();
        let frac: Vec<f64> = rec
            .elastic_fraction
            .t
            .iter()
            .zip(rec.elastic_fraction.v.iter())
            .filter(|(t, _)| **t > 2.0)
            .map(|(_, v)| *v)
            .collect();
        let mean = frac.iter().sum::<f64>() / frac.len() as f64;
        assert!((mean - 0.25).abs() < 0.05, "elastic fraction {mean}");
        // Cross rate ground truth ~40 Mbit/s.
        let z = rec.cross_rate_mbps.mean_in_range(2.0, 10.0);
        assert!((z - 40.0).abs() < 3.0, "cross rate {z}");
    }

    #[test]
    fn random_loss_model_drops_packets() {
        let mut cfg = base_config(96e6, 5.0);
        cfg.link_mut().loss = LossModel::Bernoulli { p: 0.05 };
        let mut net = Network::new(cfg);
        let h = net.add_flow(
            FlowConfig::primary("lossy", Time::from_millis(20)),
            Box::new(PacedCbr::new(20e6)),
        );
        net.run();
        let (rec, _) = net.finish();
        assert!(rec.flows[h.0].dropped_packets > 50);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let mut cfg = base_config(48e6, 5.0);
            cfg.link_mut().loss = LossModel::Bernoulli { p: 0.01 };
            cfg.seed = 99;
            let mut net = Network::new(cfg);
            net.add_flow(
                FlowConfig::primary("a", Time::from_millis(40)),
                Box::new(FixedWindow::new(300)),
            );
            net.add_flow(
                FlowConfig::cross("b", Time::from_millis(40), false),
                Box::new(PacedCbr::new(12e6)),
            );
            net.run();
            (
                net.total_delivered_bytes(),
                net.total_enqueued_bytes(),
                net.events_processed(),
            )
        };
        assert_eq!(run(), run());
    }

    /// A fixed-count open-loop spawner: `count` retiring 15 kB flows, one
    /// every `interval`, starting at t = 0.5 s.
    struct BurstSpawner {
        interval_s: f64,
        emitted: u64,
        count: u64,
    }

    impl FlowSpawner for BurstSpawner {
        fn next_flow(&mut self) -> Option<(Time, FlowConfig, Box<dyn FlowEndpoint>)> {
            if self.emitted >= self.count {
                return None;
            }
            let i = self.emitted;
            self.emitted += 1;
            let at = Time::from_secs_f64(0.5 + i as f64 * self.interval_s);
            let cfg = FlowConfig::cross(&format!("spawn-{i}"), Time::from_millis(20), false)
                .starting_at(at)
                .with_size(15_000)
                .retiring();
            let ep: Box<dyn FlowEndpoint> = Box::new(PacedCbr::new(6e6).with_limit(10));
            Some((at, cfg, ep))
        }
    }

    #[test]
    fn spawner_creates_finishes_and_retires_flows() {
        let mut net = Network::new(base_config(96e6, 10.0));
        net.add_spawner(Box::new(BurstSpawner {
            interval_s: 0.2,
            emitted: 0,
            count: 20,
        }));
        net.run();
        assert_eq!(net.flow_count(), 20);
        assert_eq!(net.active_flow_count(), 0, "all spawned flows complete");
        assert_eq!(net.retired_flow_count(), 20);
        let (rec, endpoints) = net.finish();
        for (i, stats) in rec.flows.iter().enumerate() {
            assert!(stats.started, "flow {i} started");
            assert!(stats.finish.is_some(), "flow {i} finished");
            assert_eq!(stats.delivered_bytes, 15_000, "flow {i} delivered");
            assert!(stats.fct().unwrap() > Time::ZERO);
        }
        // Retirement swapped every endpoint for the inert stub.
        for ep in &endpoints {
            assert_eq!(ep.label(), "retired");
        }
    }

    #[test]
    fn spawned_runs_are_deterministic() {
        let run = || {
            let mut cfg = base_config(48e6, 8.0);
            cfg.link_mut().loss = LossModel::Bernoulli { p: 0.005 };
            cfg.seed = 7;
            let mut net = Network::new(cfg);
            net.add_flow(
                FlowConfig::primary("long", Time::from_millis(40)),
                Box::new(FixedWindow::new(200)),
            );
            net.add_spawner(Box::new(BurstSpawner {
                interval_s: 0.1,
                emitted: 0,
                count: 50,
            }));
            net.run();
            (
                net.total_delivered_bytes(),
                net.total_enqueued_bytes(),
                net.events_processed(),
                net.flow_count(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unretired_finite_flows_keep_their_endpoints() {
        let mut net = Network::new(base_config(96e6, 10.0));
        let h = net.add_flow(
            FlowConfig::cross("finite", Time::from_millis(20), false).with_size(15_000),
            Box::new(PacedCbr::new(6e6).with_limit(10)),
        );
        net.run();
        assert_eq!(net.retired_flow_count(), 0);
        let (_, endpoints) = net.finish();
        assert_eq!(endpoints[h.0].label(), "paced-cbr");
    }

    /// A fixed-window endpoint that counts CE echoes on its ACKs.
    struct CeCountingWindow {
        inner: FixedWindow,
        ce_acks: u64,
    }

    impl FlowEndpoint for CeCountingWindow {
        fn on_ack(&mut self, ack: &AckInfo) {
            if ack.ce {
                self.ce_acks += 1;
            }
            self.inner.on_ack(ack);
        }
        fn poll_send(&mut self, now: Time) -> SendAction {
            self.inner.poll_send(now)
        }
        fn label(&self) -> &str {
            "ce-counting"
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    #[test]
    fn step_marking_hop_echoes_ce_back_to_an_ecn_flow() {
        // An over-buffered window on a 12 Mbit/s link with a 1 ms L4S step
        // threshold: the standing queue far exceeds the threshold, so ECT
        // packets are marked, the receiver echoes CE, and no packets drop
        // (the 100 ms physical buffer is never reached by a 100-packet window).
        let mut cfg = base_config(12e6, 10.0);
        cfg.link_mut().ecn = EcnMarking::Step { threshold_s: 0.001 };
        let mut net = Network::new(cfg);
        let h = net.add_flow(
            FlowConfig::primary("ecn-window", Time::from_millis(20)).with_ecn(true),
            Box::new(CeCountingWindow {
                inner: FixedWindow::new(100),
                ce_acks: 0,
            }),
        );
        net.run();
        assert!(net.recorder().hop_marked_packets[0] > 100, "queue marked");
        assert_eq!(net.recorder().flows[h.0].dropped_packets, 0, "no drops");
        let marks = net.recorder().hop_marked_packets[0];
        let mark_series_total: f64 = net.recorder().hop_mark_series[0].v.iter().sum();
        assert_eq!(mark_series_total as u64, marks, "series sums to counter");
        let (_, endpoints) = net.finish();
        let ep = endpoints[h.0]
            .as_any()
            .and_then(|a| a.downcast_ref::<CeCountingWindow>())
            .expect("endpoint downcasts");
        assert!(
            ep.ce_acks as f64 >= marks as f64 * 0.9,
            "CE echoes ({}) should track queue marks ({marks})",
            ep.ce_acks
        );
    }

    #[test]
    fn non_ecn_flows_see_identical_runs_when_marking_is_enabled() {
        // ECN enabled on the hop but the flow never negotiates it: every
        // observable outcome must match the marking-off run bit for bit.
        let run = |ecn: EcnMarking| {
            let mut cfg = base_config(12e6, 8.0);
            cfg.link_mut().ecn = ecn;
            cfg.seed = 17;
            let mut net = Network::new(cfg);
            net.add_flow(
                FlowConfig::primary("plain", Time::from_millis(30)),
                Box::new(FixedWindow::new(150)),
            );
            net.run();
            let marks = net.recorder().hop_marked_packets[0];
            (
                net.total_delivered_bytes(),
                net.total_enqueued_bytes(),
                net.events_processed(),
                marks,
            )
        };
        let off = run(EcnMarking::None);
        let on = run(EcnMarking::Step { threshold_s: 0.001 });
        assert_eq!(off.3, 0);
        assert_eq!(on.3, 0, "NotEct packets must never be marked");
        assert_eq!(off, on);
    }

    #[test]
    fn flows_start_at_their_configured_times() {
        let mut net = Network::new(base_config(96e6, 10.0));
        let h = net.add_flow(
            FlowConfig::primary("late", Time::from_millis(20))
                .starting_at(Time::from_secs_f64(5.0)),
            Box::new(PacedCbr::new(10e6)),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let before = rec.throughput_mbps[slot].mean_in_range(0.0, 4.5);
        let after = rec.throughput_mbps[slot].mean_in_range(6.0, 10.0);
        assert!(before < 0.5, "no traffic before start, got {before}");
        assert!(
            (after - 10.0).abs() < 1.0,
            "traffic after start, got {after}"
        );
    }
}
