//! # nimbus-netsim
//!
//! A packet-level, deterministic, discrete-event network simulator built for
//! the Nimbus reproduction.  It plays the role Mahimahi plays in the paper:
//! an emulated dumbbell with a single bottleneck link (Fig. 2 of the paper),
//! shared by one or more instrumented flows and arbitrary cross traffic.
//!
//! ```text
//!  senders ──▶ [ queue | bottleneck link @ µ ] ──▶ receivers
//!     ▲                                               │
//!     └────────────── ACKs (uncongested) ◀────────────┘
//! ```
//!
//! Key properties:
//!
//! * **Packet level.** ACK clocking — the mechanism the elasticity detector
//!   relies on — emerges naturally: window-limited senders transmit only when
//!   ACKs return, and the bottleneck queue shapes the inter-packet (and hence
//!   inter-ACK) spacing.
//! * **Deterministic.** All randomness comes from seeded RNGs owned by the
//!   loss models and workload generators; two runs with the same seed produce
//!   identical event sequences.
//! * **Instrumented.** The [`recorder::Recorder`] produces the throughput,
//!   queueing-delay, flow-completion-time and ground-truth-elasticity time
//!   series that the paper's figures are drawn from.
//!
//! The simulator knows nothing about congestion control: senders are
//! abstracted behind the [`endpoint::FlowEndpoint`] trait, which the
//! `nimbus-transport` crate implements for every algorithm the paper
//! evaluates (Cubic, NewReno, Vegas, Copa, BBR, PCC-Vivace, Compound, …) and
//! `nimbus-core` implements for Nimbus itself.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod endpoint;
pub mod engine;
pub mod eventq;
pub mod loss;
pub mod packet;
pub mod queue;
pub mod recorder;
pub mod schedule;
pub mod slab;
pub mod time;

pub use endpoint::{AckInfo, FlowEndpoint, SendAction};
pub use engine::{FlowConfig, FlowHandle, FlowSpawner, LinkConfig, Network, QueueKind, SimConfig};
pub use eventq::CalendarQueue;
pub use loss::{LossModel, Policer};
pub use packet::{EcnCodepoint, FlowId, Packet};
pub use queue::{CoDelQueue, DropTailQueue, EcnMarking, PieQueue, QueueDiscipline, RedQueue};
pub use recorder::{
    FctBucket, FctSummary, FlowStats, Recorder, RecorderConfig, TimeSeries, ELEPHANT_MIN_BYTES,
    MICE_MAX_BYTES,
};
pub use schedule::RateSchedule;
pub use time::Time;

/// Default maximum segment size, in bytes, used when a flow does not override it.
pub const DEFAULT_MSS_BYTES: u32 = 1500;
