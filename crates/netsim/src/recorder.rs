//! Instrumentation: everything the paper's figures are plotted from.
//!
//! The recorder is owned by the engine and fed three kinds of observations:
//!
//! * per-packet events at the bottleneck (enqueue / dequeue / drop), which
//!   yield queue-occupancy and per-packet queueing-delay series plus the
//!   ground-truth "fraction of cross-traffic bytes that belong to elastic
//!   flows" used to score the detector (Fig. 12);
//! * per-ACK events at each monitored sender, which yield throughput and RTT
//!   series (Figs. 1, 8, 9, 13, 16–19);
//! * flow lifecycle events, which yield flow completion times (Fig. 21).

use crate::packet::FlowId;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// A uniformly sampled time series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sample timestamps in seconds.
    pub t: Vec<f64>,
    /// Sample values.
    pub v: Vec<f64>,
}

impl TimeSeries {
    /// Append a sample.
    pub fn push(&mut self, t: f64, v: f64) {
        self.t.push(t);
        self.v.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Mean of values in the (closed) time range `[t0, t1]` seconds.
    /// NaN samples (intervals with no observations) are skipped.
    ///
    /// Returns NaN when the range holds no finite samples: a window with no
    /// observations is *not* the same thing as a genuine zero throughput or
    /// RTT, and callers must be able to tell the two apart.
    pub fn mean_in_range(&self, t0: f64, t1: f64) -> f64 {
        let vals: Vec<f64> = self
            .t
            .iter()
            .zip(self.v.iter())
            .filter(|(t, v)| **t >= t0 && **t <= t1 && v.is_finite())
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Mean over all (finite) samples; NaN when there are none.
    pub fn mean(&self) -> f64 {
        let vals: Vec<f64> = self.v.iter().copied().filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// The values as a slice (for CDFs and percentile computations).
    pub fn values(&self) -> &[f64] {
        &self.v
    }
}

/// Recorder configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecorderConfig {
    /// Sampling interval for all time series.
    pub sample_interval: Time,
    /// Record per-packet queueing-delay samples for monitored flows
    /// (costs memory on long runs; on by default).
    pub record_packet_delays: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            sample_interval: Time::from_millis(100),
            record_packet_delays: true,
        }
    }
}

/// Per-monitored-flow accumulators for the current sampling interval, laid
/// out as parallel arrays indexed by monitored slot.  The per-packet hooks
/// (`on_arrival`, `on_rtt_sample`, `on_dequeue`) each touch exactly one
/// array, and the per-interval flush walks each array linearly — no per-flow
/// struct is moved or cloned on the hot path.
#[derive(Debug, Default)]
struct IntervalBuf {
    received_bytes: Vec<u64>,
    rtt_sum_ms: Vec<f64>,
    rtt_count: Vec<u64>,
    qdelay_sum_ms: Vec<f64>,
    qdelay_count: Vec<u64>,
}

impl IntervalBuf {
    /// Add a zeroed slot for a newly registered monitored flow.
    fn push_slot(&mut self) {
        self.received_bytes.push(0);
        self.rtt_sum_ms.push(0.0);
        self.rtt_count.push(0);
        self.qdelay_sum_ms.push(0.0);
        self.qdelay_count.push(0);
    }

    /// Zero `slot`'s accumulators for the next interval.
    fn reset(&mut self, slot: usize) {
        self.received_bytes[slot] = 0;
        self.rtt_sum_ms[slot] = 0.0;
        self.rtt_count[slot] = 0;
        self.qdelay_sum_ms[slot] = 0.0;
        self.qdelay_count[slot] = 0;
    }
}

/// Summary of a finished (or still running) flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowStats {
    /// Flow identifier.
    pub id: FlowId,
    /// Human-readable label copied from the flow configuration.
    pub label: String,
    /// Whether the experiment counts this flow as elastic cross traffic
    /// (`None` for monitored flows, which are not cross traffic).
    pub counts_as_elastic: Option<bool>,
    /// Time the flow was configured to start.
    pub start: Time,
    /// Whether the flow actually started during the run.  Flows whose
    /// configured `start` lies beyond the simulation duration never run and
    /// must not pollute FCT or ground-truth aggregates.
    pub started: bool,
    /// Time the flow finished, if it did.
    pub finish: Option<Time>,
    /// Total bytes delivered in order to the receiver (goodput).
    pub delivered_bytes: u64,
    /// Total bytes that arrived at the receiver, regardless of order
    /// (the throughput the paper's figures plot).
    pub received_bytes: u64,
    /// Total data packets that were dropped (at the queue, policer or loss model).
    pub dropped_packets: u64,
    /// Flow size in bytes if the flow was finite.
    pub size_bytes: Option<u64>,
}

impl FlowStats {
    /// Flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<Time> {
        self.finish.map(|f| f.saturating_sub(self.start))
    }

    /// Mean throughput in bits per second over the flow's lifetime (up to
    /// `now` for unfinished flows), counting all bytes arriving at the
    /// receiver.  NaN for flows that never started (no lifetime to average
    /// over — distinct from a started flow that delivered nothing).
    pub fn mean_throughput_bps(&self, now: Time) -> f64 {
        if !self.started {
            return f64::NAN;
        }
        let end = self.finish.unwrap_or(now);
        let dur = end.saturating_sub(self.start).as_secs_f64();
        if dur <= 0.0 {
            0.0
        } else {
            self.received_bytes as f64 * 8.0 / dur
        }
    }
}

/// Default upper size bound (bytes, inclusive) for a "mouse" flow when
/// bucketing FCTs: roughly what fits in a few initial windows.
pub const MICE_MAX_BYTES: u64 = 100_000;

/// Default lower size bound (bytes, inclusive) for an "elephant" flow when
/// bucketing FCTs.
pub const ELEPHANT_MIN_BYTES: u64 = 1_000_000;

/// Percentile statistics over the flow completion times of one size bucket.
/// Empty buckets report `count == 0` and NaN statistics — absence of flows is
/// not the same thing as instantaneous completion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FctBucket {
    /// Number of completed flows in the bucket.
    pub count: u64,
    /// Mean completion time, seconds.
    pub mean_s: f64,
    /// Median completion time, seconds.
    pub p50_s: f64,
    /// 95th-percentile completion time, seconds.
    pub p95_s: f64,
    /// 99th-percentile completion time, seconds.
    pub p99_s: f64,
}

impl FctBucket {
    fn from_fcts(mut fcts: Vec<f64>) -> Self {
        if fcts.is_empty() {
            return FctBucket {
                count: 0,
                mean_s: f64::NAN,
                p50_s: f64::NAN,
                p95_s: f64::NAN,
                p99_s: f64::NAN,
            };
        }
        fcts.sort_by(|a, b| a.partial_cmp(b).expect("FCTs are finite"));
        let n = fcts.len();
        // Nearest-rank percentile on the sorted sample.
        let rank = |p: f64| -> f64 {
            let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
            fcts[idx]
        };
        FctBucket {
            count: n as u64,
            mean_s: fcts.iter().sum::<f64>() / n as f64,
            p50_s: rank(50.0),
            p95_s: rank(95.0),
            p99_s: rank(99.0),
        }
    }
}

/// Size-bucketed FCT percentile summary over a run's completed finite flows:
/// the population-level view a fleet workload is judged by (mice should not
/// starve behind elephants; tail percentiles expose queueing pathologies that
/// means hide).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FctSummary {
    /// Upper size bound (bytes, inclusive) of the mice bucket.
    pub mice_max_bytes: u64,
    /// Lower size bound (bytes, inclusive) of the elephant bucket.
    pub elephant_min_bytes: u64,
    /// All completed finite flows.
    pub all: FctBucket,
    /// Flows of at most `mice_max_bytes`.
    pub mice: FctBucket,
    /// Flows strictly between the mice and elephant bounds.
    pub medium: FctBucket,
    /// Flows of at least `elephant_min_bytes`.
    pub elephant: FctBucket,
}

impl FctSummary {
    /// Summarize `(size_bytes, fct_seconds)` pairs with the default
    /// mice/elephant boundaries.
    pub fn from_fcts(fcts: &[(u64, f64)]) -> Self {
        Self::with_thresholds(fcts, MICE_MAX_BYTES, ELEPHANT_MIN_BYTES)
    }

    /// Summarize with explicit size boundaries (`mice_max < elephant_min`).
    pub fn with_thresholds(fcts: &[(u64, f64)], mice_max: u64, elephant_min: u64) -> Self {
        assert!(
            mice_max < elephant_min,
            "mice bound {mice_max} must lie below elephant bound {elephant_min}"
        );
        let select = |pred: &dyn Fn(u64) -> bool| -> Vec<f64> {
            fcts.iter()
                .filter(|(sz, _)| pred(*sz))
                .map(|(_, f)| *f)
                .collect()
        };
        FctSummary {
            mice_max_bytes: mice_max,
            elephant_min_bytes: elephant_min,
            all: FctBucket::from_fcts(select(&|_| true)),
            mice: FctBucket::from_fcts(select(&|sz| sz <= mice_max)),
            medium: FctBucket::from_fcts(select(&|sz| sz > mice_max && sz < elephant_min)),
            elephant: FctBucket::from_fcts(select(&|sz| sz >= elephant_min)),
        }
    }
}

/// The instrumentation sink for a simulation run.
#[derive(Debug)]
pub struct Recorder {
    cfg: RecorderConfig,
    /// Per monitored flow: throughput in Mbit/s per interval.
    pub throughput_mbps: Vec<TimeSeries>,
    /// Per monitored flow: mean RTT (ms) per interval.
    pub rtt_ms: Vec<TimeSeries>,
    /// Per monitored flow: mean per-packet bottleneck queueing delay (ms) per interval.
    pub queue_delay_ms: Vec<TimeSeries>,
    /// Per monitored flow: raw per-packet queueing delay samples (ms).
    pub packet_delay_samples_ms: Vec<Vec<f64>>,
    /// Total path queue occupancy (bytes) summed over every hop, sampled
    /// every interval.  For a single-hop path this *is* the bottleneck
    /// occupancy, exactly as in the single-link engine.
    pub queue_bytes: TimeSeries,
    /// Per-hop queue occupancy (bytes), sampled every interval; indexed by
    /// path hop.  `hop_queue_bytes[0]` duplicates `queue_bytes` on a
    /// single-hop path.
    pub hop_queue_bytes: Vec<TimeSeries>,
    /// Packets dropped at each hop (queue, AQM, policer or loss model).
    pub hop_dropped_packets: Vec<u64>,
    /// Cumulative CE marks applied by each hop's queue (ECN runs only;
    /// stays all-zero — and out of the snapshot — when nothing marks).
    pub hop_marked_packets: Vec<u64>,
    /// CE marks applied by each hop's queue during each sampling interval —
    /// the mark-rate signal an ECN-reacting sender ultimately observes.
    pub hop_mark_series: Vec<TimeSeries>,
    /// Cross-traffic arrival rate at the bottleneck (Mbit/s) per interval
    /// — the ground-truth `z(t)`.
    pub cross_rate_mbps: TimeSeries,
    /// Fraction of cross-traffic bytes (per interval) belonging to flows
    /// tagged elastic — the ground truth of Fig. 12.
    pub elastic_fraction: TimeSeries,
    /// Final per-flow summaries (indexed by FlowId).
    pub flows: Vec<FlowStats>,

    monitored: Vec<FlowId>,
    monitored_index: Vec<Option<usize>>,
    /// `(size_bytes, fct_seconds)` appended as finite flows finish — the
    /// streaming view of completions, available mid-run and in completion
    /// order (unlike [`Recorder::completed_fcts`], which rederives the same
    /// pairs in flow-id order after the fact).
    fct_stream: Vec<(u64, f64)>,
    intervals: IntervalBuf,
    cross_elastic_bytes: u64,
    cross_inelastic_bytes: u64,
    last_sample: Time,
}

impl Recorder {
    /// Create a recorder for a path of `num_hops` links; flows are
    /// registered afterwards by the engine.
    pub fn new(cfg: RecorderConfig, num_hops: usize) -> Self {
        assert!(num_hops > 0, "a path has at least one hop");
        Recorder {
            cfg,
            throughput_mbps: Vec::new(),
            rtt_ms: Vec::new(),
            queue_delay_ms: Vec::new(),
            packet_delay_samples_ms: Vec::new(),
            queue_bytes: TimeSeries::default(),
            hop_queue_bytes: vec![TimeSeries::default(); num_hops],
            hop_dropped_packets: vec![0; num_hops],
            hop_marked_packets: vec![0; num_hops],
            hop_mark_series: vec![TimeSeries::default(); num_hops],
            cross_rate_mbps: TimeSeries::default(),
            elastic_fraction: TimeSeries::default(),
            flows: Vec::new(),
            monitored: Vec::new(),
            monitored_index: Vec::new(),
            fct_stream: Vec::new(),
            intervals: IntervalBuf::default(),
            cross_elastic_bytes: 0,
            cross_inelastic_bytes: 0,
            last_sample: Time::ZERO,
        }
    }

    /// The configured sampling interval.
    pub fn sample_interval(&self) -> Time {
        self.cfg.sample_interval
    }

    /// Number of path hops this recorder tracks.
    pub fn num_hops(&self) -> usize {
        self.hop_queue_bytes.len()
    }

    /// Register a flow. `monitored` flows get full time series.
    pub fn register_flow(
        &mut self,
        id: FlowId,
        label: String,
        counts_as_elastic: Option<bool>,
        monitored: bool,
        start: Time,
        size_bytes: Option<u64>,
    ) {
        debug_assert_eq!(id, self.flows.len(), "flows must be registered in order");
        self.flows.push(FlowStats {
            id,
            label,
            counts_as_elastic,
            start,
            started: false,
            finish: None,
            delivered_bytes: 0,
            received_bytes: 0,
            dropped_packets: 0,
            size_bytes,
        });
        if monitored {
            self.monitored_index.push(Some(self.monitored.len()));
            self.monitored.push(id);
            self.throughput_mbps.push(TimeSeries::default());
            self.rtt_ms.push(TimeSeries::default());
            self.queue_delay_ms.push(TimeSeries::default());
            self.packet_delay_samples_ms.push(Vec::new());
            self.intervals.push_slot();
        } else {
            self.monitored_index.push(None);
        }
    }

    /// Monitored-series index for a flow, if it is monitored.
    pub fn monitored_slot(&self, id: FlowId) -> Option<usize> {
        self.monitored_index.get(id).copied().flatten()
    }

    /// IDs of the monitored flows, in registration order.
    pub fn monitored_flows(&self) -> &[FlowId] {
        &self.monitored
    }

    /// A data packet of `bytes` from `flow` was accepted into the bottleneck queue.
    pub fn on_enqueue(&mut self, flow: FlowId, bytes: u32) {
        match self.flows[flow].counts_as_elastic {
            Some(true) => self.cross_elastic_bytes += bytes as u64,
            Some(false) => self.cross_inelastic_bytes += bytes as u64,
            None => {}
        }
    }

    /// A data packet from `flow` was dropped at `hop` (queue, AQM, policer
    /// or loss model).
    pub fn on_drop(&mut self, flow: FlowId, hop: usize) {
        self.flows[flow].dropped_packets += 1;
        self.hop_dropped_packets[hop] += 1;
    }

    /// A packet from `flow` started transmission after waiting `delay` in the queue.
    pub fn on_dequeue(&mut self, flow: FlowId, delay: Time) {
        if let Some(slot) = self.monitored_slot(flow) {
            let ms = delay.as_millis_f64();
            self.intervals.qdelay_sum_ms[slot] += ms;
            self.intervals.qdelay_count[slot] += 1;
            if self.cfg.record_packet_delays {
                self.packet_delay_samples_ms[slot].push(ms);
            }
        }
    }

    /// A data packet of `bytes` arrived at the receiver of `flow`
    /// (irrespective of ordering). This is what throughput series count.
    pub fn on_arrival(&mut self, flow: FlowId, bytes: u64) {
        self.flows[flow].received_bytes += bytes;
        if let Some(slot) = self.monitored_slot(flow) {
            self.intervals.received_bytes[slot] += bytes;
        }
    }

    /// In-order delivery progressed at the receiver of `flow` (goodput / FCT
    /// bookkeeping).
    pub fn on_delivered(&mut self, flow: FlowId, newly_delivered: u64) {
        self.flows[flow].delivered_bytes += newly_delivered;
    }

    /// An RTT sample was observed for `flow`.
    pub fn on_rtt_sample(&mut self, flow: FlowId, rtt: Time) {
        if let Some(slot) = self.monitored_slot(flow) {
            self.intervals.rtt_sum_ms[slot] += rtt.as_millis_f64();
            self.intervals.rtt_count[slot] += 1;
        }
    }

    /// The flow actually started (its `FlowStart` event fired within the run).
    pub fn on_flow_start(&mut self, flow: FlowId) {
        self.flows[flow].started = true;
    }

    /// The flow finished (delivered all its data).
    pub fn on_finish(&mut self, flow: FlowId, now: Time) {
        self.flows[flow].finish = Some(now);
        let f = &self.flows[flow];
        if f.started {
            if let (Some(sz), Some(fct)) = (f.size_bytes, f.fct()) {
                self.fct_stream.push((sz, fct.as_secs_f64()));
            }
        }
    }

    /// Close the current sampling interval at time `now` with each hop's
    /// queue occupancy in path order.
    pub fn sample(&mut self, now: Time, hop_queue_bytes: &[u64]) {
        debug_assert_eq!(hop_queue_bytes.len(), self.hop_queue_bytes.len());
        let t = now.as_secs_f64();
        let dt = now.saturating_sub(self.last_sample).as_secs_f64();
        self.last_sample = now;
        let total: u64 = hop_queue_bytes.iter().sum();
        self.queue_bytes.push(t, total as f64);
        for (series, &bytes) in self.hop_queue_bytes.iter_mut().zip(hop_queue_bytes) {
            series.push(t, bytes as f64);
        }

        let cross_total = self.cross_elastic_bytes + self.cross_inelastic_bytes;
        if dt > 0.0 {
            self.cross_rate_mbps
                .push(t, cross_total as f64 * 8.0 / dt / 1e6);
        } else {
            self.cross_rate_mbps.push(t, 0.0);
        }
        let frac = if cross_total > 0 {
            self.cross_elastic_bytes as f64 / cross_total as f64
        } else {
            0.0
        };
        self.elastic_fraction.push(t, frac);
        self.cross_elastic_bytes = 0;
        self.cross_inelastic_bytes = 0;

        for slot in 0..self.monitored.len() {
            let tput = if dt > 0.0 {
                self.intervals.received_bytes[slot] as f64 * 8.0 / dt / 1e6
            } else {
                0.0
            };
            self.throughput_mbps[slot].push(t, tput);
            let rtt = if self.intervals.rtt_count[slot] > 0 {
                self.intervals.rtt_sum_ms[slot] / self.intervals.rtt_count[slot] as f64
            } else {
                f64::NAN
            };
            self.rtt_ms[slot].push(t, rtt);
            let qd = if self.intervals.qdelay_count[slot] > 0 {
                self.intervals.qdelay_sum_ms[slot] / self.intervals.qdelay_count[slot] as f64
            } else {
                f64::NAN
            };
            self.queue_delay_ms[slot].push(t, qd);
            self.intervals.reset(slot);
        }
    }

    /// Record each hop's cumulative CE-mark counter (read off its queue) at
    /// the close of a sampling interval; the per-hop series stores the
    /// interval's delta.  Called by the engine alongside [`Recorder::sample`].
    pub fn sample_marks(&mut self, now: Time, cumulative: &[u64]) {
        debug_assert_eq!(cumulative.len(), self.hop_marked_packets.len());
        let t = now.as_secs_f64();
        for (hop, &cum) in cumulative.iter().enumerate() {
            let delta = cum.saturating_sub(self.hop_marked_packets[hop]);
            self.hop_mark_series[hop].push(t, delta as f64);
            self.hop_marked_packets[hop] = cum;
        }
    }

    /// Serialize every public time series and per-flow summary.  This is the
    /// record the determinism tests compare byte-for-byte: two runs with the
    /// same `SimConfig` seed must produce identical snapshots.
    ///
    /// Per-hop entries are appended only for multi-hop paths: on a one-hop
    /// path they would merely duplicate `queue_bytes` and the per-flow drop
    /// counts, and omitting them keeps single-bottleneck snapshots (and the
    /// fingerprints pinned against the pre-path engine) byte-identical.
    pub fn snapshot(&self) -> serde::Value {
        use serde::Serialize as _;
        let mut entries = vec![
            (
                "throughput_mbps".to_string(),
                self.throughput_mbps.to_value(),
            ),
            ("rtt_ms".to_string(), self.rtt_ms.to_value()),
            ("queue_delay_ms".to_string(), self.queue_delay_ms.to_value()),
            (
                "packet_delay_samples_ms".to_string(),
                self.packet_delay_samples_ms.to_value(),
            ),
            ("queue_bytes".to_string(), self.queue_bytes.to_value()),
            (
                "cross_rate_mbps".to_string(),
                self.cross_rate_mbps.to_value(),
            ),
            (
                "elastic_fraction".to_string(),
                self.elastic_fraction.to_value(),
            ),
            ("flows".to_string(), self.flows.to_value()),
        ];
        if self.num_hops() > 1 {
            entries.push((
                "hop_queue_bytes".to_string(),
                self.hop_queue_bytes.to_value(),
            ));
            entries.push((
                "hop_dropped_packets".to_string(),
                self.hop_dropped_packets.to_value(),
            ));
        }
        // Mark entries appear only when something actually marked: an
        // ECN-off run never does, so its snapshot — and every fingerprint
        // pinned before ECN existed — is byte-identical.
        if self.hop_marked_packets.iter().any(|&m| m > 0) {
            entries.push((
                "hop_marked_packets".to_string(),
                self.hop_marked_packets.to_value(),
            ));
            entries.push((
                "hop_mark_series".to_string(),
                self.hop_mark_series.to_value(),
            ));
        }
        serde::Value::Map(entries)
    }

    /// Flow completion times (seconds) together with flow sizes, for every
    /// finite flow that actually ran and finished.
    pub fn completed_fcts(&self) -> Vec<(u64, f64)> {
        self.flows
            .iter()
            .filter(|f| f.started)
            .filter_map(|f| match (f.size_bytes, f.fct()) {
                (Some(sz), Some(fct)) => Some((sz, fct.as_secs_f64())),
                _ => None,
            })
            .collect()
    }

    /// `(size_bytes, fct_seconds)` pairs in completion order, appended as
    /// flows finish — usable mid-run without walking the whole flow table.
    pub fn fct_stream(&self) -> &[(u64, f64)] {
        &self.fct_stream
    }

    /// Size-bucketed p50/p95/p99 summary of every completed finite flow,
    /// using the default mice/elephant boundaries.  Computed on demand; not
    /// part of [`Recorder::snapshot`], so pinned fingerprints are unaffected.
    pub fn fct_summary(&self) -> FctSummary {
        FctSummary::from_fcts(&self.fct_stream)
    }

    /// Per-flow summaries restricted to flows that actually started during
    /// the run — the view sweep aggregates and ground-truth tables should
    /// consume so never-started flows (configured `start` past the run's
    /// duration) don't pollute them.
    pub fn started_flows(&self) -> impl Iterator<Item = &FlowStats> {
        self.flows.iter().filter(|f| f.started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_basic_ops() {
        let mut ts = TimeSeries::default();
        assert!(ts.is_empty());
        ts.push(0.0, 1.0);
        ts.push(1.0, 3.0);
        ts.push(2.0, 5.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), 3.0);
        assert_eq!(ts.mean_in_range(0.5, 2.5), 4.0);
        assert_eq!(ts.values(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn empty_ranges_yield_nan_not_zero() {
        // Regression: a window with no samples used to report 0.0, which is
        // indistinguishable from a genuine zero throughput/RTT.
        let mut ts = TimeSeries::default();
        assert!(ts.mean().is_nan());
        assert!(ts.mean_in_range(0.0, 10.0).is_nan());
        ts.push(0.0, f64::NAN);
        ts.push(1.0, f64::NAN);
        assert!(ts.mean().is_nan(), "all-NaN series must stay NaN");
        assert!(ts.mean_in_range(0.0, 2.0).is_nan());
        ts.push(2.0, 0.0);
        // A genuine zero sample is reported as zero, not NaN.
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.mean_in_range(1.5, 2.5), 0.0);
        // A window past the data is NaN again.
        assert!(ts.mean_in_range(10.0, 20.0).is_nan());
    }

    #[test]
    fn recorder_tracks_throughput_and_ground_truth() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.register_flow(0, "nimbus".into(), None, true, Time::ZERO, None);
        r.register_flow(1, "cubic-cross".into(), Some(true), false, Time::ZERO, None);
        r.register_flow(2, "cbr-cross".into(), Some(false), false, Time::ZERO, None);

        // Interval 1: monitored flow delivers 1.25 MB in 0.1 s = 100 Mbit/s;
        // cross traffic 75% elastic by bytes.
        r.on_arrival(0, 1_250_000);
        r.on_enqueue(1, 1500);
        r.on_enqueue(1, 1500);
        r.on_enqueue(1, 1500);
        r.on_enqueue(2, 1500);
        r.on_rtt_sample(0, Time::from_millis(60));
        r.on_rtt_sample(0, Time::from_millis(80));
        r.on_dequeue(0, Time::from_millis(10));
        r.sample(Time::from_millis(100), &[42_000]);

        assert_eq!(r.throughput_mbps[0].len(), 1);
        assert!((r.throughput_mbps[0].v[0] - 100.0).abs() < 1e-9);
        assert!((r.rtt_ms[0].v[0] - 70.0).abs() < 1e-9);
        assert!((r.queue_delay_ms[0].v[0] - 10.0).abs() < 1e-9);
        assert!((r.elastic_fraction.v[0] - 0.75).abs() < 1e-9);
        assert_eq!(r.queue_bytes.v[0], 42_000.0);
        // Cross rate: 6000 bytes in 0.1 s = 0.48 Mbit/s.
        assert!((r.cross_rate_mbps.v[0] - 0.48).abs() < 1e-9);

        // Interval counters reset.
        r.sample(Time::from_millis(200), &[0]);
        assert_eq!(r.throughput_mbps[0].v[1], 0.0);
        assert_eq!(r.elastic_fraction.v[1], 0.0);
    }

    #[test]
    fn flow_stats_fct_and_throughput() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.register_flow(
            0,
            "f".into(),
            Some(true),
            false,
            Time::from_millis(1000),
            Some(1_000_000),
        );
        r.on_flow_start(0);
        r.on_delivered(0, 1_000_000);
        r.on_arrival(0, 1_000_000);
        r.on_finish(0, Time::from_millis(3000));
        let f = &r.flows[0];
        assert_eq!(f.fct(), Some(Time::from_millis(2000)));
        assert!((f.mean_throughput_bps(Time::from_millis(9000)) - 4e6).abs() < 1.0);
        let fcts = r.completed_fcts();
        assert_eq!(fcts.len(), 1);
        assert_eq!(fcts[0].0, 1_000_000);
        assert!((fcts[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn never_started_flows_are_excluded_from_summaries() {
        // Regression: flows whose configured start exceeded the run duration
        // used to be counted in FCT tables as if they ran.
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.register_flow(0, "ran".into(), Some(true), false, Time::ZERO, Some(500));
        r.register_flow(
            1,
            "never".into(),
            Some(false),
            false,
            Time::from_secs_f64(100.0),
            Some(500),
        );
        r.on_flow_start(0);
        r.on_arrival(0, 500);
        r.on_delivered(0, 500);
        r.on_finish(0, Time::from_secs_f64(1.0));
        assert_eq!(r.completed_fcts().len(), 1);
        assert_eq!(r.started_flows().count(), 1);
        assert!(!r.flows[1].started);
        assert!(r.flows[1]
            .mean_throughput_bps(Time::from_secs_f64(10.0))
            .is_nan());
        assert!(r.flows[0].mean_throughput_bps(Time::from_secs_f64(10.0)) > 0.0);
    }

    #[test]
    fn unmonitored_flows_have_no_series() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.register_flow(0, "a".into(), Some(false), false, Time::ZERO, None);
        assert_eq!(r.monitored_slot(0), None);
        assert!(r.monitored_flows().is_empty());
        // Feeding events must not panic.
        r.on_rtt_sample(0, Time::from_millis(10));
        r.on_dequeue(0, Time::from_millis(1));
        r.on_delivered(0, 100);
        r.on_arrival(0, 100);
        r.sample(Time::from_millis(100), &[0]);
        assert!(r.throughput_mbps.is_empty());
    }

    #[test]
    fn fct_bucket_percentiles_use_nearest_rank() {
        let fcts: Vec<(u64, f64)> = (1..=100).map(|i| (1000, i as f64)).collect();
        let s = FctSummary::from_fcts(&fcts);
        assert_eq!(s.all.count, 100);
        assert_eq!(s.all.p50_s, 50.0);
        assert_eq!(s.all.p95_s, 95.0);
        assert_eq!(s.all.p99_s, 99.0);
        assert!((s.all.mean_s - 50.5).abs() < 1e-9);
        // All flows are 1000 B: mice bucket holds everything.
        assert_eq!(s.mice.count, 100);
        assert_eq!(s.medium.count, 0);
        assert!(s.medium.p50_s.is_nan());
        assert_eq!(s.elephant.count, 0);
    }

    #[test]
    fn fct_summary_buckets_split_by_size() {
        let fcts = vec![
            (50_000, 0.1),     // mouse
            (100_000, 0.2),    // mouse (inclusive bound)
            (500_000, 1.0),    // medium
            (1_000_000, 5.0),  // elephant (inclusive bound)
            (20_000_000, 9.0), // elephant
        ];
        let s = FctSummary::from_fcts(&fcts);
        assert_eq!(s.all.count, 5);
        assert_eq!(s.mice.count, 2);
        assert_eq!(s.medium.count, 1);
        assert_eq!(s.elephant.count, 2);
        assert!((s.mice.p50_s - 0.1).abs() < 1e-9);
        assert!((s.medium.p50_s - 1.0).abs() < 1e-9);
        assert!((s.elephant.p99_s - 9.0).abs() < 1e-9);
        // Custom thresholds shift the membership.
        let s2 = FctSummary::with_thresholds(&fcts, 10_000, 2_000_000);
        assert_eq!(s2.mice.count, 0);
        assert_eq!(s2.medium.count, 4);
        assert_eq!(s2.elephant.count, 1);
    }

    #[test]
    #[should_panic(expected = "must lie below")]
    fn fct_summary_rejects_inverted_thresholds() {
        let _ = FctSummary::with_thresholds(&[], 1_000_000, 100_000);
    }

    #[test]
    fn fct_stream_matches_derived_completions() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.register_flow(0, "a".into(), Some(false), false, Time::ZERO, Some(1_000));
        r.register_flow(
            1,
            "b".into(),
            Some(false),
            false,
            Time::from_secs_f64(1.0),
            Some(2_000),
        );
        // An infinite flow never contributes an FCT even if "finished".
        r.register_flow(2, "inf".into(), None, true, Time::ZERO, None);
        r.on_flow_start(0);
        r.on_flow_start(1);
        r.on_flow_start(2);
        // Completion order b-then-a, opposite of id order.
        r.on_finish(1, Time::from_secs_f64(3.0));
        r.on_finish(0, Time::from_secs_f64(4.0));
        r.on_finish(2, Time::from_secs_f64(5.0));
        assert_eq!(r.fct_stream(), &[(2_000, 2.0), (1_000, 4.0)]);
        let mut derived = r.completed_fcts();
        derived.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut streamed = r.fct_stream().to_vec();
        streamed.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(derived, streamed);
        let s = r.fct_summary();
        assert_eq!(s.all.count, 2);
        assert!((s.all.p50_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mark_series_stores_interval_deltas_and_gates_the_snapshot() {
        let mut r = Recorder::new(RecorderConfig::default(), 2);
        // No marks: the snapshot must not mention marks at all.
        r.sample_marks(Time::from_millis(100), &[0, 0]);
        let plain = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(!plain.contains("hop_marked_packets"));
        // Cumulative counters 5 and 2, then 9 and 2: deltas 5,2 then 4,0.
        r.sample_marks(Time::from_millis(200), &[5, 2]);
        r.sample_marks(Time::from_millis(300), &[9, 2]);
        assert_eq!(r.hop_marked_packets, vec![9, 2]);
        assert_eq!(r.hop_mark_series[0].v, vec![0.0, 5.0, 4.0]);
        assert_eq!(r.hop_mark_series[1].v, vec![0.0, 2.0, 0.0]);
        let marked = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(marked.contains("hop_marked_packets"));
        assert!(marked.contains("hop_mark_series"));
    }

    #[test]
    fn drops_are_attributed_to_flows() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.register_flow(0, "a".into(), None, true, Time::ZERO, None);
        r.on_drop(0, 0);
        r.on_drop(0, 0);
        assert_eq!(r.flows[0].dropped_packets, 2);
    }
}
