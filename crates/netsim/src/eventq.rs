//! The engine's event queue: a calendar (bucket-wheel) priority queue with a
//! binary-heap overflow, ordered by `(timestamp, insertion seq)`.
//!
//! The discrete-event engine's schedule has a very particular shape: the vast
//! majority of pending events — `LinkDone` completions, `PollSend` pacing
//! wake-ups, `HopArrival`/`AckArrival` propagations — sit within a few
//! hundred microseconds to a few tens of milliseconds of the current virtual
//! time, while a handful of long timers (RTOs, rate-schedule transitions,
//! far-future poll wake-ups) sit seconds out.  A comparison-based heap pays
//! O(log n) pointer-chasing sifts per operation over that whole population;
//! a calendar queue instead hashes each event by time into a fixed wheel of
//! short-horizon buckets (O(1) push, near-O(1) pop) and only spills the rare
//! far-future event into a conventional heap.
//!
//! Ordering contract — identical to the `BinaryHeap<Reverse<EventEntry>>` it
//! replaces, and pinned by the equivalence proptest in this module and by the
//! recorder fingerprints: events pop in strictly increasing `(at, seq)`
//! order, where `seq` is the caller's monotonically increasing insertion
//! counter.  Ties on `at` therefore resolve by insertion order, exactly as
//! before.
//!
//! Precondition (the engine's `schedule` guarantees it by clamping with
//! `at.max(now)`): a pushed timestamp is never smaller than the timestamp of
//! the last popped event.  Violations in release builds are clamped into the
//! current cursor bucket, which preserves pop ordering for any timestamp no
//! older than the wheel's cursor bucket start.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the bucket width in nanoseconds: 2^18 ns ≈ 262 µs, a little
/// under the serialization time of one 1500 B segment at 48 Mbit/s — so the
/// dense `LinkDone`/`PollSend` cluster lands in the first handful of buckets
/// ahead of the cursor.
const BUCKET_SHIFT: u32 = 18;
/// Number of wheel buckets (power of two).  Horizon = 1024 · 262 µs ≈ 268 ms,
/// which covers propagation delays, the 10 ms tick and the 100 ms recorder
/// sample; only RTO-scale timers and rate-schedule transitions overflow.
const NUM_BUCKETS: usize = 1024;
const BUCKET_MASK: u64 = (NUM_BUCKETS as u64) - 1;

#[inline]
fn bucket_no(at: Time) -> u64 {
    at.0 >> BUCKET_SHIFT
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: Time,
    seq: u64,
    item: T,
}

/// Overflow-heap entry ordered by `(at, seq)` only (the payload does not
/// participate in comparisons; `seq` is unique, so equality is well defined).
#[derive(Debug)]
struct OverflowEntry<T>(Entry<T>);

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

/// A monotone calendar queue: `(Time, seq, payload)` triples pop in
/// `(at, seq)` order under the monotone-push precondition documented above.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Fixed wheel of unsorted buckets; an event whose absolute bucket number
    /// is `b` lives in slot `b & BUCKET_MASK`.  Invariant: every wheel event
    /// has bucket number in `[cursor, cursor + NUM_BUCKETS)`, so slots map
    /// one-to-one onto live bucket numbers.
    buckets: Vec<Vec<Entry<T>>>,
    /// Absolute bucket number of the last popped event (the wheel's lower
    /// edge).  Pushes beyond `cursor + NUM_BUCKETS` spill to `overflow`.
    cursor: u64,
    /// Lowest bucket number that may hold a wheel event — a scan hint that
    /// makes successive pops skip the empty region below the next cluster
    /// without rescanning it from `cursor` every time.
    hint: u64,
    wheel_len: usize,
    /// Far-future events, min-ordered by `(at, seq)`.  Events are *not*
    /// migrated back into the wheel as the cursor advances; `pop` simply
    /// compares the wheel minimum against the overflow minimum, which is
    /// cheap because the overflow population is tiny (timers, not traffic).
    overflow: BinaryHeap<Reverse<OverflowEntry<T>>>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the cursor at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: std::iter::repeat_with(Vec::new).take(NUM_BUCKETS).collect(),
            cursor: 0,
            hint: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Total number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an event.  `seq` must be unique and increasing across pushes
    /// (the engine's insertion counter); `at` must be no older than the last
    /// popped timestamp.
    pub fn push(&mut self, at: Time, seq: u64, item: T) {
        debug_assert!(bucket_no(at) >= self.cursor, "push into the popped past");
        // Clamp pathological pasts into the cursor bucket (see module docs);
        // the engine never triggers this because `schedule` clamps to `now`.
        let b = bucket_no(at).max(self.cursor);
        if b >= self.cursor + NUM_BUCKETS as u64 {
            self.overflow
                .push(Reverse(OverflowEntry(Entry { at, seq, item })));
            return;
        }
        self.buckets[(b & BUCKET_MASK) as usize].push(Entry { at, seq, item });
        self.wheel_len += 1;
        if b < self.hint {
            self.hint = b;
        }
    }

    /// Remove and return the earliest event by `(at, seq)`.
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        if self.wheel_len == 0 {
            return self.pop_overflow();
        }
        // Find the first non-empty bucket at or above the hint.  Bounded by
        // NUM_BUCKETS because the wheel is non-empty and every wheel event
        // lies within the horizon.
        let mut b = self.hint.max(self.cursor);
        let slot = loop {
            let slot = (b & BUCKET_MASK) as usize;
            if !self.buckets[slot].is_empty() {
                break slot;
            }
            b += 1;
        };
        self.hint = b;
        // Unsorted bucket: linear min-scan by (at, seq).  Buckets are short —
        // one bucket spans ~262 µs of virtual time.
        let bucket = &self.buckets[slot];
        let mut min_idx = 0;
        let mut min_key = (bucket[0].at, bucket[0].seq);
        for (i, e) in bucket.iter().enumerate().skip(1) {
            let key = (e.at, e.seq);
            if key < min_key {
                min_key = key;
                min_idx = i;
            }
        }
        // The overflow minimum can precede the wheel minimum only while the
        // wheel's next cluster sits beyond a long-dormant timer.
        if let Some(Reverse(top)) = self.overflow.peek() {
            if (top.0.at, top.0.seq) < min_key {
                return self.pop_overflow();
            }
        }
        let entry = self.buckets[slot].swap_remove(min_idx);
        self.wheel_len -= 1;
        self.cursor = b;
        Some((entry.at, entry.seq, entry.item))
    }

    fn pop_overflow(&mut self) -> Option<(Time, u64, T)> {
        let Reverse(OverflowEntry(entry)) = self.overflow.pop()?;
        let b = bucket_no(entry.at);
        // Advancing the cursor past wheel events is impossible here: every
        // wheel event's (at, seq) exceeded the overflow minimum, so its
        // bucket number is >= b.
        self.cursor = self.cursor.max(b);
        if self.hint < self.cursor {
            self.hint = self.cursor;
        }
        Some((entry.at, entry.seq, entry.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the BinaryHeap the calendar queue replaced.
    struct HeapQueue<T> {
        heap: BinaryHeap<Reverse<OverflowEntry<T>>>,
    }

    impl<T> HeapQueue<T> {
        fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: Time, seq: u64, item: T) {
            self.heap
                .push(Reverse(OverflowEntry(Entry { at, seq, item })));
        }
        fn pop(&mut self) -> Option<(Time, u64, T)> {
            self.heap
                .pop()
                .map(|Reverse(OverflowEntry(e))| (e.at, e.seq, e.item))
        }
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = CalendarQueue::new();
        q.push(Time(100), 1, "a");
        q.push(Time(50), 2, "b");
        q.push(Time(100), 3, "c");
        q.push(Time(50), 4, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, i)| i).collect();
        assert_eq!(order, ["b", "d", "a", "c"]);
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = CalendarQueue::new();
        let horizon = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        q.push(Time(horizon * 10), 1, "far");
        q.push(Time(5), 2, "near");
        q.push(Time(horizon * 3), 3, "mid");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("near"));
        // After the cursor jumps to the overflow event, pushes near it land
        // in the wheel again.
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("mid"));
        q.push(Time(horizon * 3 + 7), 4, "after-mid");
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("after-mid"));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("far"));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_monotone_pushes_match_heap_reference() {
        // A deterministic LCG drives an interleaved push/pop schedule whose
        // pushed timestamps are always >= the last popped timestamp — the
        // engine's contract.  Both queues must pop identical sequences.
        let mut lcg: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped = (Vec::new(), Vec::new());
        for _ in 0..20_000 {
            let r = next();
            if r % 100 < 60 {
                // Push at now + jitter: mostly short horizon, occasionally far.
                let jitter = match r % 10 {
                    0 => next() % (1 << 30),     // ~1 s out: overflow
                    1..=2 => next() % (1 << 24), // ~16 ms out
                    _ => next() % (1 << 19),     // within a couple of buckets
                };
                // Exercise same-timestamp ties frequently.
                let at = Time(now + (jitter / 7) * 7);
                seq += 1;
                cal.push(at, seq, seq);
                heap.push(at, seq, seq);
            } else {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a.is_some(), b.is_some());
                if let (Some(x), Some(y)) = (a, b) {
                    assert_eq!(x, y);
                    now = x.0 .0;
                    popped.0.push(x);
                    popped.1.push(y);
                }
            }
        }
        while let Some(x) = cal.pop() {
            let y = heap.pop().expect("heap drained early");
            assert_eq!(x, y);
            popped.0.push(x);
            popped.1.push(y);
        }
        assert!(heap.pop().is_none());
        assert_eq!(popped.0, popped.1);
        assert!(popped.0.len() > 1000, "schedule exercised too few pops");
    }
}
