//! The interface between the simulator and a flow's sending logic.
//!
//! The engine owns packet delivery, the bottleneck queue and the ACK path;
//! everything above that — windows, pacing, loss recovery, congestion control
//! — lives behind [`FlowEndpoint`], which `nimbus-transport` implements once
//! (as [`Sender`](../../nimbus_transport) machinery) for every congestion
//! control algorithm, and `nimbus-core` implements for Nimbus.
//!
//! The engine *polls* an endpoint for its next action whenever something that
//! could unblock it happens (an ACK arrives, a timer it asked for fires, the
//! periodic measurement tick runs).  The endpoint answers with a
//! [`SendAction`].

use crate::time::Time;

/// Everything a sender learns when an acknowledgement arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// Time the ACK reached the sender.
    pub now: Time,
    /// Cumulative ACK: all segments with `seq < cum_ack` have been received.
    pub cum_ack: u64,
    /// Sequence number of the data segment that triggered this ACK.
    pub triggering_seq: u64,
    /// Size in bytes of the triggering data segment (the bytes that
    /// physically arrived at the receiver now — use this for rate
    /// measurement, not `newly_delivered_bytes`).
    pub triggering_bytes: u32,
    /// When the triggering data segment was originally sent.
    pub data_sent_at: Time,
    /// Round-trip time sample for the triggering segment.
    pub rtt_sample: Time,
    /// True when the cumulative ACK did not advance (a duplicate ACK).
    pub is_duplicate: bool,
    /// Bytes newly delivered in order at the receiver because of the
    /// triggering segment (0 for out-of-order arrivals).
    pub newly_delivered_bytes: u64,
    /// Total bytes delivered in order at the receiver so far.
    pub total_delivered_bytes: u64,
    /// True when the triggering data segment arrived at the receiver
    /// carrying a CE mark (the receiver's ECN echo; always false for flows
    /// that did not negotiate ECN).
    pub ce: bool,
}

/// What a flow wants to do next, in answer to a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Transmit a data segment now.
    Transmit {
        /// Segment sequence number.
        seq: u64,
        /// Segment size in bytes.
        bytes: u32,
        /// Whether this is a retransmission.
        retransmit: bool,
    },
    /// Nothing to send right now; poll me again no later than this time
    /// (pacing release or retransmission timeout).
    WaitUntil(Time),
    /// Nothing to send and no timer outstanding; poll me again when an ACK
    /// arrives (pure ACK clocking, window-limited).
    Idle,
    /// The flow has delivered everything it ever will; tear it down.
    Finished,
}

/// A flow's sending logic, as seen by the simulator.
pub trait FlowEndpoint: Send {
    /// Called once, when the flow becomes active at its configured start time.
    fn on_start(&mut self, _now: Time) {}

    /// An acknowledgement arrived back at the sender.
    fn on_ack(&mut self, ack: &AckInfo);

    /// Periodic measurement tick (every `SimConfig::tick_interval`, default
    /// 10 ms — the CCP reporting cadence used by the paper's implementation).
    fn on_tick(&mut self, _now: Time) {}

    /// Ask the flow what to do next.
    fn poll_send(&mut self, now: Time) -> SendAction;

    /// Informational callback: the packet with `seq` was dropped before
    /// reaching the bottleneck queue or by the queue itself.  Real congestion
    /// controllers must NOT use this (they learn about losses from duplicate
    /// ACKs and timeouts); it exists for oracle endpoints in tests and for
    /// debugging.  Default: ignored.
    fn on_packet_dropped(&mut self, _seq: u64, _now: Time) {}

    /// A short human-readable label for logs and result tables.
    fn label(&self) -> &str {
        "flow"
    }

    /// Downcast support for post-run inspection (the transport `Sender`
    /// returns `Some(self)` so experiments can read controller internals).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial endpoint used to check default trait methods compile and
    /// behave as documented.
    struct Nop;
    impl FlowEndpoint for Nop {
        fn on_ack(&mut self, _ack: &AckInfo) {}
        fn poll_send(&mut self, _now: Time) -> SendAction {
            SendAction::Idle
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut n = Nop;
        n.on_start(Time::ZERO);
        n.on_tick(Time::from_millis(10));
        n.on_packet_dropped(3, Time::ZERO);
        assert_eq!(n.label(), "flow");
        assert_eq!(n.poll_send(Time::ZERO), SendAction::Idle);
    }

    #[test]
    fn ack_info_is_plain_data() {
        let a = AckInfo {
            now: Time::from_millis(100),
            cum_ack: 10,
            triggering_seq: 9,
            triggering_bytes: 1500,
            data_sent_at: Time::from_millis(50),
            rtt_sample: Time::from_millis(50),
            is_duplicate: false,
            newly_delivered_bytes: 1500,
            total_delivered_bytes: 15_000,
            ce: false,
        };
        let b = a;
        assert_eq!(a, b);
    }
}
