//! Bottleneck queue disciplines.
//!
//! The paper's robustness evaluation (§8.2, Appendix E) covers drop-tail
//! buffers from 0.25 to 4 BDP and the PIE AQM at two target delays; RED and
//! CoDel are included as additional AQMs for the extended robustness sweeps.
//!
//! All disciplines share the [`QueueDiscipline`] trait: the engine calls
//! [`QueueDiscipline::enqueue`] when a packet arrives at the bottleneck and
//! [`QueueDiscipline::dequeue`] when the link is ready to transmit the next
//! packet.  A discipline may drop on enqueue (drop-tail, RED, PIE) or on
//! dequeue (CoDel).

use crate::packet::Packet;
use crate::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Byte capacity of a buffer specified as `buffer_secs` of line rate at
/// `rate_bps` ("100 ms of buffering"), floored at one MSS so a tiny rate or
/// buffer still admits a packet.  The single sizing rule shared by initial
/// queue construction and the engine's rate-transition re-sizing.
pub fn delay_capacity_bytes(rate_bps: f64, buffer_secs: f64) -> u64 {
    (rate_bps * buffer_secs / 8.0).max(1500.0) as u64
}

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// The packet was accepted into the queue.
    Accepted,
    /// The packet was dropped by the discipline.
    Dropped,
}

/// A bottleneck queue discipline.
pub trait QueueDiscipline: std::fmt::Debug + Send {
    /// Offer a packet to the queue at time `now`.
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueResult;

    /// Remove the next packet to transmit, if any.
    fn dequeue(&mut self, now: Time) -> Option<Packet>;

    /// Current queue occupancy in bytes.
    fn len_bytes(&self) -> u64;

    /// Current queue occupancy in packets.
    fn len_packets(&self) -> usize;

    /// Total packets dropped by the discipline so far.
    fn drops(&self) -> u64;

    /// The configured capacity in bytes (for reporting).
    fn capacity_bytes(&self) -> u64;

    /// Re-size the physical buffer (used when a delay-sized buffer follows a
    /// time-varying link rate).  Packets already queued beyond a shrunken
    /// capacity are kept; only new enqueues see the new limit.
    fn set_capacity_bytes(&mut self, bytes: u64);

    /// Inform the discipline of a new link drain rate (bits/s).  Only AQMs
    /// that model the departure rate (PIE) care; the default is a no-op.
    fn set_drain_rate_bps(&mut self, _rate_bps: f64) {}

    /// Bytes currently queued belonging to the given flow (used to measure
    /// the "self-inflicted delay" of Fig. 3).
    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64;
}

/// Plain FIFO drop-tail queue with a byte capacity.
#[derive(Debug)]
pub struct DropTailQueue {
    queue: VecDeque<Packet>,
    capacity_bytes: u64,
    bytes: u64,
    drops: u64,
}

impl DropTailQueue {
    /// Create a drop-tail queue holding at most `capacity_bytes` bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        DropTailQueue {
            queue: VecDeque::new(),
            capacity_bytes,
            bytes: 0,
            drops: 0,
        }
    }

    /// Create a drop-tail queue sized to `buffer_secs` of data at `rate_bps`
    /// (the "100 ms of buffering" style of specification used in the paper).
    pub fn with_delay_capacity(rate_bps: f64, buffer_secs: f64) -> Self {
        Self::new(delay_capacity_bytes(rate_bps, buffer_secs))
    }
}

impl QueueDiscipline for DropTailQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: Time) -> EnqueueResult {
        if self.bytes + pkt.size_bytes as u64 > self.capacity_bytes {
            self.drops += 1;
            return EnqueueResult::Dropped;
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.size_bytes as u64;
        self.queue.push_back(pkt);
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size_bytes as u64;
        Some(pkt)
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn len_packets(&self) -> usize {
        self.queue.len()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.capacity_bytes = bytes.max(1500);
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.queue
            .iter()
            .filter(|p| p.flow == flow)
            .map(|p| p.size_bytes as u64)
            .sum()
    }
}

/// PIE (Proportional Integral controller Enhanced) AQM, RFC 8033 (simplified).
///
/// Drop probability is updated every `t_update` based on the deviation of the
/// estimated queueing delay from `target_delay` and on its trend.
#[derive(Debug)]
pub struct PieQueue {
    inner: DropTailQueue,
    /// Target queueing delay.
    target_delay: Time,
    /// Update interval for the drop probability.
    t_update: Time,
    /// Current drop probability.
    drop_prob: f64,
    /// Queue delay estimate at the last update.
    old_delay: Time,
    last_update: Time,
    /// Estimated departure rate in bytes/sec (configured; the bottleneck rate).
    depart_rate_bytes_per_sec: f64,
    rng: StdRng,
    drops: u64,
    /// α and β gains from RFC 8033 (per-second units).
    alpha: f64,
    beta: f64,
}

impl PieQueue {
    /// Create a PIE queue in front of a link of `rate_bps`, with a physical
    /// buffer of `capacity_bytes` and the given delay target.
    pub fn new(capacity_bytes: u64, rate_bps: f64, target_delay: Time, seed: u64) -> Self {
        PieQueue {
            inner: DropTailQueue::new(capacity_bytes),
            target_delay,
            t_update: Time::from_millis(15),
            drop_prob: 0.0,
            old_delay: Time::ZERO,
            last_update: Time::ZERO,
            depart_rate_bytes_per_sec: rate_bps / 8.0,
            rng: StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15),
            drops: 0,
            alpha: 0.125,
            beta: 1.25,
        }
    }

    /// Current estimated queueing delay (Little's law: backlog / departure rate).
    fn current_delay(&self) -> Time {
        Time::from_secs_f64(self.inner.len_bytes() as f64 / self.depart_rate_bytes_per_sec)
    }

    fn maybe_update(&mut self, now: Time) {
        while now.saturating_sub(self.last_update) >= self.t_update {
            self.last_update += self.t_update;
            let cur = self.current_delay();
            let p_delta = self.alpha * (cur.as_secs_f64() - self.target_delay.as_secs_f64())
                + self.beta * (cur.as_secs_f64() - self.old_delay.as_secs_f64());
            // RFC 8033 scales the adjustment when drop_prob is small to avoid
            // oscillation around zero.
            let scale = if self.drop_prob < 0.000001 {
                0.0009765625 // 1/2048
            } else if self.drop_prob < 0.00001 {
                0.001953125
            } else if self.drop_prob < 0.0001 {
                0.00390625
            } else if self.drop_prob < 0.001 {
                0.0078125
            } else if self.drop_prob < 0.01 {
                0.03125
            } else if self.drop_prob < 0.1 {
                0.125
            } else {
                1.0
            };
            self.drop_prob = (self.drop_prob + p_delta * scale).clamp(0.0, 1.0);
            // Decay the probability when the queue is idle.
            if cur == Time::ZERO && self.old_delay == Time::ZERO {
                self.drop_prob *= 0.98;
            }
            self.old_delay = cur;
        }
    }
}

impl QueueDiscipline for PieQueue {
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueResult {
        self.maybe_update(now);
        // Don't drop when the queue is nearly empty (burst allowance).
        let delay = self.current_delay();
        let protect = delay < Time::from_millis_f64(self.target_delay.as_millis_f64() / 2.0)
            && self.inner.len_packets() < 3;
        if !protect && self.drop_prob > 0.0 && self.rng.gen::<f64>() < self.drop_prob {
            self.drops += 1;
            return EnqueueResult::Dropped;
        }
        match self.inner.enqueue(pkt, now) {
            EnqueueResult::Accepted => EnqueueResult::Accepted,
            EnqueueResult::Dropped => {
                self.drops += 1;
                EnqueueResult::Dropped
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.maybe_update(now);
        self.inner.dequeue(now)
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.inner.set_capacity_bytes(bytes);
    }

    fn set_drain_rate_bps(&mut self, rate_bps: f64) {
        self.depart_rate_bytes_per_sec = (rate_bps / 8.0).max(1.0);
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.inner.bytes_for_flow(flow)
    }
}

/// Random Early Detection with EWMA-averaged queue length.
#[derive(Debug)]
pub struct RedQueue {
    inner: DropTailQueue,
    min_thresh_bytes: f64,
    max_thresh_bytes: f64,
    max_p: f64,
    weight: f64,
    avg_bytes: f64,
    rng: StdRng,
    drops: u64,
}

impl RedQueue {
    /// Create a RED queue.  Thresholds default to 25% / 75% of capacity with
    /// `max_p = 0.1` and queue-weight 0.002 (classic Floyd/Jacobson values).
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        RedQueue {
            inner: DropTailQueue::new(capacity_bytes),
            min_thresh_bytes: capacity_bytes as f64 * 0.25,
            max_thresh_bytes: capacity_bytes as f64 * 0.75,
            max_p: 0.1,
            weight: 0.002,
            avg_bytes: 0.0,
            rng: StdRng::seed_from_u64(seed ^ 0x6a09e667f3bcc908),
            drops: 0,
        }
    }
}

impl QueueDiscipline for RedQueue {
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueResult {
        self.avg_bytes =
            (1.0 - self.weight) * self.avg_bytes + self.weight * self.inner.len_bytes() as f64;
        let drop = if self.avg_bytes >= self.max_thresh_bytes {
            true
        } else if self.avg_bytes > self.min_thresh_bytes {
            let p = self.max_p * (self.avg_bytes - self.min_thresh_bytes)
                / (self.max_thresh_bytes - self.min_thresh_bytes);
            self.rng.gen::<f64>() < p
        } else {
            false
        };
        if drop {
            self.drops += 1;
            return EnqueueResult::Dropped;
        }
        match self.inner.enqueue(pkt, now) {
            EnqueueResult::Accepted => EnqueueResult::Accepted,
            EnqueueResult::Dropped => {
                self.drops += 1;
                EnqueueResult::Dropped
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.inner.set_capacity_bytes(bytes);
        self.min_thresh_bytes = self.inner.capacity_bytes() as f64 * 0.25;
        self.max_thresh_bytes = self.inner.capacity_bytes() as f64 * 0.75;
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.inner.bytes_for_flow(flow)
    }
}

/// CoDel (Controlled Delay) AQM: drops at dequeue when the packet sojourn
/// time has stayed above `target` for at least `interval`.
#[derive(Debug)]
pub struct CoDelQueue {
    inner: DropTailQueue,
    target: Time,
    interval: Time,
    first_above_time: Option<Time>,
    dropping: bool,
    drop_next: Time,
    drop_count: u64,
    drops: u64,
}

impl CoDelQueue {
    /// Create a CoDel queue with the standard 5 ms target / 100 ms interval.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_params(capacity_bytes, Time::from_millis(5), Time::from_millis(100))
    }

    /// Create a CoDel queue with explicit target and interval.
    pub fn with_params(capacity_bytes: u64, target: Time, interval: Time) -> Self {
        CoDelQueue {
            inner: DropTailQueue::new(capacity_bytes),
            target,
            interval,
            first_above_time: None,
            dropping: false,
            drop_next: Time::ZERO,
            drop_count: 0,
            drops: 0,
        }
    }

    fn control_law(&self, t: Time) -> Time {
        let interval_s = self.interval.as_secs_f64();
        t + Time::from_secs_f64(interval_s / ((self.drop_count.max(1)) as f64).sqrt())
    }

    /// Returns Some(pkt) if the packet should be delivered, updating the
    /// "above target" tracking state.
    fn should_drop(&mut self, pkt: &Packet, now: Time) -> bool {
        let sojourn = pkt.queueing_delay(now);
        if sojourn < self.target || self.inner.len_bytes() < 1500 * 2 {
            self.first_above_time = None;
            false
        } else {
            match self.first_above_time {
                None => {
                    self.first_above_time = Some(now + self.interval);
                    false
                }
                Some(fat) => now >= fat,
            }
        }
    }
}

impl QueueDiscipline for CoDelQueue {
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueResult {
        match self.inner.enqueue(pkt, now) {
            EnqueueResult::Accepted => EnqueueResult::Accepted,
            EnqueueResult::Dropped => {
                self.drops += 1;
                EnqueueResult::Dropped
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        loop {
            let pkt = self.inner.dequeue(now)?;
            let ok_to_drop = self.should_drop(&pkt, now);
            if self.dropping {
                if !ok_to_drop {
                    self.dropping = false;
                    return Some(pkt);
                }
                if now >= self.drop_next {
                    self.drops += 1;
                    self.drop_count += 1;
                    self.drop_next = self.control_law(self.drop_next);
                    continue; // drop this packet, try the next
                }
                return Some(pkt);
            } else if ok_to_drop {
                // Enter dropping state, drop this packet.
                self.drops += 1;
                self.dropping = true;
                self.drop_count = if self.drop_count > 2 {
                    self.drop_count - 2
                } else {
                    1
                };
                self.drop_next = self.control_law(now);
                continue;
            } else {
                return Some(pkt);
            }
        }
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.inner.set_capacity_bytes(bytes);
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.inner.bytes_for_flow(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pkt(flow: usize, seq: u64, size: u32, t_ms: u64) -> Packet {
        Packet::new(flow, seq, size, Time::from_millis(t_ms), false)
    }

    #[test]
    fn droptail_respects_capacity_and_fifo_order() {
        let mut q = DropTailQueue::new(4000);
        assert_eq!(
            q.enqueue(pkt(0, 0, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        assert_eq!(
            q.enqueue(pkt(0, 1, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        // Third 1500B packet exceeds 4000B capacity.
        assert_eq!(
            q.enqueue(pkt(0, 2, 1500, 0), Time::ZERO),
            EnqueueResult::Dropped
        );
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len_packets(), 2);
        assert_eq!(q.len_bytes(), 3000);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().seq, 0);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().seq, 1);
        assert!(q.dequeue(Time::ZERO).is_none());
        assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn droptail_delay_capacity_matches_bdp_style_spec() {
        // 96 Mbit/s with 100 ms of buffering = 1.2 MB.
        let q = DropTailQueue::with_delay_capacity(96e6, 0.1);
        assert_eq!(q.capacity_bytes(), 1_200_000);
    }

    #[test]
    fn droptail_tracks_per_flow_bytes() {
        let mut q = DropTailQueue::new(100_000);
        q.enqueue(pkt(1, 0, 1500, 0), Time::ZERO);
        q.enqueue(pkt(2, 0, 1000, 0), Time::ZERO);
        q.enqueue(pkt(1, 1, 1500, 0), Time::ZERO);
        assert_eq!(q.bytes_for_flow(1), 3000);
        assert_eq!(q.bytes_for_flow(2), 1000);
        assert_eq!(q.bytes_for_flow(9), 0);
    }

    #[test]
    fn pie_drops_under_sustained_overload() {
        // Keep the queue persistently at ~10x the target delay; PIE's drop
        // probability must rise and start dropping packets.
        let rate = 12e6; // 12 Mbit/s -> 1500B packet = 1 ms
        let mut q = PieQueue::new(3_000_000, rate, Time::from_millis(15), 1);
        let mut now = Time::ZERO;
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for i in 0..20_000u64 {
            // Enqueue 2 packets per 1 ms slot but dequeue only 1 -> queue grows.
            for j in 0..2 {
                match q.enqueue(pkt(0, i * 2 + j, 1500, 0), now) {
                    EnqueueResult::Accepted => accepted += 1,
                    EnqueueResult::Dropped => dropped += 1,
                }
            }
            let _ = q.dequeue(now);
            now += Time::from_millis(1);
        }
        assert!(
            dropped > 100,
            "PIE should have dropped packets, dropped={dropped}"
        );
        assert!(accepted > 0);
    }

    #[test]
    fn pie_idle_queue_does_not_drop() {
        let mut q = PieQueue::new(1_000_000, 96e6, Time::from_millis(15), 2);
        let mut now = Time::ZERO;
        let mut drops = 0;
        for i in 0..1000 {
            if q.enqueue(pkt(0, i, 1500, 0), now) == EnqueueResult::Dropped {
                drops += 1;
            }
            // Drain immediately: queue never builds.
            let _ = q.dequeue(now);
            now += Time::from_millis(10);
        }
        assert_eq!(drops, 0);
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let mut q = RedQueue::new(150_000, 7);
        // Fill to ~50% so the average sits between min (25%) and max (75%).
        let mut drops = 0;
        let mut accepted = 0;
        for i in 0..5000u64 {
            match q.enqueue(pkt(0, i, 1500, 0), Time::ZERO) {
                EnqueueResult::Accepted => {
                    accepted += 1;
                    if q.len_bytes() > 75_000 {
                        let _ = q.dequeue(Time::ZERO);
                    }
                }
                EnqueueResult::Dropped => drops += 1,
            }
        }
        assert!(drops > 0, "RED should drop between thresholds");
        assert!(accepted > drops, "RED should not drop everything");
    }

    #[test]
    fn codel_drops_when_sojourn_stays_above_target() {
        let mut q = CoDelQueue::new(10_000_000);
        // Enqueue a burst at t=0, dequeue slowly so sojourn times are large.
        for i in 0..2000u64 {
            q.enqueue(pkt(0, i, 1500, 0), Time::ZERO);
        }
        let mut delivered = 0;
        let mut now = Time::from_millis(1);
        while let Some(_p) = q.dequeue(now) {
            delivered += 1;
            now += Time::from_millis(1);
            if delivered > 5000 {
                break;
            }
        }
        assert!(q.drops() > 0, "CoDel should drop under persistent delay");
        assert!(delivered > 0);
    }

    #[test]
    fn codel_does_not_drop_short_lived_queues() {
        let mut q = CoDelQueue::new(1_000_000);
        let mut now = Time::ZERO;
        for i in 0..100u64 {
            q.enqueue(pkt(0, i, 1500, now.as_nanos() / 1_000_000), now);
            // Dequeue within the target delay.
            let _ = q.dequeue(now + Time::from_millis(1));
            now += Time::from_millis(10);
        }
        assert_eq!(q.drops(), 0);
    }

    proptest! {
        #[test]
        fn prop_droptail_byte_count_consistent(ops in proptest::collection::vec((0u8..2, 100u32..2000), 1..300)) {
            let mut q = DropTailQueue::new(20_000);
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut seq = 0u64;
            for (op, size) in ops {
                if op == 0 {
                    let accepted = q.enqueue(pkt(0, seq, size, 0), Time::ZERO) == EnqueueResult::Accepted;
                    let model_accepts = model.iter().map(|&s| s as u64).sum::<u64>() + size as u64 <= 20_000;
                    prop_assert_eq!(accepted, model_accepts);
                    if accepted { model.push_back(size); }
                    seq += 1;
                } else {
                    let got = q.dequeue(Time::ZERO).map(|p| p.size_bytes);
                    let want = model.pop_front();
                    prop_assert_eq!(got, want);
                }
                prop_assert_eq!(q.len_bytes(), model.iter().map(|&s| s as u64).sum::<u64>());
                prop_assert_eq!(q.len_packets(), model.len());
            }
        }

        #[test]
        fn prop_fifo_order_preserved(sizes in proptest::collection::vec(500u32..1500, 1..50)) {
            let mut q = DropTailQueue::new(10_000_000);
            for (i, &s) in sizes.iter().enumerate() {
                q.enqueue(pkt(0, i as u64, s, 0), Time::ZERO);
            }
            let mut last = None;
            while let Some(p) = q.dequeue(Time::ZERO) {
                if let Some(prev) = last {
                    prop_assert!(p.seq > prev);
                }
                last = Some(p.seq);
            }
        }
    }
}
