//! Bottleneck queue disciplines.
//!
//! The paper's robustness evaluation (§8.2, Appendix E) covers drop-tail
//! buffers from 0.25 to 4 BDP and the PIE AQM at two target delays; RED and
//! CoDel are included as additional AQMs for the extended robustness sweeps.
//!
//! All disciplines share the [`QueueDiscipline`] trait: the engine calls
//! [`QueueDiscipline::enqueue`] when a packet arrives at the bottleneck and
//! [`QueueDiscipline::dequeue`] when the link is ready to transmit the next
//! packet.  A discipline may drop on enqueue (drop-tail, RED, PIE) or on
//! dequeue (CoDel).
//!
//! Every discipline also supports ECN marking ([`EcnMarking`]): with a
//! marking profile installed, congestion signals aimed at ECN-capable (ECT)
//! packets become CE marks instead of drops — classic RFC 3168 semantics
//! under [`EcnMarking::Classic`], shallow L4S-style step marking under
//! [`EcnMarking::Step`].  Non-ECT traffic and [`EcnMarking::None`] queues
//! behave byte-for-byte as before, including the AQMs' RNG draw sequences.

use crate::packet::{EcnCodepoint, Packet};
use crate::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How (and whether) a queue marks ECN-capable packets instead of dropping
/// them.
///
/// Marking only ever applies to [`EcnCodepoint::Ect`] packets; non-ECT
/// traffic always takes the original drop path, and physical buffer overflow
/// always drops regardless of codepoint.  With marking enabled the AQMs
/// (PIE, RED, CoDel) reuse the *same* drop decision — including the same RNG
/// draw — and merely convert it to a mark for ECT packets, so enabling ECN
/// is a provable no-op for every non-ECT flow sharing the queue.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum EcnMarking {
    /// No marking: every congestion signal is a drop (the default).
    #[default]
    None,
    /// Classic ECN (RFC 3168): wherever the discipline would drop by AQM
    /// decision, ECT packets are CE-marked and delivered instead.  On a
    /// plain drop-tail queue — which has no AQM decision short of overflow —
    /// this marks ECT packets once the backlog exceeds half the buffer.
    Classic,
    /// L4S-style step marking (RFC 9331): ECT packets are CE-marked as soon
    /// as the queue's (projected or measured) sojourn time meets
    /// `threshold_s` — typically ~1 ms, far below any drop threshold — while
    /// the drop logic stays untouched.  AQM drop decisions on ECT packets
    /// also convert to marks, as under [`EcnMarking::Classic`].
    Step {
        /// Sojourn-time marking threshold, seconds.
        threshold_s: f64,
    },
}

impl EcnMarking {
    /// Whether any marking is enabled.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, EcnMarking::None)
    }

    /// The step-marking threshold, if this is the L4S profile.
    pub fn step_threshold_s(&self) -> Option<f64> {
        match self {
            EcnMarking::Step { threshold_s } => Some(*threshold_s),
            _ => None,
        }
    }
}

/// Byte capacity of a buffer specified as `buffer_secs` of line rate at
/// `rate_bps` ("100 ms of buffering"), floored at one MSS so a tiny rate or
/// buffer still admits a packet.  The single sizing rule shared by initial
/// queue construction and the engine's rate-transition re-sizing.
pub fn delay_capacity_bytes(rate_bps: f64, buffer_secs: f64) -> u64 {
    (rate_bps * buffer_secs / 8.0).max(1500.0) as u64
}

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// The packet was accepted into the queue.
    Accepted,
    /// The packet was dropped by the discipline.
    Dropped,
}

/// A bottleneck queue discipline.
pub trait QueueDiscipline: std::fmt::Debug + Send {
    /// Offer a packet to the queue at time `now`.
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueResult;

    /// Remove the next packet to transmit, if any.
    fn dequeue(&mut self, now: Time) -> Option<Packet>;

    /// Current queue occupancy in bytes.
    fn len_bytes(&self) -> u64;

    /// Current queue occupancy in packets.
    fn len_packets(&self) -> usize;

    /// Total packets dropped by the discipline so far.
    fn drops(&self) -> u64;

    /// The configured capacity in bytes (for reporting).
    fn capacity_bytes(&self) -> u64;

    /// Re-size the physical buffer (used when a delay-sized buffer follows a
    /// time-varying link rate).  Packets already queued beyond a shrunken
    /// capacity are kept; only new enqueues see the new limit.
    fn set_capacity_bytes(&mut self, bytes: u64);

    /// Inform the discipline of a new link drain rate (bits/s).  AQMs that
    /// model the departure rate (PIE) and step-marking projections use it;
    /// the default is a no-op.
    fn set_drain_rate_bps(&mut self, _rate_bps: f64) {}

    /// Install an ECN marking profile.  The default discards it (no
    /// marking); every built-in discipline stores and honours it.
    fn set_ecn_marking(&mut self, _marking: EcnMarking) {}

    /// Total ECT packets CE-marked by the discipline so far.
    fn marks(&self) -> u64 {
        0
    }

    /// Bytes currently queued belonging to the given flow (used to measure
    /// the "self-inflicted delay" of Fig. 3).
    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64;
}

/// Plain FIFO drop-tail queue with a byte capacity.
#[derive(Debug)]
pub struct DropTailQueue {
    queue: VecDeque<Packet>,
    capacity_bytes: u64,
    bytes: u64,
    drops: u64,
    ecn: EcnMarking,
    drain_rate_bps: f64,
    marks: u64,
}

impl DropTailQueue {
    /// Create a drop-tail queue holding at most `capacity_bytes` bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        DropTailQueue {
            queue: VecDeque::new(),
            capacity_bytes,
            bytes: 0,
            drops: 0,
            ecn: EcnMarking::None,
            drain_rate_bps: 0.0,
            marks: 0,
        }
    }

    /// Create a drop-tail queue sized to `buffer_secs` of data at `rate_bps`
    /// (the "100 ms of buffering" style of specification used in the paper).
    pub fn with_delay_capacity(rate_bps: f64, buffer_secs: f64) -> Self {
        Self::new(delay_capacity_bytes(rate_bps, buffer_secs))
    }

    /// CE-mark `pkt` if it is ECT and the backlog (including `pkt` itself)
    /// crosses the marking threshold: half the buffer under
    /// [`EcnMarking::Classic`], the projected sojourn under
    /// [`EcnMarking::Step`] (which needs a known drain rate).
    fn maybe_mark(&mut self, pkt: &mut Packet) {
        if pkt.ecn != EcnCodepoint::Ect {
            return;
        }
        let backlog = self.bytes + pkt.size_bytes as u64;
        let mark = match self.ecn {
            EcnMarking::None => false,
            EcnMarking::Classic => 2 * backlog >= self.capacity_bytes,
            EcnMarking::Step { threshold_s } => {
                self.drain_rate_bps > 0.0
                    && (backlog * 8) as f64 / self.drain_rate_bps >= threshold_s
            }
        };
        if mark {
            pkt.ecn = EcnCodepoint::Ce;
            self.marks += 1;
        }
    }
}

impl QueueDiscipline for DropTailQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: Time) -> EnqueueResult {
        if self.bytes + pkt.size_bytes as u64 > self.capacity_bytes {
            self.drops += 1;
            return EnqueueResult::Dropped;
        }
        self.maybe_mark(&mut pkt);
        pkt.enqueued_at = now;
        self.bytes += pkt.size_bytes as u64;
        self.queue.push_back(pkt);
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size_bytes as u64;
        Some(pkt)
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn len_packets(&self) -> usize {
        self.queue.len()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.capacity_bytes = bytes.max(1500);
    }

    fn set_drain_rate_bps(&mut self, rate_bps: f64) {
        self.drain_rate_bps = rate_bps.max(0.0);
    }

    fn set_ecn_marking(&mut self, marking: EcnMarking) {
        self.ecn = marking;
    }

    fn marks(&self) -> u64 {
        self.marks
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.queue
            .iter()
            .filter(|p| p.flow == flow)
            .map(|p| p.size_bytes as u64)
            .sum()
    }
}

/// PIE (Proportional Integral controller Enhanced) AQM, RFC 8033 (simplified).
///
/// Drop probability is updated every `t_update` based on the deviation of the
/// estimated queueing delay from `target_delay` and on its trend.
#[derive(Debug)]
pub struct PieQueue {
    inner: DropTailQueue,
    /// Target queueing delay.
    target_delay: Time,
    /// Update interval for the drop probability.
    t_update: Time,
    /// Current drop probability.
    drop_prob: f64,
    /// Queue delay estimate at the last update.
    old_delay: Time,
    last_update: Time,
    /// Estimated departure rate in bytes/sec (configured; the bottleneck rate).
    depart_rate_bytes_per_sec: f64,
    rng: StdRng,
    drops: u64,
    /// α and β gains from RFC 8033 (per-second units).
    alpha: f64,
    beta: f64,
    ecn: EcnMarking,
    marks: u64,
}

impl PieQueue {
    /// Create a PIE queue in front of a link of `rate_bps`, with a physical
    /// buffer of `capacity_bytes` and the given delay target.
    pub fn new(capacity_bytes: u64, rate_bps: f64, target_delay: Time, seed: u64) -> Self {
        PieQueue {
            inner: DropTailQueue::new(capacity_bytes),
            target_delay,
            t_update: Time::from_millis(15),
            drop_prob: 0.0,
            old_delay: Time::ZERO,
            last_update: Time::ZERO,
            depart_rate_bytes_per_sec: rate_bps / 8.0,
            rng: StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15),
            drops: 0,
            alpha: 0.125,
            beta: 1.25,
            ecn: EcnMarking::None,
            marks: 0,
        }
    }

    /// Current estimated queueing delay (Little's law: backlog / departure rate).
    fn current_delay(&self) -> Time {
        Time::from_secs_f64(self.inner.len_bytes() as f64 / self.depart_rate_bytes_per_sec)
    }

    fn maybe_update(&mut self, now: Time) {
        while now.saturating_sub(self.last_update) >= self.t_update {
            self.last_update += self.t_update;
            let cur = self.current_delay();
            let p_delta = self.alpha * (cur.as_secs_f64() - self.target_delay.as_secs_f64())
                + self.beta * (cur.as_secs_f64() - self.old_delay.as_secs_f64());
            // RFC 8033 scales the adjustment when drop_prob is small to avoid
            // oscillation around zero.
            let scale = if self.drop_prob < 0.000001 {
                0.0009765625 // 1/2048
            } else if self.drop_prob < 0.00001 {
                0.001953125
            } else if self.drop_prob < 0.0001 {
                0.00390625
            } else if self.drop_prob < 0.001 {
                0.0078125
            } else if self.drop_prob < 0.01 {
                0.03125
            } else if self.drop_prob < 0.1 {
                0.125
            } else {
                1.0
            };
            self.drop_prob = (self.drop_prob + p_delta * scale).clamp(0.0, 1.0);
            // Decay the probability when the queue is idle.
            if cur == Time::ZERO && self.old_delay == Time::ZERO {
                self.drop_prob *= 0.98;
            }
            self.old_delay = cur;
        }
    }
}

impl QueueDiscipline for PieQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: Time) -> EnqueueResult {
        self.maybe_update(now);
        // Don't drop when the queue is nearly empty (burst allowance).
        let delay = self.current_delay();
        let protect = delay < Time::from_millis_f64(self.target_delay.as_millis_f64() / 2.0)
            && self.inner.len_packets() < 3;
        // The probabilistic decision (and its RNG draw) is identical whether
        // or not marking is enabled; only what happens to an ECT packet that
        // loses the draw changes (CE-mark and keep vs drop).
        let mut marked = false;
        if !protect && self.drop_prob > 0.0 && self.rng.gen::<f64>() < self.drop_prob {
            if self.ecn.is_enabled() && pkt.ecn == EcnCodepoint::Ect {
                pkt.ecn = EcnCodepoint::Ce;
                marked = true;
            } else {
                self.drops += 1;
                return EnqueueResult::Dropped;
            }
        }
        // The L4S step profile additionally marks on projected sojourn time,
        // well below the drop-probability regime.
        if let Some(threshold_s) = self.ecn.step_threshold_s() {
            if pkt.ecn == EcnCodepoint::Ect
                && (self.inner.len_bytes() + pkt.size_bytes as u64) as f64
                    / self.depart_rate_bytes_per_sec
                    >= threshold_s
            {
                pkt.ecn = EcnCodepoint::Ce;
                marked = true;
            }
        }
        // The mark is only counted if the physical buffer accepts the packet:
        // a tail-dropped packet is a drop, never a mark (marked XOR dropped).
        match self.inner.enqueue(pkt, now) {
            EnqueueResult::Accepted => {
                if marked {
                    self.marks += 1;
                }
                EnqueueResult::Accepted
            }
            EnqueueResult::Dropped => {
                self.drops += 1;
                EnqueueResult::Dropped
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.maybe_update(now);
        self.inner.dequeue(now)
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.inner.set_capacity_bytes(bytes);
    }

    fn set_drain_rate_bps(&mut self, rate_bps: f64) {
        self.depart_rate_bytes_per_sec = (rate_bps / 8.0).max(1.0);
    }

    fn set_ecn_marking(&mut self, marking: EcnMarking) {
        self.ecn = marking;
    }

    fn marks(&self) -> u64 {
        self.marks
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.inner.bytes_for_flow(flow)
    }
}

/// Random Early Detection with EWMA-averaged queue length.
#[derive(Debug)]
pub struct RedQueue {
    inner: DropTailQueue,
    min_thresh_bytes: f64,
    max_thresh_bytes: f64,
    max_p: f64,
    weight: f64,
    avg_bytes: f64,
    rng: StdRng,
    drops: u64,
    drain_rate_bps: f64,
    ecn: EcnMarking,
    marks: u64,
}

impl RedQueue {
    /// Create a RED queue.  Thresholds default to 25% / 75% of capacity with
    /// `max_p = 0.1` and queue-weight 0.002 (classic Floyd/Jacobson values).
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        RedQueue {
            inner: DropTailQueue::new(capacity_bytes),
            min_thresh_bytes: capacity_bytes as f64 * 0.25,
            max_thresh_bytes: capacity_bytes as f64 * 0.75,
            max_p: 0.1,
            weight: 0.002,
            avg_bytes: 0.0,
            rng: StdRng::seed_from_u64(seed ^ 0x6a09e667f3bcc908),
            drops: 0,
            drain_rate_bps: 0.0,
            ecn: EcnMarking::None,
            marks: 0,
        }
    }
}

impl QueueDiscipline for RedQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: Time) -> EnqueueResult {
        self.avg_bytes =
            (1.0 - self.weight) * self.avg_bytes + self.weight * self.inner.len_bytes() as f64;
        // The early-detection decision (and its RNG draw) is computed exactly
        // as without ECN; marking only changes its consequence for ECT packets.
        let drop = if self.avg_bytes >= self.max_thresh_bytes {
            true
        } else if self.avg_bytes > self.min_thresh_bytes {
            let p = self.max_p * (self.avg_bytes - self.min_thresh_bytes)
                / (self.max_thresh_bytes - self.min_thresh_bytes);
            self.rng.gen::<f64>() < p
        } else {
            false
        };
        let mut marked = false;
        if drop {
            if self.ecn.is_enabled() && pkt.ecn == EcnCodepoint::Ect {
                pkt.ecn = EcnCodepoint::Ce;
                marked = true;
            } else {
                self.drops += 1;
                return EnqueueResult::Dropped;
            }
        }
        if let Some(threshold_s) = self.ecn.step_threshold_s() {
            if pkt.ecn == EcnCodepoint::Ect
                && self.drain_rate_bps > 0.0
                && ((self.inner.len_bytes() + pkt.size_bytes as u64) * 8) as f64
                    / self.drain_rate_bps
                    >= threshold_s
            {
                pkt.ecn = EcnCodepoint::Ce;
                marked = true;
            }
        }
        // Count the mark only once the physical buffer accepts the packet: a
        // tail-dropped packet is a drop, never a mark (marked XOR dropped).
        match self.inner.enqueue(pkt, now) {
            EnqueueResult::Accepted => {
                if marked {
                    self.marks += 1;
                }
                EnqueueResult::Accepted
            }
            EnqueueResult::Dropped => {
                self.drops += 1;
                EnqueueResult::Dropped
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.inner.set_capacity_bytes(bytes);
        self.min_thresh_bytes = self.inner.capacity_bytes() as f64 * 0.25;
        self.max_thresh_bytes = self.inner.capacity_bytes() as f64 * 0.75;
    }

    fn set_drain_rate_bps(&mut self, rate_bps: f64) {
        self.drain_rate_bps = rate_bps.max(0.0);
    }

    fn set_ecn_marking(&mut self, marking: EcnMarking) {
        self.ecn = marking;
    }

    fn marks(&self) -> u64 {
        self.marks
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.inner.bytes_for_flow(flow)
    }
}

/// CoDel (Controlled Delay) AQM: drops at dequeue when the packet sojourn
/// time has stayed above `target` for at least `interval`.
#[derive(Debug)]
pub struct CoDelQueue {
    inner: DropTailQueue,
    target: Time,
    interval: Time,
    first_above_time: Option<Time>,
    dropping: bool,
    drop_next: Time,
    drop_count: u64,
    drops: u64,
    ecn: EcnMarking,
    marks: u64,
}

impl CoDelQueue {
    /// Create a CoDel queue with the standard 5 ms target / 100 ms interval.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_params(capacity_bytes, Time::from_millis(5), Time::from_millis(100))
    }

    /// Create a CoDel queue with explicit target and interval.
    pub fn with_params(capacity_bytes: u64, target: Time, interval: Time) -> Self {
        CoDelQueue {
            inner: DropTailQueue::new(capacity_bytes),
            target,
            interval,
            first_above_time: None,
            dropping: false,
            drop_next: Time::ZERO,
            drop_count: 0,
            drops: 0,
            ecn: EcnMarking::None,
            marks: 0,
        }
    }

    /// Whether the control law's next "drop" should instead CE-mark `pkt`
    /// and deliver it (RFC 8289 §3: with ECN, mark rather than drop).  An
    /// already-CE packet (step-marked moments ago) is delivered as-is — the
    /// congestion signal it carries is the whole point of marking it.
    fn mark_instead(&self, pkt: &Packet) -> bool {
        self.ecn.is_enabled() && pkt.ecn != EcnCodepoint::NotEct
    }

    fn control_law(&self, t: Time) -> Time {
        let interval_s = self.interval.as_secs_f64();
        t + Time::from_secs_f64(interval_s / ((self.drop_count.max(1)) as f64).sqrt())
    }

    /// Returns Some(pkt) if the packet should be delivered, updating the
    /// "above target" tracking state.
    fn should_drop(&mut self, pkt: &Packet, now: Time) -> bool {
        let sojourn = pkt.queueing_delay(now);
        if sojourn < self.target || self.inner.len_bytes() < 1500 * 2 {
            self.first_above_time = None;
            false
        } else {
            match self.first_above_time {
                None => {
                    self.first_above_time = Some(now + self.interval);
                    false
                }
                Some(fat) => now >= fat,
            }
        }
    }
}

impl QueueDiscipline for CoDelQueue {
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueResult {
        match self.inner.enqueue(pkt, now) {
            EnqueueResult::Accepted => EnqueueResult::Accepted,
            EnqueueResult::Dropped => {
                self.drops += 1;
                EnqueueResult::Dropped
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        loop {
            let mut pkt = self.inner.dequeue(now)?;
            // The L4S step profile marks on the *measured* sojourn time,
            // independently of (and typically far below) the drop law.
            if let Some(threshold_s) = self.ecn.step_threshold_s() {
                if pkt.ecn == EcnCodepoint::Ect
                    && pkt.queueing_delay(now).as_secs_f64() >= threshold_s
                {
                    pkt.ecn = EcnCodepoint::Ce;
                    self.marks += 1;
                }
            }
            let ok_to_drop = self.should_drop(&pkt, now);
            if self.dropping {
                if !ok_to_drop {
                    self.dropping = false;
                    return Some(pkt);
                }
                if now >= self.drop_next {
                    self.drop_count += 1;
                    self.drop_next = self.control_law(self.drop_next);
                    if self.mark_instead(&pkt) {
                        // Same control-law state advance; mark and deliver.
                        if pkt.ecn == EcnCodepoint::Ect {
                            pkt.ecn = EcnCodepoint::Ce;
                            self.marks += 1;
                        }
                        return Some(pkt);
                    }
                    self.drops += 1;
                    continue; // drop this packet, try the next
                }
                return Some(pkt);
            } else if ok_to_drop {
                // Enter dropping state; drop (or, with ECN, mark) this packet.
                self.dropping = true;
                self.drop_count = if self.drop_count > 2 {
                    self.drop_count - 2
                } else {
                    1
                };
                self.drop_next = self.control_law(now);
                if self.mark_instead(&pkt) {
                    if pkt.ecn == EcnCodepoint::Ect {
                        pkt.ecn = EcnCodepoint::Ce;
                        self.marks += 1;
                    }
                    return Some(pkt);
                }
                self.drops += 1;
                continue;
            } else {
                return Some(pkt);
            }
        }
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn set_capacity_bytes(&mut self, bytes: u64) {
        self.inner.set_capacity_bytes(bytes);
    }

    fn set_ecn_marking(&mut self, marking: EcnMarking) {
        self.ecn = marking;
    }

    fn marks(&self) -> u64 {
        self.marks
    }

    fn bytes_for_flow(&self, flow: crate::packet::FlowId) -> u64 {
        self.inner.bytes_for_flow(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pkt(flow: usize, seq: u64, size: u32, t_ms: u64) -> Packet {
        Packet::new(flow, seq, size, Time::from_millis(t_ms), false)
    }

    fn ect(flow: usize, seq: u64, size: u32, t_ms: u64) -> Packet {
        let mut p = pkt(flow, seq, size, t_ms);
        p.ecn = EcnCodepoint::Ect;
        p
    }

    #[test]
    fn droptail_respects_capacity_and_fifo_order() {
        let mut q = DropTailQueue::new(4000);
        assert_eq!(
            q.enqueue(pkt(0, 0, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        assert_eq!(
            q.enqueue(pkt(0, 1, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        // Third 1500B packet exceeds 4000B capacity.
        assert_eq!(
            q.enqueue(pkt(0, 2, 1500, 0), Time::ZERO),
            EnqueueResult::Dropped
        );
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len_packets(), 2);
        assert_eq!(q.len_bytes(), 3000);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().seq, 0);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().seq, 1);
        assert!(q.dequeue(Time::ZERO).is_none());
        assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn droptail_delay_capacity_matches_bdp_style_spec() {
        // 96 Mbit/s with 100 ms of buffering = 1.2 MB.
        let q = DropTailQueue::with_delay_capacity(96e6, 0.1);
        assert_eq!(q.capacity_bytes(), 1_200_000);
    }

    #[test]
    fn droptail_tracks_per_flow_bytes() {
        let mut q = DropTailQueue::new(100_000);
        q.enqueue(pkt(1, 0, 1500, 0), Time::ZERO);
        q.enqueue(pkt(2, 0, 1000, 0), Time::ZERO);
        q.enqueue(pkt(1, 1, 1500, 0), Time::ZERO);
        assert_eq!(q.bytes_for_flow(1), 3000);
        assert_eq!(q.bytes_for_flow(2), 1000);
        assert_eq!(q.bytes_for_flow(9), 0);
    }

    #[test]
    fn pie_drops_under_sustained_overload() {
        // Keep the queue persistently at ~10x the target delay; PIE's drop
        // probability must rise and start dropping packets.
        let rate = 12e6; // 12 Mbit/s -> 1500B packet = 1 ms
        let mut q = PieQueue::new(3_000_000, rate, Time::from_millis(15), 1);
        let mut now = Time::ZERO;
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for i in 0..20_000u64 {
            // Enqueue 2 packets per 1 ms slot but dequeue only 1 -> queue grows.
            for j in 0..2 {
                match q.enqueue(pkt(0, i * 2 + j, 1500, 0), now) {
                    EnqueueResult::Accepted => accepted += 1,
                    EnqueueResult::Dropped => dropped += 1,
                }
            }
            let _ = q.dequeue(now);
            now += Time::from_millis(1);
        }
        assert!(
            dropped > 100,
            "PIE should have dropped packets, dropped={dropped}"
        );
        assert!(accepted > 0);
    }

    #[test]
    fn pie_idle_queue_does_not_drop() {
        let mut q = PieQueue::new(1_000_000, 96e6, Time::from_millis(15), 2);
        let mut now = Time::ZERO;
        let mut drops = 0;
        for i in 0..1000 {
            if q.enqueue(pkt(0, i, 1500, 0), now) == EnqueueResult::Dropped {
                drops += 1;
            }
            // Drain immediately: queue never builds.
            let _ = q.dequeue(now);
            now += Time::from_millis(10);
        }
        assert_eq!(drops, 0);
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let mut q = RedQueue::new(150_000, 7);
        // Fill to ~50% so the average sits between min (25%) and max (75%).
        let mut drops = 0;
        let mut accepted = 0;
        for i in 0..5000u64 {
            match q.enqueue(pkt(0, i, 1500, 0), Time::ZERO) {
                EnqueueResult::Accepted => {
                    accepted += 1;
                    if q.len_bytes() > 75_000 {
                        let _ = q.dequeue(Time::ZERO);
                    }
                }
                EnqueueResult::Dropped => drops += 1,
            }
        }
        assert!(drops > 0, "RED should drop between thresholds");
        assert!(accepted > drops, "RED should not drop everything");
    }

    #[test]
    fn codel_drops_when_sojourn_stays_above_target() {
        let mut q = CoDelQueue::new(10_000_000);
        // Enqueue a burst at t=0, dequeue slowly so sojourn times are large.
        for i in 0..2000u64 {
            q.enqueue(pkt(0, i, 1500, 0), Time::ZERO);
        }
        let mut delivered = 0;
        let mut now = Time::from_millis(1);
        while let Some(_p) = q.dequeue(now) {
            delivered += 1;
            now += Time::from_millis(1);
            if delivered > 5000 {
                break;
            }
        }
        assert!(q.drops() > 0, "CoDel should drop under persistent delay");
        assert!(delivered > 0);
    }

    #[test]
    fn codel_does_not_drop_short_lived_queues() {
        let mut q = CoDelQueue::new(1_000_000);
        let mut now = Time::ZERO;
        for i in 0..100u64 {
            q.enqueue(pkt(0, i, 1500, now.as_nanos() / 1_000_000), now);
            // Dequeue within the target delay.
            let _ = q.dequeue(now + Time::from_millis(1));
            now += Time::from_millis(10);
        }
        assert_eq!(q.drops(), 0);
    }

    #[test]
    fn droptail_step_marking_flips_only_ect_packets() {
        // 12 Mbit/s drain: a 1500 B packet takes 1 ms to serialize, so with a
        // 1 ms step threshold the second queued packet projects over it.
        let mut q = DropTailQueue::new(1_000_000);
        q.set_drain_rate_bps(12e6);
        q.set_ecn_marking(EcnMarking::Step { threshold_s: 0.001 });
        assert_eq!(
            q.enqueue(ect(0, 0, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        assert_eq!(
            q.enqueue(ect(0, 1, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        assert_eq!(
            q.enqueue(pkt(0, 2, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        // First packet projected exactly at 1 ms sojourn → marked; the
        // non-ECT packet behind it stays untouched however deep the queue is.
        assert_eq!(q.marks(), 2);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().ecn, EcnCodepoint::Ce);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().ecn, EcnCodepoint::Ce);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().ecn, EcnCodepoint::NotEct);
        assert_eq!(q.drops(), 0);
    }

    #[test]
    fn droptail_classic_marking_kicks_in_at_half_capacity() {
        let mut q = DropTailQueue::new(6000);
        q.set_ecn_marking(EcnMarking::Classic);
        assert_eq!(
            q.enqueue(ect(0, 0, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        assert_eq!(q.marks(), 0, "below half capacity: no mark");
        assert_eq!(
            q.enqueue(ect(0, 1, 1500, 0), Time::ZERO),
            EnqueueResult::Accepted
        );
        assert_eq!(q.marks(), 1, "at half capacity: marked");
    }

    #[test]
    fn pie_marks_instead_of_dropping_ect() {
        // The same sustained overload (2 in, 1 out per millisecond), run
        // plain and with classic ECN + all-ECT traffic.  Plain PIE sheds the
        // excess by dropping; with marking and a buffer big enough to hold
        // the run, the *same* probabilistic decisions become CE marks and no
        // packet is lost.  (The two runs are not packet-for-packet identical
        // — keeping marked packets changes the queue PIE measures — so the
        // invariant is drop-freedom, not a drop↔mark bijection.)
        let rate = 12e6;
        let run = |ecn: bool| {
            let mut q = PieQueue::new(100_000_000, rate, Time::from_millis(15), 1);
            if ecn {
                q.set_ecn_marking(EcnMarking::Classic);
            }
            let mut now = Time::ZERO;
            for i in 0..20_000u64 {
                for j in 0..2 {
                    let p = if ecn {
                        ect(0, i * 2 + j, 1500, 0)
                    } else {
                        pkt(0, i * 2 + j, 1500, 0)
                    };
                    let _ = q.enqueue(p, now);
                }
                let _ = q.dequeue(now);
                now += Time::from_millis(1);
            }
            (q.drops(), q.marks())
        };
        let (plain_drops, plain_marks) = run(false);
        let (ecn_drops, ecn_marks) = run(true);
        assert_eq!(plain_marks, 0);
        assert!(plain_drops > 100, "plain PIE drops under overload");
        assert_eq!(ecn_drops, 0, "classic ECN never drops ECT traffic");
        assert!(ecn_marks > 100, "the shed load reappears as marks");
    }

    #[test]
    fn codel_marks_and_delivers_under_persistent_delay() {
        let mut q = CoDelQueue::new(10_000_000);
        q.set_ecn_marking(EcnMarking::Classic);
        for i in 0..2000u64 {
            q.enqueue(ect(0, i, 1500, 0), Time::ZERO);
        }
        let mut delivered = 0u64;
        let mut marked = 0u64;
        let mut now = Time::from_millis(1);
        while let Some(p) = q.dequeue(now) {
            delivered += 1;
            if p.ecn == EcnCodepoint::Ce {
                marked += 1;
            }
            now += Time::from_millis(1);
        }
        assert_eq!(q.drops(), 0, "with ECN the control law marks, not drops");
        assert!(marked > 0, "persistent sojourn must mark");
        assert_eq!(q.marks(), marked);
        assert_eq!(delivered, 2000, "every packet was delivered");
    }

    #[test]
    fn codel_step_profile_marks_on_measured_sojourn() {
        let mut q = CoDelQueue::new(10_000_000);
        q.set_ecn_marking(EcnMarking::Step { threshold_s: 0.001 });
        q.enqueue(ect(0, 0, 1500, 0), Time::ZERO);
        q.enqueue(ect(0, 1, 1500, 0), Time::ZERO);
        // Dequeued within the threshold: unmarked.
        assert_eq!(
            q.dequeue(Time::from_micros(500)).unwrap().ecn,
            EcnCodepoint::Ect
        );
        // Dequeued past 1 ms of sojourn: step-marked.
        assert_eq!(
            q.dequeue(Time::from_millis(2)).unwrap().ecn,
            EcnCodepoint::Ce
        );
        assert_eq!(q.marks(), 1);
    }

    proptest! {
        #[test]
        fn prop_marked_xor_dropped(sizes in proptest::collection::vec(500u32..1500, 1..200),
                                   kind in 0u8..4) {
            // Every offered packet meets exactly one fate: dropped, delivered
            // marked, or delivered unmarked — never more than one, across all
            // four disciplines with marking enabled.
            let mut q: Box<dyn QueueDiscipline> = match kind {
                0 => Box::new(DropTailQueue::new(20_000)),
                1 => Box::new(PieQueue::new(20_000, 12e6, Time::from_millis(5), 11)),
                2 => Box::new(RedQueue::new(20_000, 13)),
                _ => Box::new(CoDelQueue::new(20_000)),
            };
            q.set_drain_rate_bps(12e6);
            q.set_ecn_marking(EcnMarking::Step { threshold_s: 0.002 });
            let mut offered = 0u64;
            let mut accepted_bytes = 0u64;
            let mut dropped_at_enqueue = 0u64;
            for (i, &s) in sizes.iter().enumerate() {
                offered += 1;
                match q.enqueue(ect(0, i as u64, s, (i / 4) as u64), Time::from_millis((i / 4) as u64)) {
                    EnqueueResult::Accepted => accepted_bytes += s as u64,
                    EnqueueResult::Dropped => dropped_at_enqueue += 1,
                }
            }
            let mut delivered = 0u64;
            let mut delivered_bytes = 0u64;
            let mut delivered_marked = 0u64;
            let now = Time::from_millis(400);
            while let Some(p) = q.dequeue(now) {
                delivered += 1;
                delivered_bytes += p.size_bytes as u64;
                prop_assert_ne!(p.ecn, EcnCodepoint::NotEct, "codepoint must survive the queue");
                if p.ecn == EcnCodepoint::Ce {
                    delivered_marked += 1;
                }
            }
            // Marked XOR dropped: the fates partition the offered packets —
            // every packet is either delivered (possibly CE-marked) or
            // dropped, never both, and marks only ever land on delivered
            // packets.
            prop_assert_eq!(delivered + q.drops(), offered, "delivered + dropped == offered");
            prop_assert_eq!(delivered_marked, q.marks(),
                            "every mark the discipline counted was delivered exactly once");
            let dropped_at_dequeue = q.drops() - dropped_at_enqueue;
            // Byte conservation with marking enabled: accepted bytes either
            // came out or were dropped at dequeue (CoDel's control law), and
            // the residue is bounded by those packets' size range.
            prop_assert_eq!(q.len_bytes(), 0, "queue fully drained");
            prop_assert!(delivered_bytes <= accepted_bytes);
            prop_assert!(accepted_bytes - delivered_bytes >= dropped_at_dequeue * 500);
            prop_assert!(accepted_bytes - delivered_bytes <= dropped_at_dequeue * 1500);
        }

        #[test]
        fn prop_marking_is_deterministic_across_threads(sizes in proptest::collection::vec(500u32..1500, 1..150),
                                                        seed in 0u64..1000) {
            // The same marking workload must produce identical (drops, marks,
            // delivered-CE sequence) whether run serially or on worker
            // threads: all randomness is owned by the seeded queue RNG.
            let run = {
                let sizes = sizes.clone();
                move || {
                    let mut q = RedQueue::new(30_000, seed);
                    q.set_drain_rate_bps(12e6);
                    q.set_ecn_marking(EcnMarking::Classic);
                    let mut fates = Vec::new();
                    for (i, &s) in sizes.iter().enumerate() {
                        let r = q.enqueue(ect(0, i as u64, s, 0), Time::ZERO);
                        if r == EnqueueResult::Accepted && q.len_bytes() > 20_000 {
                            let _ = q.dequeue(Time::ZERO);
                        }
                        fates.push(r == EnqueueResult::Accepted);
                    }
                    let mut ce = Vec::new();
                    while let Some(p) = q.dequeue(Time::ZERO) {
                        ce.push(p.ecn == EcnCodepoint::Ce);
                    }
                    (q.drops(), q.marks(), fates, ce)
                }
            };
            let serial = run();
            let handles: Vec<_> = (0..2).map(|_| {
                let r = run.clone();
                std::thread::spawn(r)
            }).collect();
            for h in handles {
                let threaded = h.join().unwrap();
                prop_assert_eq!(&threaded, &serial, "thread run diverged from serial run");
            }
        }

        #[test]
        fn prop_droptail_byte_count_consistent(ops in proptest::collection::vec((0u8..2, 100u32..2000), 1..300)) {
            let mut q = DropTailQueue::new(20_000);
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut seq = 0u64;
            for (op, size) in ops {
                if op == 0 {
                    let accepted = q.enqueue(pkt(0, seq, size, 0), Time::ZERO) == EnqueueResult::Accepted;
                    let model_accepts = model.iter().map(|&s| s as u64).sum::<u64>() + size as u64 <= 20_000;
                    prop_assert_eq!(accepted, model_accepts);
                    if accepted { model.push_back(size); }
                    seq += 1;
                } else {
                    let got = q.dequeue(Time::ZERO).map(|p| p.size_bytes);
                    let want = model.pop_front();
                    prop_assert_eq!(got, want);
                }
                prop_assert_eq!(q.len_bytes(), model.iter().map(|&s| s as u64).sum::<u64>());
                prop_assert_eq!(q.len_packets(), model.len());
            }
        }

        #[test]
        fn prop_fifo_order_preserved(sizes in proptest::collection::vec(500u32..1500, 1..50)) {
            let mut q = DropTailQueue::new(10_000_000);
            for (i, &s) in sizes.iter().enumerate() {
                q.enqueue(pkt(0, i as u64, s, 0), Time::ZERO);
            }
            let mut last = None;
            while let Some(p) = q.dequeue(Time::ZERO) {
                if let Some(prev) = last {
                    prop_assert!(p.seq > prev);
                }
                last = Some(p.seq);
            }
        }
    }
}
