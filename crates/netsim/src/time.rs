//! Virtual time — re-exported from [`nimbus_core_types`].
//!
//! [`Time`] moved to the host-independent `nimbus-core-types` crate so pure
//! congestion-control code no longer depends on the simulator; this module
//! keeps the long-standing `nimbus_netsim::time::*` and
//! `nimbus_netsim::Time` paths working for simulator-side code.

pub use nimbus_core_types::{transmission_time, Time};
