//! Packets and flow identifiers.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Identifier of a flow within one simulation.
pub type FlowId = usize;

/// The two-bit ECN codepoint a packet carries (RFC 3168 / RFC 9331).
///
/// Flows that negotiate ECN send their data packets as [`Ect`]
/// (ECN-Capable Transport); a marking queue then flips the codepoint to
/// [`Ce`] (Congestion Experienced) *instead of dropping*, and the receiver
/// echoes the mark back to the sender on the ACK.  Non-ECN flows stay
/// [`NotEct`] and always take the drop path, so enabling marking on a queue
/// is invisible to them.
///
/// [`Ect`]: EcnCodepoint::Ect
/// [`Ce`]: EcnCodepoint::Ce
/// [`NotEct`]: EcnCodepoint::NotEct
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EcnCodepoint {
    /// Not ECN-capable: the queue must drop, never mark.
    #[default]
    NotEct,
    /// ECN-capable transport: the queue may mark instead of dropping.
    Ect,
    /// Congestion experienced: an AQM has marked this packet.
    Ce,
}

/// A data packet travelling from a sender towards its receiver.
///
/// Sequence numbers count whole segments (not bytes): every congestion
/// controller in the paper is evaluated with MSS-sized segments, and working
/// in segments keeps the arithmetic in the controllers identical to the
/// papers they come from (Cubic, Vegas and Copa are all expressed in packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Segment sequence number (0-based, in packets).
    pub seq: u64,
    /// Size of the segment in bytes (including an abstracted header).
    pub size_bytes: u32,
    /// Time the sender transmitted this packet (enqueued it at the bottleneck).
    pub sent_at: Time,
    /// Whether this transmission is a retransmission of an earlier segment.
    pub retransmit: bool,
    /// Time the packet entered its current hop's queue (re-stamped by the
    /// engine at every hop of a multi-link path).
    pub enqueued_at: Time,
    /// Index of the path hop the packet currently occupies (queue or link).
    pub hop: usize,
    /// Total queueing delay accumulated across every hop traversed so far —
    /// the end-to-end "self-inflicted" delay a path imposes on the packet.
    pub cum_queue_delay: Time,
    /// The ECN codepoint the packet carries ([`EcnCodepoint::NotEct`] unless
    /// the sending flow negotiated ECN; marking queues flip Ect → Ce).
    pub ecn: EcnCodepoint,
}

impl Packet {
    /// Create a new data packet; the engine stamps `enqueued_at` on arrival at
    /// the bottleneck queue.
    pub fn new(flow: FlowId, seq: u64, size_bytes: u32, sent_at: Time, retransmit: bool) -> Self {
        Packet {
            flow,
            seq,
            size_bytes,
            sent_at,
            retransmit,
            enqueued_at: sent_at,
            hop: 0,
            cum_queue_delay: Time::ZERO,
            ecn: EcnCodepoint::NotEct,
        }
    }

    /// Queueing delay experienced so far if the packet left the queue at `now`.
    pub fn queueing_delay(&self, now: Time) -> Time {
        now.saturating_sub(self.enqueued_at)
    }
}

/// An acknowledgement travelling back to the sender.
///
/// The receiver acknowledges cumulatively and additionally echoes which
/// segment triggered the ACK, so senders can detect reordering/duplication
/// and take RTT samples exactly as a real TCP timestamp option would allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckPacket {
    /// The flow being acknowledged.
    pub flow: FlowId,
    /// Cumulative acknowledgement: all segments with `seq < cum_ack` have
    /// been received.
    pub cum_ack: u64,
    /// The sequence number of the data segment that triggered this ACK.
    pub triggering_seq: u64,
    /// Size in bytes of the triggering data segment — the bytes that
    /// physically arrived at the receiver with this ACK's trigger (used for
    /// receive-rate measurement; `newly_delivered_bytes` jumps on hole fills
    /// and is 0 for out-of-order arrivals, so it is unusable for rates).
    pub triggering_bytes: u32,
    /// `sent_at` timestamp of the triggering data segment (echoed back).
    pub data_sent_at: Time,
    /// Time the triggering data segment arrived at the receiver.
    pub received_at: Time,
    /// Number of data bytes newly delivered to the receiver in order as a
    /// result of the triggering segment (0 for out-of-order arrivals).
    pub newly_delivered_bytes: u64,
    /// Total bytes the receiver has delivered in order so far.
    pub total_delivered_bytes: u64,
    /// Whether the triggering data segment arrived carrying
    /// [`EcnCodepoint::Ce`] — the receiver's CE echo (ECE, in TCP terms).
    pub ce: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_delay_is_relative_to_enqueue() {
        let mut p = Packet::new(0, 7, 1500, Time::from_millis(10), false);
        p.enqueued_at = Time::from_millis(12);
        assert_eq!(
            p.queueing_delay(Time::from_millis(20)),
            Time::from_millis(8)
        );
        // Before enqueue time: saturates to zero.
        assert_eq!(p.queueing_delay(Time::from_millis(5)), Time::ZERO);
    }

    #[test]
    fn packet_construction_defaults_enqueue_to_send_time() {
        let p = Packet::new(3, 0, 1000, Time::from_millis(1), true);
        assert_eq!(p.enqueued_at, Time::from_millis(1));
        assert!(p.retransmit);
        assert_eq!(p.flow, 3);
    }
}
