//! A minimal slab allocator for in-flight event payloads.
//!
//! Data packets and ACKs spend their propagation delay inside scheduled
//! events.  Storing them inline in the event enum made every queue entry as
//! large as the largest payload (~9 words for an ACK), so each push/pop of
//! *any* event — including payload-free `LinkDone` and `PollSend`, the two
//! most common kinds — moved that much memory through the event queue.  The
//! engine instead parks payloads here and threads a 4-byte ticket through the
//! event queue.
//!
//! Tickets are freed on `take`, so the slab's high-water mark is the number
//! of packets simultaneously mid-propagation, not the run's packet total.

/// A vec-backed free-list slab handing out `u32` tickets.
#[derive(Debug, Default)]
pub struct Slab<T> {
    items: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            items: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Store `value`, returning its ticket.
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.items[idx as usize].is_none());
                self.items[idx as usize] = Some(value);
                idx
            }
            None => {
                let idx = u32::try_from(self.items.len()).expect("slab ticket overflow");
                self.items.push(Some(value));
                idx
            }
        }
    }

    /// Remove and return the value behind `ticket`.
    ///
    /// Panics if the ticket was never issued or was already taken — either
    /// would mean an event was dispatched twice.
    pub fn take(&mut self, ticket: u32) -> T {
        let value = self.items[ticket as usize]
            .take()
            .expect("slab ticket taken twice");
        self.free.push(ticket);
        value
    }

    /// Number of live (inserted, not yet taken) values.
    pub fn len(&self) -> usize {
        self.items.len() - self.free.len()
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_round_trip_and_recycle() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.take(a), "a");
        // Freed ticket is reused before the vec grows.
        let c = slab.insert("c");
        assert_eq!(c, a);
        assert_eq!(slab.take(b), "b");
        assert_eq!(slab.take(c), "c");
        assert!(slab.is_empty());
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut slab = Slab::new();
        let t = slab.insert(1u32);
        slab.take(t);
        slab.take(t);
    }
}
