//! Non-congestive loss models.
//!
//! The Internet-path experiments (Fig. 18c, §8.4) include paths "with
//! significant packet drops or policers" where Cubic suffers but Nimbus does
//! not.  To reproduce those regimes the bottleneck can be decorated with:
//!
//! * [`LossModel::Bernoulli`] — i.i.d. random loss at a fixed probability
//!   (models a lossy last hop).
//! * [`LossModel::GilbertElliott`] — two-state bursty loss.
//! * [`Policer`] — a token-bucket policer that drops packets exceeding a
//!   contracted rate regardless of buffer space (models ISP rate policing).

use crate::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a random-loss process applied in front of the bottleneck queue.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// No random loss (the default).
    #[default]
    None,
    /// Drop each packet independently with probability `p`.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott model: in the Good state packets are dropped
    /// with probability `p_good` (usually 0), in the Bad state with `p_bad`.
    GilbertElliott {
        /// Probability of transitioning Good → Bad per packet.
        p_g2b: f64,
        /// Probability of transitioning Bad → Good per packet.
        p_b2g: f64,
        /// Drop probability in the Good state.
        p_good: f64,
        /// Drop probability in the Bad state.
        p_bad: f64,
    },
}

/// Stateful sampler for a [`LossModel`].
#[derive(Debug)]
pub struct LossProcess {
    model: LossModel,
    rng: StdRng,
    in_bad_state: bool,
    drops: u64,
}

impl LossProcess {
    /// Create a sampler for `model` seeded with `seed`.
    pub fn new(model: LossModel, seed: u64) -> Self {
        LossProcess {
            model,
            rng: StdRng::seed_from_u64(seed ^ 0xd1b54a32d192ed03),
            in_bad_state: false,
            drops: 0,
        }
    }

    /// Returns true if the next packet should be dropped.
    pub fn should_drop(&mut self) -> bool {
        let drop = match self.model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => self.rng.gen::<f64>() < p,
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                p_good,
                p_bad,
            } => {
                // Transition first, then sample in the new state.
                if self.in_bad_state {
                    if self.rng.gen::<f64>() < p_b2g {
                        self.in_bad_state = false;
                    }
                } else if self.rng.gen::<f64>() < p_g2b {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state { p_bad } else { p_good };
                self.rng.gen::<f64>() < p
            }
        };
        if drop {
            self.drops += 1;
        }
        drop
    }

    /// Number of packets this process has dropped.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// A token-bucket policer: packets are dropped (not queued) when they exceed
/// the contracted rate plus burst allowance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Policer {
    /// Contracted rate in bits per second.
    pub rate_bps: f64,
    /// Burst allowance in bytes.
    pub burst_bytes: f64,
    tokens: f64,
    last_refill: Time,
    drops: u64,
}

impl Policer {
    /// Create a policer with the given contracted rate and burst size.
    pub fn new(rate_bps: f64, burst_bytes: f64) -> Self {
        assert!(rate_bps > 0.0 && burst_bytes > 0.0);
        Policer {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes,
            last_refill: Time::ZERO,
            drops: 0,
        }
    }

    /// Offer a packet of `size_bytes` at time `now`; returns true if the
    /// packet conforms (should be forwarded), false if it must be dropped.
    pub fn conforms(&mut self, size_bytes: u32, now: Time) -> bool {
        let elapsed = now.saturating_sub(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.rate_bps / 8.0).min(self.burst_bytes);
        if self.tokens >= size_bytes as f64 {
            self.tokens -= size_bytes as f64;
            true
        } else {
            self.drops += 1;
            false
        }
    }

    /// Number of packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_never_drops() {
        let mut p = LossProcess::new(LossModel::None, 1);
        for _ in 0..10_000 {
            assert!(!p.should_drop());
        }
        assert_eq!(p.drops(), 0);
    }

    #[test]
    fn bernoulli_drop_rate_close_to_p() {
        let mut p = LossProcess::new(LossModel::Bernoulli { p: 0.02 }, 42);
        let n = 100_000;
        let mut drops = 0;
        for _ in 0..n {
            if p.should_drop() {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.005, "rate {rate}");
        assert_eq!(p.drops(), drops);
    }

    #[test]
    fn gilbert_elliott_produces_bursty_loss() {
        let model = LossModel::GilbertElliott {
            p_g2b: 0.01,
            p_b2g: 0.2,
            p_good: 0.0,
            p_bad: 0.5,
        };
        let mut p = LossProcess::new(model, 7);
        let mut drops = Vec::new();
        for i in 0..200_000 {
            if p.should_drop() {
                drops.push(i);
            }
        }
        assert!(!drops.is_empty());
        // Burstiness: the fraction of drops immediately following another drop
        // should far exceed the overall drop rate.
        let overall = drops.len() as f64 / 200_000.0;
        let consecutive = drops.windows(2).filter(|w| w[1] == w[0] + 1).count();
        let cond = consecutive as f64 / drops.len() as f64;
        assert!(cond > overall * 3.0, "cond {cond} vs overall {overall}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = LossProcess::new(LossModel::Bernoulli { p: 0.1 }, seed);
            (0..1000).map(|_| p.should_drop()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn policer_allows_burst_then_enforces_rate() {
        // 8 Mbit/s = 1 MB/s, burst 10 kB.
        let mut pol = Policer::new(8e6, 10_000.0);
        let now = Time::ZERO;
        // The initial burst passes.
        let mut passed = 0;
        for _ in 0..20 {
            if pol.conforms(1000, now) {
                passed += 1;
            }
        }
        assert_eq!(passed, 10);
        assert_eq!(pol.drops(), 10);
        // After 5 ms, 5 kB of tokens have accumulated.
        let later = Time::from_millis(5);
        let mut passed2 = 0;
        for _ in 0..20 {
            if pol.conforms(1000, later) {
                passed2 += 1;
            }
        }
        assert_eq!(passed2, 5);
    }

    #[test]
    fn policer_long_run_rate_matches_contract() {
        let mut pol = Policer::new(8e6, 15_000.0);
        let mut passed_bytes = 0u64;
        // Offer 2 MB/s for 10 seconds against a 1 MB/s contract.
        for ms in 0..10_000u64 {
            let now = Time::from_millis(ms);
            for _ in 0..2 {
                if pol.conforms(1000, now) {
                    passed_bytes += 1000;
                }
            }
        }
        let rate = passed_bytes as f64 / 10.0; // bytes per second
        assert!((rate - 1e6).abs() < 0.05e6, "rate {rate}");
    }
}
