//! Equivalence proof-by-property for the calendar event queue.
//!
//! `Network` replaced its `BinaryHeap<Reverse<EventEntry>>` with
//! [`CalendarQueue`].  The simulator's fingerprints are byte-identical only
//! if the new queue pops events in *exactly* the old order — `(at, seq)`
//! ascending, i.e. timestamp then insertion order — for every schedule the
//! engine can produce.  The engine's schedules are *monotone*: `schedule()`
//! clamps `at` to `max(at, now)`, so no push is ever earlier than the last
//! pop.  This test drives both queues through random monotone schedules and
//! asserts identical pop sequences, covering the hard cases explicitly:
//!
//! * same-timestamp ties (timestamps snapped to a coarse grid so collisions
//!   are common — insertion order must break them);
//! * pushes beyond the wheel horizon (the overflow heap path);
//! * cancel/reschedule via generation tags, the engine's idiom for moving a
//!   timer: the stale entry stays queued and is skipped on pop, so both
//!   queues must agree on the *full* sequence including stale entries.

use nimbus_netsim::CalendarQueue;
use nimbus_netsim::Time;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Payload: (timer id, generation tag). A reschedule bumps the current
/// generation for the id and pushes a fresh entry; entries bearing an older
/// generation are "cancelled" and skipped by the consumer on pop.
type Tag = (u32, u32);

/// Reference implementation: the engine's old queue. `(at, seq)` is unique
/// (seq strictly increases), so ordering by the full tuple equals ordering
/// by `(at, seq)` — the payload never influences the order.
#[derive(Default)]
struct HeapRef {
    heap: BinaryHeap<Reverse<(u64, u64, Tag)>>,
}

impl HeapRef {
    fn push(&mut self, at: Time, seq: u64, item: Tag) {
        self.heap.push(Reverse((at.0, seq, item)));
    }
    fn pop(&mut self) -> Option<(Time, u64, Tag)> {
        self.heap
            .pop()
            .map(|Reverse((at, seq, item))| (Time(at), seq, item))
    }
}

/// Snap to a coarse grid so distinct draws collide on the same timestamp and
/// the insertion-order tiebreak actually gets exercised.
const TICK: u64 = 700_000; // 0.7 ms — several entries per calendar bucket

proptest! {
    // Random monotone schedules with ties, overflow-horizon pushes and
    // generation-tagged reschedules: both queues must emit identical
    // (at, seq, payload) streams, and the post-filter "live" streams
    // (stale generations dropped) must also match.
    #[test]
    fn calendar_queue_matches_binary_heap_pop_for_pop(
        ops in collection::vec((0u8..10, 0u64..400, 0u32..16), 1..800),
    ) {
        let mut cal: CalendarQueue<Tag> = CalendarQueue::new();
        let mut heap = HeapRef::default();
        let mut gen = [0u32; 16]; // current generation per timer id
        let mut seq = 0u64;
        let mut now = 0u64; // ns, time of the last pop
        let mut pops = 0u64;
        let mut live_pops: Vec<(u64, u64, Tag)> = Vec::new();

        // `delta` spans 0..400 ticks = 0..280 ms: the wheel horizon is
        // ~268 ms, so the top of the range lands in the overflow heap.
        for (op, delta, id) in ops {
            match op {
                0..=5 => {
                    // Plain push at or after `now` (monotone, tie-prone).
                    let at = Time(now + delta * TICK);
                    seq += 1;
                    cal.push(at, seq, (id, gen[id as usize]));
                    heap.push(at, seq, (id, gen[id as usize]));
                }
                6..=7 => {
                    // Pop once from both; sequences must agree exactly.
                    let got = cal.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want);
                    if let Some((at, s, tag)) = got {
                        prop_assert!(at.0 >= now, "pop went backwards in time");
                        now = at.0;
                        pops += 1;
                        if tag.1 == gen[tag.0 as usize] {
                            live_pops.push((at.0, s, tag));
                        }
                    }
                }
                _ => {
                    // Reschedule timer `id`: cancel by bumping the
                    // generation, then push the replacement at a new time.
                    // The stale entry stays in both queues.
                    gen[id as usize] += 1;
                    let at = Time(now + delta * TICK);
                    seq += 1;
                    cal.push(at, seq, (id, gen[id as usize]));
                    heap.push(at, seq, (id, gen[id as usize]));
                }
            }
        }

        // Drain both to empty — tails must agree too.
        loop {
            let got = cal.pop();
            let want = heap.pop();
            prop_assert_eq!(got, want);
            match got {
                Some((at, s, tag)) => {
                    prop_assert!(at.0 >= now);
                    now = at.0;
                    pops += 1;
                    if tag.1 == gen[tag.0 as usize] {
                        live_pops.push((at.0, s, tag));
                    }
                }
                None => break,
            }
        }
        prop_assert!(cal.is_empty());

        // Every push was popped exactly once (no loss, no duplication), and
        // the live stream is itself (at, seq)-sorted.
        prop_assert_eq!(pops, seq);
        for w in live_pops.windows(2) {
            prop_assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
    }
}
