//! Engine-level queue-discipline behaviour: a paced flow offering 2× the
//! bottleneck rate exercises every discipline end to end.  Drop-tail must cap
//! the queueing delay at the buffer size, and the AQMs (PIE, RED, CoDel)
//! must hold it *well below* the physical buffer while still shipping
//! (roughly) line rate.

use nimbus_netsim::{
    AckInfo, FlowConfig, FlowEndpoint, Network, QueueKind, SendAction, SimConfig, Time,
};

/// Minimal paced constant-bit-rate endpoint (netsim cannot depend on
/// nimbus-transport, so the overload source lives here).
struct PacedCbr {
    rate_bps: f64,
    next_seq: u64,
    next_send: Time,
}

impl PacedCbr {
    fn new(rate_bps: f64) -> Self {
        PacedCbr {
            rate_bps,
            next_seq: 0,
            next_send: Time::ZERO,
        }
    }
}

impl FlowEndpoint for PacedCbr {
    fn on_ack(&mut self, _ack: &AckInfo) {}
    fn poll_send(&mut self, now: Time) -> SendAction {
        if now >= self.next_send {
            let seq = self.next_seq;
            self.next_seq += 1;
            let gap = Time::from_secs_f64(1500.0 * 8.0 / self.rate_bps);
            self.next_send = if self.next_send == Time::ZERO {
                now + gap
            } else {
                self.next_send + gap
            };
            SendAction::Transmit {
                seq,
                bytes: 1500,
                retransmit: false,
            }
        } else {
            SendAction::WaitUntil(self.next_send)
        }
    }
    fn label(&self) -> &str {
        "paced-cbr"
    }
}

/// Run 2× overload through the given queue kind; returns
/// (mean queueing delay ms, drops, throughput Mbit/s).
fn overload_through(queue: QueueKind) -> (f64, u64, f64) {
    let rate = 24e6;
    let mut cfg = SimConfig::new(rate, 0.1, 20.0);
    cfg.link_mut().queue = queue;
    let mut net = Network::new(cfg);
    let h = net.add_flow(
        FlowConfig::primary("overload", Time::from_millis(20)),
        Box::new(PacedCbr::new(2.0 * rate)),
    );
    net.run();
    let (rec, _) = net.finish();
    let slot = rec.monitored_slot(h.0).unwrap();
    let qd = rec.queue_delay_ms[slot].mean_in_range(5.0, 20.0);
    let tput = rec.throughput_mbps[slot].mean_in_range(5.0, 20.0);
    (qd, rec.flows[h.0].dropped_packets, tput)
}

#[test]
fn droptail_fills_to_the_buffer_cap() {
    let (qd, drops, tput) = overload_through(QueueKind::DropTailDelay(0.1));
    assert!(qd > 60.0 && qd <= 105.0, "drop-tail queueing delay {qd} ms");
    assert!(
        drops > 100,
        "drop-tail must shed the overload, drops={drops}"
    );
    assert!((tput - 24.0).abs() < 1.5, "line rate expected, got {tput}");
}

#[test]
fn pie_holds_the_queue_near_its_target_under_overload() {
    let (qd, drops, tput) = overload_through(QueueKind::Pie {
        target_delay_s: 0.02,
        buffer_s: 0.1,
    });
    assert!(
        qd < 60.0,
        "PIE queueing delay {qd} ms should sit near 20 ms"
    );
    assert!(drops > 100, "PIE must drop under sustained overload");
    assert!(tput > 20.0, "PIE throughput {tput}");
}

#[test]
fn red_keeps_the_average_queue_below_the_buffer() {
    let (qd, drops, tput) = overload_through(QueueKind::Red { buffer_s: 0.1 });
    assert!(
        qd < 90.0,
        "RED queueing delay {qd} ms should stay below drop-tail"
    );
    assert!(drops > 100, "RED must drop under sustained overload");
    assert!(tput > 20.0, "RED throughput {tput}");
}

#[test]
fn codel_bounds_sojourn_time_under_overload() {
    let (qd, drops, tput) = overload_through(QueueKind::CoDel { buffer_s: 0.1 });
    // CoDel's drop rate ramps only as sqrt(count), so an unresponsive 2×
    // overload is its weakest case — require it to beat drop-tail's ~95 ms,
    // not to reach its 5 ms target.
    assert!(
        qd < 90.0,
        "CoDel queueing delay {qd} ms should be controlled"
    );
    assert!(drops > 100, "CoDel must drop under sustained overload");
    assert!(tput > 20.0, "CoDel throughput {tput}");
}

#[test]
fn aqms_and_droptail_rank_as_expected() {
    let (dt, _, _) = overload_through(QueueKind::DropTailDelay(0.1));
    let (pie, _, _) = overload_through(QueueKind::Pie {
        target_delay_s: 0.02,
        buffer_s: 0.1,
    });
    let (codel, _, _) = overload_through(QueueKind::CoDel { buffer_s: 0.1 });
    assert!(
        pie < dt && codel < dt,
        "AQMs must beat drop-tail on delay: pie={pie} codel={codel} droptail={dt}"
    );
}
