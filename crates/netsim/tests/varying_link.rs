//! Time-varying bottleneck regression and property tests.
//!
//! The variable-rate link model must conserve work (delivered bytes can never
//! exceed `∫µ(t)dt`), handle rate transitions landing mid-serialization by
//! byte progress (not by restarting or finishing the packet at the old rate),
//! survive near-zero-rate outage intervals without wedging the event loop,
//! and stay bit-for-bit deterministic.

use nimbus_netsim::{
    AckInfo, FlowConfig, FlowEndpoint, LossModel, Network, RateSchedule, SendAction, SimConfig,
    Time,
};
use proptest::prelude::*;

/// A constant-bit-rate paced sender (one MSS every `mss·8/rate` seconds).
struct PacedCbr {
    rate_bps: f64,
    mss: u32,
    next_seq: u64,
    next_send: Time,
}

impl PacedCbr {
    fn new(rate_bps: f64) -> Self {
        PacedCbr {
            rate_bps,
            mss: 1500,
            next_seq: 0,
            next_send: Time::ZERO,
        }
    }
}

impl FlowEndpoint for PacedCbr {
    fn on_ack(&mut self, _ack: &AckInfo) {}
    fn poll_send(&mut self, now: Time) -> SendAction {
        if now >= self.next_send {
            let seq = self.next_seq;
            self.next_seq += 1;
            let gap = Time::from_secs_f64(self.mss as f64 * 8.0 / self.rate_bps);
            self.next_send = if self.next_send == Time::ZERO {
                now + gap
            } else {
                self.next_send + gap
            };
            SendAction::Transmit {
                seq,
                bytes: self.mss,
                retransmit: false,
            }
        } else {
            SendAction::WaitUntil(self.next_send)
        }
    }
    fn label(&self) -> &str {
        "paced-cbr"
    }
}

/// Sends exactly one 1500-byte packet at t=0, finishes once it is ACKed.
/// Its flow completion time pins down the packet's link-done time exactly.
struct OnePacket {
    sent: bool,
    acked: bool,
}

impl FlowEndpoint for OnePacket {
    fn on_ack(&mut self, ack: &AckInfo) {
        if ack.cum_ack >= 1 {
            self.acked = true;
        }
    }
    fn poll_send(&mut self, _now: Time) -> SendAction {
        if !self.sent {
            self.sent = true;
            SendAction::Transmit {
                seq: 0,
                bytes: 1500,
                retransmit: false,
            }
        } else if self.acked {
            SendAction::Finished
        } else {
            SendAction::Idle
        }
    }
    fn label(&self) -> &str {
        "one-packet"
    }
}

fn varying_config(schedule: RateSchedule, duration_s: f64) -> SimConfig {
    let mut cfg = SimConfig::new(schedule.initial_rate_bps(), 0.1, duration_s);
    cfg.link_mut().schedule = schedule;
    cfg
}

#[test]
fn rate_drop_mid_serialization_finishes_by_byte_progress() {
    // 1500 B at 12 Mbit/s serializes in 1 ms.  Halving the rate 0.5 ms into
    // serialization leaves 6000 bits, which take 1 ms at 6 Mbit/s: the packet
    // must complete at exactly 1.5 ms, not 1 ms (old rate kept) or 2 ms
    // (restarted at the new rate).  The flow finishes one propagation RTT
    // (20 ms) after link-done, when the ACK returns.
    let schedule = RateSchedule::step(12e6, Time::from_micros(500), 6e6);
    let mut net = Network::new(varying_config(schedule, 1.0));
    let h = net.add_flow(
        FlowConfig::cross("one", Time::from_millis(20), false).with_size(1500),
        Box::new(OnePacket {
            sent: false,
            acked: false,
        }),
    );
    net.run();
    let (rec, _) = net.finish();
    let fct_ms = rec.flows[h.0].fct().expect("flow finished").as_millis_f64();
    assert!(
        (fct_ms - 21.5).abs() < 0.05,
        "fct {fct_ms} ms; expected 1.5 ms serialization + 20 ms RTT"
    );
}

#[test]
fn rate_rise_mid_serialization_finishes_by_byte_progress() {
    // Symmetric case: 6 Mbit/s doubling to 12 Mbit/s at 1 ms: 6000 bits done,
    // 6000 bits at 12 Mbit/s = 0.5 ms more, done at 1.5 ms.
    let schedule = RateSchedule::step(6e6, Time::from_millis(1), 12e6);
    let mut net = Network::new(varying_config(schedule, 1.0));
    let h = net.add_flow(
        FlowConfig::cross("one", Time::from_millis(20), false).with_size(1500),
        Box::new(OnePacket {
            sent: false,
            acked: false,
        }),
    );
    net.run();
    let (rec, _) = net.finish();
    let fct_ms = rec.flows[h.0].fct().expect("flow finished").as_millis_f64();
    assert!((fct_ms - 21.5).abs() < 0.05, "fct {fct_ms} ms");
}

#[test]
fn throughput_follows_a_rate_step() {
    // 40 Mbit/s offered. Link: 48 Mbit/s for 5 s (unsaturated → ~40 through),
    // then 12 Mbit/s (saturated → ~12 through).
    let schedule = RateSchedule::step(48e6, Time::from_secs_f64(5.0), 12e6);
    let mut net = Network::new(varying_config(schedule, 10.0));
    let h = net.add_flow(
        FlowConfig::primary("cbr", Time::from_millis(20)),
        Box::new(PacedCbr::new(40e6)),
    );
    net.run();
    let (rec, _) = net.finish();
    let slot = rec.monitored_slot(h.0).unwrap();
    let before = rec.throughput_mbps[slot].mean_in_range(1.0, 4.9);
    let after = rec.throughput_mbps[slot].mean_in_range(6.5, 10.0);
    assert!((before - 40.0).abs() < 2.0, "pre-step throughput {before}");
    assert!((after - 12.0).abs() < 1.5, "post-step throughput {after}");
}

#[test]
fn near_zero_rate_interval_does_not_wedge_the_event_loop() {
    // A two-second outage (1 bit/s) in the middle of the run: the simulation
    // must complete, with a bounded number of events, and still deliver data
    // on both sides of the outage.
    let schedule = RateSchedule::Steps {
        initial_bps: 48e6,
        steps: vec![
            (Time::from_secs_f64(3.0), 1.0),
            (Time::from_secs_f64(5.0), 48e6),
        ],
    };
    let mut net = Network::new(varying_config(schedule.clone(), 8.0));
    let h = net.add_flow(
        FlowConfig::primary("cbr", Time::from_millis(20)),
        Box::new(PacedCbr::new(20e6)),
    );
    net.run();
    assert_eq!(net.now(), Time::from_secs_f64(8.0));
    let events = net.events_processed();
    assert!(events < 1_000_000, "event storm: {events} events");
    let (rec, _) = net.finish();
    let slot = rec.monitored_slot(h.0).unwrap();
    // Deliveries resume after the outage.
    let after = rec.throughput_mbps[slot].mean_in_range(6.0, 8.0);
    assert!(after > 10.0, "throughput after outage {after}");
    // During the outage nothing (meaningfully) gets through.
    let during = rec.throughput_mbps[slot].mean_in_range(3.6, 4.9);
    assert!(during < 1.0, "throughput during outage {during}");
}

#[test]
fn varying_link_runs_are_deterministic() {
    let run = || {
        let schedule = RateSchedule::sinusoid(24e6, 0.25, Time::from_secs_f64(4.0));
        let mut cfg = varying_config(schedule, 10.0);
        cfg.link_mut().loss = LossModel::Bernoulli { p: 0.01 };
        cfg.seed = 7;
        let mut net = Network::new(cfg);
        net.add_flow(
            FlowConfig::primary("a", Time::from_millis(30)),
            Box::new(PacedCbr::new(30e6)),
        );
        net.add_flow(
            FlowConfig::cross("b", Time::from_millis(60), false),
            Box::new(PacedCbr::new(5e6)),
        );
        net.run();
        let events = net.events_processed();
        let (rec, _) = net.finish();
        let snapshot = serde_json::to_string(&rec.snapshot()).unwrap();
        (events, snapshot)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "recorder snapshots diverged across reruns");
}

#[test]
fn engine_clock_reaches_duration_even_when_events_end_early() {
    // Regression: `Network::run` used to leave `now` at the last popped event,
    // stamping the closing recorder sample early and truncating
    // `now()`-based steady-state windows.
    let mut net = Network::new(SimConfig::new(48e6, 0.1, 10.0));
    // A finite flow that finishes in well under a second.
    net.add_flow(
        FlowConfig::cross("short", Time::from_millis(10), false).with_size(1500),
        Box::new(OnePacket {
            sent: false,
            acked: false,
        }),
    );
    net.run();
    assert_eq!(net.now(), Time::from_secs_f64(10.0));
    let (rec, _) = net.finish();
    let last_t = *rec.queue_bytes.t.last().unwrap();
    assert!(
        (last_t - 10.0).abs() < 1e-9,
        "closing sample stamped at {last_t}, expected 10.0"
    );
}

#[test]
fn flows_starting_after_duration_never_run_and_are_flagged() {
    let mut net = Network::new(SimConfig::new(48e6, 0.1, 5.0));
    let ran = net.add_flow(
        FlowConfig::cross("ran", Time::from_millis(10), false).with_size(1500),
        Box::new(OnePacket {
            sent: false,
            acked: false,
        }),
    );
    let never = net.add_flow(
        FlowConfig::cross("never", Time::from_millis(10), false)
            .with_size(1500)
            .starting_at(Time::from_secs_f64(60.0)),
        Box::new(OnePacket {
            sent: false,
            acked: false,
        }),
    );
    net.run();
    let (rec, _) = net.finish();
    assert!(rec.flows[ran.0].started);
    assert!(!rec.flows[never.0].started);
    assert_eq!(
        rec.completed_fcts().len(),
        1,
        "only the flow that ran counts"
    );
    assert_eq!(rec.started_flows().count(), 1);
}

// Work conservation: however the schedule moves, the link can never deliver
// more than `∫µ(t)dt` bits (plus the packet in flight at the cut-off).
proptest! {
    #[test]
    fn delivered_bytes_never_exceed_schedule_integral(
        initial_mbps in 1.0f64..80.0,
        steps in collection::vec((0.5f64..9.5, 0.1f64..80.0), 1..5),
        offered_mbps in 10.0f64..120.0,
        seed in 0u64..1_000,
    ) {
        let duration_s = 10.0;
        let mut sorted: Vec<(Time, f64)> = steps
            .iter()
            .map(|&(t_s, mbps)| (Time::from_secs_f64(t_s), mbps * 1e6))
            .collect();
        sorted.sort_by_key(|&(t, _)| t);
        let schedule = RateSchedule::Steps {
            initial_bps: initial_mbps * 1e6,
            steps: sorted,
        };
        let mut cfg = varying_config(schedule.clone(), duration_s);
        cfg.seed = seed;
        let mut net = Network::new(cfg);
        net.add_flow(
            FlowConfig::primary("cbr", Time::from_millis(20)),
            Box::new(PacedCbr::new(offered_mbps * 1e6)),
        );
        net.run();
        let delivered_bits = net.total_delivered_bytes() as f64 * 8.0;
        let budget_bits = schedule.integral_bits(Time::ZERO, Time::from_secs_f64(duration_s));
        // One MSS of slack: the packet whose serialization straddles the end.
        prop_assert!(
            delivered_bits <= budget_bits + 1500.0 * 8.0,
            "delivered {delivered_bits} bits > integral {budget_bits} bits"
        );
    }
}
