//! Multi-bottleneck path property and regression tests.
//!
//! The path engine must conserve work per hop (delivered bytes can never
//! exceed the minimum over hops of `∫µᵢ(t)dt`), preserve FIFO order along the
//! path (each hop is a FIFO queue and propagation is constant, so a flow's
//! packets can never reorder), conserve admitted bytes exactly
//! (`admitted = received + dropped-in-transit + still-in-network`), and stay
//! bit-for-bit deterministic however many hops the path has.  A hop whose
//! schedule ends in a (near-)zero-rate outage must not wedge the run or
//! corrupt the recorder's closing sample.

use nimbus_netsim::{
    AckInfo, FlowConfig, FlowEndpoint, LinkConfig, LossModel, Network, RateSchedule, SendAction,
    SimConfig, Time,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// A constant-bit-rate paced sender that records the `triggering_seq` of
/// every ACK it sees: on a FIFO path with constant propagation those must be
/// strictly increasing (drops skip numbers but never reorder them).
struct PacedCbr {
    rate_bps: f64,
    mss: u32,
    next_seq: u64,
    next_send: Time,
    acked_seqs: Arc<Mutex<Vec<u64>>>,
}

impl PacedCbr {
    fn new(rate_bps: f64) -> Self {
        PacedCbr {
            rate_bps,
            mss: 1500,
            next_seq: 0,
            next_send: Time::ZERO,
            acked_seqs: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn ack_log(&self) -> Arc<Mutex<Vec<u64>>> {
        Arc::clone(&self.acked_seqs)
    }
}

impl FlowEndpoint for PacedCbr {
    fn on_ack(&mut self, ack: &AckInfo) {
        self.acked_seqs.lock().unwrap().push(ack.triggering_seq);
    }
    fn poll_send(&mut self, now: Time) -> SendAction {
        if now >= self.next_send {
            let seq = self.next_seq;
            self.next_seq += 1;
            let gap = Time::from_secs_f64(self.mss as f64 * 8.0 / self.rate_bps);
            self.next_send = if self.next_send == Time::ZERO {
                now + gap
            } else {
                self.next_send + gap
            };
            SendAction::Transmit {
                seq,
                bytes: self.mss,
                retransmit: false,
            }
        } else {
            SendAction::WaitUntil(self.next_send)
        }
    }
    fn label(&self) -> &str {
        "paced-cbr"
    }
}

/// Build an n-hop path config from per-hop (schedule, buffer) pairs.
fn path_config(hops: Vec<RateSchedule>, duration_s: f64) -> SimConfig {
    let mut it = hops.into_iter();
    let first = it.next().expect("at least one hop");
    let mut cfg = SimConfig::new(first.initial_rate_bps(), 0.1, duration_s);
    cfg.path[0].schedule = first;
    for schedule in it {
        let link = LinkConfig::drop_tail(schedule.initial_rate_bps(), 0.1)
            .with_schedule(schedule)
            .with_prop_delay(Time::from_millis(5));
        cfg = cfg.with_hop(link);
    }
    cfg
}

#[test]
fn secondary_bottleneck_caps_throughput_at_the_path_minimum() {
    // 48 Mbit/s first hop, 12 Mbit/s second hop, 30 Mbit/s offered: delivery
    // is capped by the second hop, and the standing queue builds there.
    let cfg = path_config(
        vec![RateSchedule::constant(48e6), RateSchedule::constant(12e6)],
        10.0,
    );
    let mut net = Network::new(cfg);
    let h = net.add_flow(
        FlowConfig::primary("cbr", Time::from_millis(20)),
        Box::new(PacedCbr::new(30e6)),
    );
    net.run();
    let (rec, _) = net.finish();
    let slot = rec.monitored_slot(h.0).unwrap();
    let tput = rec.throughput_mbps[slot].mean_in_range(4.0, 10.0);
    assert!((tput - 12.0).abs() < 1.5, "throughput {tput}");
    // The queue lives at hop 1, not hop 0.
    let q0 = rec.hop_queue_bytes[0].mean_in_range(4.0, 10.0);
    let q1 = rec.hop_queue_bytes[1].mean_in_range(4.0, 10.0);
    assert!(
        q1 > 10.0 * q0.max(1.0),
        "hop0 queue {q0} B, hop1 queue {q1} B"
    );
    // Drops happen at the tight hop.
    assert_eq!(rec.hop_dropped_packets[0], 0);
    assert!(rec.hop_dropped_packets[1] > 0);
}

#[test]
fn per_hop_propagation_adds_to_the_base_rtt() {
    // Two hops with 5 ms inter-hop propagation and a 20 ms flow RTT: base
    // RTT = 20 ms + 5 ms + 2 serializations (~0.25 ms each at 48 Mbit/s).
    let cfg = path_config(
        vec![RateSchedule::constant(48e6), RateSchedule::constant(48e6)],
        10.0,
    );
    let mut net = Network::new(cfg);
    let h = net.add_flow(
        FlowConfig::primary("cbr", Time::from_millis(20)),
        Box::new(PacedCbr::new(5e6)),
    );
    net.run();
    let (rec, _) = net.finish();
    let slot = rec.monitored_slot(h.0).unwrap();
    let rtt = rec.rtt_ms[slot].mean_in_range(2.0, 10.0);
    assert!(
        (rtt - 25.5).abs() < 1.0,
        "rtt {rtt} ms, expected ~25.5 (20 prop + 5 inter-hop + serialization)"
    );
}

#[test]
fn interior_hop_outage_still_stamps_the_closing_sample_at_duration() {
    // Regression (PR 2 closing clamp, path edition): the first hop's schedule
    // ends in a 1 bit/s outage, so its final `LinkDone` is scheduled
    // thousands of seconds past `duration` and never fires.  The run must
    // still end exactly at `duration`, with every recorder series' closing
    // sample stamped there and admission conservation intact (the wedged
    // bytes are accounted as still-in-network).
    let outage = RateSchedule::step(48e6, Time::from_secs_f64(3.0), 0.0);
    let cfg = path_config(vec![outage, RateSchedule::constant(48e6)], 6.0);
    let mut net = Network::new(cfg);
    let h = net.add_flow(
        FlowConfig::primary("cbr", Time::from_millis(20)),
        Box::new(PacedCbr::new(20e6)),
    );
    net.run();
    assert_eq!(net.now(), Time::from_secs_f64(6.0));
    assert_eq!(
        net.total_enqueued_bytes(),
        net.total_received_bytes() + net.dropped_in_transit_bytes() + net.in_network_bytes(),
        "conservation across the outage"
    );
    let (rec, _) = net.finish();
    let slot = rec.monitored_slot(h.0).unwrap();
    for (name, series) in [
        ("queue_bytes", &rec.queue_bytes),
        ("hop0", &rec.hop_queue_bytes[0]),
        ("hop1", &rec.hop_queue_bytes[1]),
        ("throughput", &rec.throughput_mbps[slot]),
    ] {
        let last_t = *series.t.last().unwrap();
        assert!(
            (last_t - 6.0).abs() < 1e-9,
            "{name} closing sample stamped at {last_t}, expected 6.0"
        );
    }
    // Data flowed before the outage, none after it wedged hop 0.
    assert!(rec.throughput_mbps[slot].mean_in_range(1.0, 2.9) > 15.0);
    assert!(rec.throughput_mbps[slot].mean_in_range(4.0, 6.0) < 1.0);
}

#[test]
fn mid_path_cross_traffic_enters_and_is_dropped_at_its_entry_hop() {
    // Main flow traverses hops 0..=1; cross traffic enters at hop 1 offering
    // well over that hop's rate, so hop 1 drops heavily.  The cross flow's
    // drops must be charged to hop 1 and the main flow still gets a share.
    // (The cross rate is deliberately *not* an integer multiple of the drain
    // rate: commensurate CBR periods phase-lock against the drain clock and
    // can deterministically capture every freed buffer slot.)
    let cfg = path_config(
        vec![RateSchedule::constant(48e6), RateSchedule::constant(24e6)],
        10.0,
    );
    let mut net = Network::new(cfg);
    let main = net.add_flow(
        FlowConfig::primary("main", Time::from_millis(20)),
        Box::new(PacedCbr::new(20e6)),
    );
    let cross = net.add_flow(
        FlowConfig::cross("mid", Time::from_millis(10), false).entering_at(1),
        Box::new(PacedCbr::new(64e6)),
    );
    net.run();
    let (rec, _) = net.finish();
    assert_eq!(rec.hop_dropped_packets[0], 0, "hop 0 is uncongested");
    assert!(rec.flows[cross.0].dropped_packets > 0);
    assert!(rec.hop_dropped_packets[1] >= rec.flows[cross.0].dropped_packets);
    let tput = rec.throughput_mbps[rec.monitored_slot(main.0).unwrap()].mean_in_range(4.0, 10.0);
    assert!(tput > 2.0, "main flow starved: {tput}");
    // Cross traffic never touched hop 0, so its queue stayed empty.
    assert!(rec.hop_queue_bytes[0].mean_in_range(0.0, 10.0) < 2000.0);
}

#[test]
fn flow_exiting_mid_path_skips_downstream_hops() {
    // A flow exiting at hop 0 of a 2-hop path is unaffected by a congested
    // (tiny) hop 1 and never occupies it.
    let cfg = path_config(
        vec![RateSchedule::constant(48e6), RateSchedule::constant(1e6)],
        10.0,
    );
    let mut net = Network::new(cfg);
    let short = net.add_flow(
        FlowConfig::primary("short-path", Time::from_millis(20)).exiting_at(0),
        Box::new(PacedCbr::new(20e6)),
    );
    net.run();
    let (rec, _) = net.finish();
    let tput = rec.throughput_mbps[rec.monitored_slot(short.0).unwrap()].mean_in_range(2.0, 10.0);
    assert!((tput - 20.0).abs() < 1.5, "throughput {tput}");
    assert!(rec.hop_queue_bytes[1].mean_in_range(0.0, 10.0) < 1.0);
}

proptest! {
    // Work conservation on random 2–4-hop chains of random step schedules:
    // delivered bytes never exceed the minimum over hops of `∫µᵢ(t)dt`, the
    // admission ledger balances exactly, and the flow's ACK stream is
    // strictly FIFO.
    #[test]
    fn path_conservation_and_fifo_on_random_chains(
        hop_specs in collection::vec(
            (1.0f64..60.0, collection::vec((0.5f64..9.5, 0.5f64..60.0), 0..4)),
            2..5,
        ),
        offered_mbps in 5.0f64..100.0,
        seed in 0u64..1_000,
    ) {
        let duration_s = 10.0;
        let schedules: Vec<RateSchedule> = hop_specs
            .iter()
            .map(|(initial_mbps, steps)| {
                let mut sorted: Vec<(Time, f64)> = steps
                    .iter()
                    .map(|&(t_s, mbps)| (Time::from_secs_f64(t_s), mbps * 1e6))
                    .collect();
                sorted.sort_by_key(|&(t, _)| t);
                RateSchedule::Steps {
                    initial_bps: initial_mbps * 1e6,
                    steps: sorted,
                }
            })
            .collect();
        let mut cfg = path_config(schedules.clone(), duration_s);
        cfg.seed = seed;
        let mut net = Network::new(cfg);
        let sender = PacedCbr::new(offered_mbps * 1e6);
        let ack_log = sender.ack_log();
        net.add_flow(
            FlowConfig::primary("cbr", Time::from_millis(20)),
            Box::new(sender),
        );
        net.run();

        // Work conservation against the tightest hop.
        let delivered_bits = net.total_delivered_bytes() as f64 * 8.0;
        let min_budget_bits = schedules
            .iter()
            .map(|s| s.integral_bits(Time::ZERO, Time::from_secs_f64(duration_s)))
            .fold(f64::INFINITY, f64::min);
        // One MSS of slack per hop: packets whose serialization straddles a
        // boundary when the budget is evaluated.
        let slack = 1500.0 * 8.0 * schedules.len() as f64;
        prop_assert!(
            delivered_bits <= min_budget_bits + slack,
            "delivered {delivered_bits} bits > min-hop integral {min_budget_bits} bits"
        );

        // Exact admission conservation at the stopping point.
        prop_assert_eq!(
            net.total_enqueued_bytes(),
            net.total_received_bytes()
                + net.dropped_in_transit_bytes()
                + net.in_network_bytes(),
            "admitted != received + dropped-in-transit + in-network"
        );

        // FIFO along the whole path: ACK triggering sequence numbers are
        // strictly increasing (drops skip, never reorder).
        let acks = ack_log.lock().unwrap();
        for w in acks.windows(2) {
            prop_assert!(w[0] < w[1], "reordered ACKs: {} then {}", w[0], w[1]);
        }
    }

    // Multi-hop runs are bit-for-bit deterministic: identical configs (with
    // loss enabled on two hops) produce identical recorder snapshots.
    #[test]
    fn multihop_runs_are_deterministic(seed in 0u64..200) {
        let run = |seed: u64| {
            let mut cfg = path_config(
                vec![
                    RateSchedule::sinusoid(24e6, 0.25, Time::from_secs_f64(4.0)),
                    RateSchedule::constant(18e6),
                    RateSchedule::step(30e6, Time::from_secs_f64(4.0), 12e6),
                ],
                8.0,
            );
            cfg.seed = seed;
            cfg.path[0].loss = LossModel::Bernoulli { p: 0.01 };
            cfg.path[2].loss = LossModel::Bernoulli { p: 0.005 };
            let mut net = Network::new(cfg);
            net.add_flow(
                FlowConfig::primary("a", Time::from_millis(30)),
                Box::new(PacedCbr::new(20e6)),
            );
            net.add_flow(
                FlowConfig::cross("b", Time::from_millis(40), false).entering_at(1),
                Box::new(PacedCbr::new(6e6)),
            );
            net.run();
            let events = net.events_processed();
            let (rec, _) = net.finish();
            (events, serde_json::to_string(&rec.snapshot()).unwrap())
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.0, b.0, "event counts diverged");
        prop_assert_eq!(a.1, b.1, "recorder snapshots diverged");
    }
}
