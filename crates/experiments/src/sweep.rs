//! The `sweep` subcommand: run a (scheme × cross-traffic × bottleneck ×
//! schedule × seed) matrix in parallel and record per-cell wall-clock and
//! events-per-second throughput as a benchmark baseline.
//!
//! This promotes the testkit's work-queue parallelism
//! ([`parallel_map`]) into a user-facing
//! command: every future PR can run `nimbus-experiments sweep --quick` and
//! diff the resulting `BENCH_sweep.json` against the committed baseline to
//! see whether the hot paths got faster or slower.
//!
//! The scheme axis takes [`SchemeSpec`] strings: repeated `--scheme` flags
//! (`sweep --scheme 'nimbus(competitive=reno,mu=learned)' --scheme cubic`)
//! replace the default axis, benchmarking exactly those schemes across the
//! cross-traffic/rate/schedule dimensions.

use crate::runner::{EcnSpec, LinkScheduleSpec, PathSpec};
use crate::scheme::SchemeSpec;
use crate::testkit::{parallel_map, Cell, CrossTraffic, Invariants};
use nimbus_core::TcpScheme;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Options for a sweep run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Scale the matrix down (shorter cells, fewer dimensions).
    pub quick: bool,
    /// Worker-thread cap (`None` = one per available core).
    pub threads: Option<usize>,
    /// Where to write the JSON report.
    pub out: PathBuf,
    /// Override the matrix's scheme axis (`--scheme` on the CLI, repeatable,
    /// each value a [`SchemeSpec`] string).  `None` runs the default axis.
    pub schemes: Option<Vec<SchemeSpec>>,
    /// Run every cell with this marking profile on the primary bottleneck
    /// (`--ecn` on the CLI).  `None` keeps each cell's own setting.
    pub ecn: Option<EcnSpec>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            quick: false,
            threads: None,
            out: PathBuf::from("BENCH_sweep.json"),
            schemes: None,
            ecn: None,
        }
    }
}

/// Per-cell benchmark record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCellResult {
    /// Cell name (`scheme@rate[-schedule]-vs-cross-seedN`).
    pub name: String,
    /// Simulated seconds covered by the cell.
    pub sim_s: f64,
    /// Wall-clock seconds the cell took.
    pub wall_s: f64,
    /// Engine events processed.
    pub events: u64,
    /// Events per wall-clock second — the headline perf number.
    pub events_per_sec: f64,
    /// Simulated seconds per wall-clock second.
    pub sim_speedup: f64,
    /// Steady-state throughput of the monitored flow, Mbit/s (sanity anchor
    /// so a "faster" sweep that simulates garbage is caught).
    pub mean_throughput_mbps: f64,
}

/// The whole sweep report (serialized to `BENCH_sweep.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Report format marker.
    pub schema: String,
    /// Whether the quick matrix was run.
    pub quick: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Number of cells in the matrix.
    pub cell_count: usize,
    /// Total wall-clock seconds for the whole sweep.
    pub total_wall_s: f64,
    /// Sum of all per-cell events.
    pub total_events: u64,
    /// Aggregate events per wall-clock second across the parallel sweep.
    pub aggregate_events_per_sec: f64,
    /// Per-cell records, in matrix order.
    pub cells: Vec<SweepCellResult>,
}

/// The benchmark matrix: schemes × cross traffic × link rates × schedules ×
/// seeds.  The quick variant covers every schedule family but trims the
/// slower dimensions so CI can afford it per-PR.
pub fn sweep_matrix(quick: bool) -> Vec<Cell> {
    sweep_matrix_with(quick, None)
}

/// [`sweep_matrix`] with an optional override of the scheme axis: pass the
/// specs from repeated `--scheme` flags to benchmark exactly those schemes
/// across the cross/rate/schedule dimensions and the multi-hop path shapes.
/// The fixed new-combination slice (spec-built wrapper compositions, the
/// built-in trace) is only appended for the default axis — it exists to
/// keep the CI perf gate covering those paths, not to dilute an explicit
/// axis.
pub fn sweep_matrix_with(quick: bool, scheme_axis: Option<&[SchemeSpec]>) -> Vec<Cell> {
    let default_axis = scheme_axis.is_none();
    let schemes: Vec<SchemeSpec> = match scheme_axis {
        Some(axis) => axis.to_vec(),
        None if quick => vec![SchemeSpec::nimbus(), SchemeSpec::cubic()],
        None => vec![
            SchemeSpec::nimbus(),
            SchemeSpec::cubic(),
            SchemeSpec::vegas(),
            SchemeSpec::bbr(),
        ],
    };
    let crosses: Vec<CrossTraffic> = if quick {
        vec![
            CrossTraffic::None,
            CrossTraffic::Cbr {
                fraction_of_mu: 0.5,
            },
        ]
    } else {
        vec![
            CrossTraffic::None,
            CrossTraffic::Cbr {
                fraction_of_mu: 0.5,
            },
            CrossTraffic::Poisson {
                fraction_of_mu: 0.5,
            },
            CrossTraffic::elastic_cubic(),
        ]
    };
    let rates: Vec<f64> = if quick { vec![48e6] } else { vec![48e6, 96e6] };
    let schedules: Vec<LinkScheduleSpec> = vec![
        LinkScheduleSpec::Constant,
        LinkScheduleSpec::Sinusoid {
            amplitude_frac: 0.25,
            period_s: 10.0,
        },
        LinkScheduleSpec::Step {
            at_s: if quick { 7.0 } else { 15.0 },
            factor: 0.5,
        },
    ];
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2] };
    let duration_s = if quick { 15.0 } else { 40.0 };

    let mut cells = Vec::new();
    for &scheme in &schemes {
        for cross in &crosses {
            for &rate in &rates {
                for schedule in &schedules {
                    for &seed in &seeds {
                        cells.push(Cell {
                            scheme,
                            cross: cross.clone(),
                            link_rate_bps: rate,
                            schedule: schedule.clone(),
                            path: PathSpec::single(),
                            seed,
                            duration_s,
                            steady_start_s: duration_s * 0.25,
                            ecn: EcnSpec::Off,
                            // The sweep benchmarks; it does not assert.
                            invariants: Invariants::default(),
                        });
                    }
                }
            }
        }
    }

    // Multi-hop path cells: per-cell events/sec under path topologies is
    // tracked from the same baseline as the single-link cells.  Two path
    // shapes — a fixed secondary bottleneck and a moving bottleneck (anti-
    // phase steps on hops 0 and 1) — across the scheme dimension.
    let paths: Vec<(LinkScheduleSpec, PathSpec)> = vec![
        (LinkScheduleSpec::Constant, PathSpec::with_secondary(0.6)),
        (
            LinkScheduleSpec::Step {
                at_s: duration_s * 0.45,
                factor: 0.5,
            },
            PathSpec::moving_bottleneck(0.5, duration_s * 0.45),
        ),
    ];
    let path_crosses: Vec<CrossTraffic> = if quick {
        vec![CrossTraffic::None]
    } else {
        vec![
            CrossTraffic::None,
            CrossTraffic::Cbr {
                fraction_of_mu: 0.3,
            },
        ]
    };
    for &scheme in &schemes {
        for (schedule, path) in &paths {
            for cross in &path_crosses {
                cells.push(Cell {
                    scheme,
                    cross: cross.clone(),
                    link_rate_bps: 48e6,
                    schedule: schedule.clone(),
                    path: path.clone(),
                    seed: 1,
                    duration_s,
                    steady_start_s: duration_s * 0.25,
                    ecn: EcnSpec::Off,
                    invariants: Invariants::default(),
                });
            }
        }
    }

    // New-combination cells (default axis only): schemes and competition
    // shapes only the compositional `SchemeSpec` builder can assemble, plus
    // a curated built-in trace.  Keeping them in the quick matrix means the
    // CI perf gate covers the spec-built path, not just the legacy
    // combinations.
    if default_axis {
        let combos: Vec<(SchemeSpec, CrossTraffic, LinkScheduleSpec)> = vec![
            (
                SchemeSpec::nimbus().with_competitive(TcpScheme::NewReno),
                CrossTraffic::elastic_cubic(),
                LinkScheduleSpec::Constant,
            ),
            (
                SchemeSpec::nimbus_copa().with_learned_mu(),
                CrossTraffic::None,
                LinkScheduleSpec::Sinusoid {
                    amplitude_frac: 0.1,
                    period_s: 10.0,
                },
            ),
            (
                SchemeSpec::nimbus(),
                CrossTraffic::Mix {
                    specs: vec![SchemeSpec::copa(), SchemeSpec::cubic()],
                },
                LinkScheduleSpec::Constant,
            ),
            (
                SchemeSpec::cubic(),
                CrossTraffic::None,
                LinkScheduleSpec::NamedTrace {
                    name: "cellular".to_string(),
                },
            ),
            // The estimator axis of the µ-estimation API: the probing
            // strategy on the deep-fade trace it recovers, and the adaptive
            // ẑ thresholds on the sinusoid regime they recover — both in
            // the per-PR perf gate so the strategy hot paths are tracked.
            (
                SchemeSpec::nimbus().with_probing_mu(),
                CrossTraffic::None,
                LinkScheduleSpec::NamedTrace {
                    name: "cellular".to_string(),
                },
            ),
            (
                SchemeSpec::nimbus()
                    .with_learned_mu()
                    .with_z_filter(nimbus_core::ZFilterConfig::adaptive()),
                CrossTraffic::None,
                LinkScheduleSpec::Sinusoid {
                    amplitude_frac: 0.1,
                    period_s: 10.0,
                },
            ),
        ];
        for (scheme, cross, schedule) in combos {
            cells.push(Cell {
                scheme,
                cross,
                link_rate_bps: 48e6,
                schedule,
                path: PathSpec::single(),
                seed: 1,
                duration_s,
                steady_start_s: duration_s * 0.25,
                ecn: EcnSpec::Off,
                invariants: Invariants::default(),
            });
        }
        // ECN cells in the per-PR perf gate: the marking hot path (per-
        // enqueue threshold checks + CE echo + the mark recorder series)
        // and the DCTCP reaction are exercised under the three marking
        // profiles, so a regression in the mark path shows up here rather
        // than only in the gated matrix.
        let ecn_combos: Vec<(SchemeSpec, CrossTraffic, EcnSpec)> = vec![
            (SchemeSpec::dctcp(), CrossTraffic::None, EcnSpec::l4s()),
            (SchemeSpec::cubic(), CrossTraffic::None, EcnSpec::Classic),
            (
                SchemeSpec::nimbus(),
                CrossTraffic::elastic_cubic(),
                EcnSpec::Classic,
            ),
        ];
        for (scheme, cross, ecn) in ecn_combos {
            cells.push(Cell {
                scheme,
                cross,
                link_rate_bps: 48e6,
                schedule: LinkScheduleSpec::Constant,
                path: PathSpec::single(),
                seed: 1,
                duration_s,
                steady_start_s: duration_s * 0.25,
                ecn,
                invariants: Invariants::default(),
            });
        }
        // Population-scale churn in the per-PR perf gate: a 1 Gbit/s
        // bottleneck with an open-loop Poisson fleet at 50% load spawns and
        // retires ~550 flows/s, so this one cell churns through thousands of
        // flow lifetimes — the spawner/retirement hot path regresses here
        // long before it would show in the static-flow cells.
        cells.push(Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Fleet {
                spec: crate::runner::FleetSpec::poisson(0.5),
            },
            link_rate_bps: 1e9,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 1,
            duration_s,
            steady_start_s: duration_s * 0.25,
            ecn: EcnSpec::Off,
            invariants: Invariants::default(),
        });
    }
    cells
}

/// Run the sweep matrix in parallel, timing each cell, and write the report.
pub fn run_sweep(cfg: &SweepConfig) -> std::io::Result<SweepReport> {
    let mut cells = sweep_matrix_with(cfg.quick, cfg.schemes.as_deref());
    if let Some(ecn) = cfg.ecn {
        for cell in &mut cells {
            cell.ecn = ecn;
        }
    }
    let threads = cfg
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1);
    let started = Instant::now();
    let results = parallel_map(&cells, Some(threads), |cell| {
        let cell_start = Instant::now();
        let outcome = cell.run();
        let wall_s = cell_start.elapsed().as_secs_f64();
        SweepCellResult {
            name: outcome.name,
            sim_s: outcome.sim_s,
            wall_s,
            events: outcome.events,
            events_per_sec: outcome.events as f64 / wall_s.max(1e-9),
            sim_speedup: outcome.sim_s / wall_s.max(1e-9),
            mean_throughput_mbps: outcome.metrics.mean_throughput_mbps,
        }
    });
    let total_wall_s = started.elapsed().as_secs_f64();
    let total_events: u64 = results.iter().map(|r| r.events).sum();
    let report = SweepReport {
        schema: "nimbus-sweep-v1".to_string(),
        quick: cfg.quick,
        threads,
        cell_count: results.len(),
        total_wall_s,
        total_events,
        aggregate_events_per_sec: total_events as f64 / total_wall_s.max(1e-9),
        cells: results,
    };
    write_report(&report, &cfg.out)?;
    Ok(report)
}

/// Per-cell wall time in flamegraph folded-stack format, one line per cell:
/// `sweep;<cell name> <wall µs>`.  Feed the file straight to `flamegraph.pl`
/// (or any folded-stack viewer) to get a width-proportional picture of where
/// the sweep's wall clock went, without rerunning anything.
pub fn folded_timings(report: &SweepReport) -> String {
    let mut out = String::new();
    for cell in &report.cells {
        out.push_str(&format!(
            "sweep;{} {}\n",
            cell.name,
            (cell.wall_s * 1e6).round() as u64
        ));
    }
    out
}

/// Serialize a report to `path` as pretty-printed JSON.
pub fn write_report(report: &SweepReport, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, serde_json::to_string_pretty(report).unwrap())
}

/// Compare a fresh sweep against a committed baseline: any cell present in
/// both whose events-per-second fell by more than `threshold` (a fraction,
/// e.g. 0.3 = 30%) *relative to the median movement across all shared cells*
/// is reported as a regression.
///
/// Normalizing by the median current/baseline ratio makes the gate
/// machine-portable: the committed baseline is measured on whatever machine
/// last re-baselined, while CI runs on shared runners with different (and
/// noisy) absolute speeds — a uniform speed shift moves every cell's ratio
/// together and is absorbed by the median, whereas a genuine per-scenario
/// pathology (the historic failure modes were event storms in *one* cell)
/// lags the rest of the matrix and is flagged.  The trade-off: a perfectly
/// uniform global slowdown re-baselines silently; the report's
/// `aggregate_events_per_sec` remains the eyeball check for that.
///
/// Cells only present on one side (matrix changes) are ignored — they
/// establish a new baseline instead.
pub fn perf_regressions(
    baseline: &SweepReport,
    current: &SweepReport,
    threshold: f64,
) -> Vec<String> {
    let base: std::collections::HashMap<&str, &SweepCellResult> = baseline
        .cells
        .iter()
        .map(|c| (c.name.as_str(), c))
        .collect();
    let shared: Vec<(&SweepCellResult, f64)> = current
        .cells
        .iter()
        .filter_map(|cell| {
            let b = base.get(cell.name.as_str())?;
            (b.events_per_sec > 0.0).then(|| (cell, cell.events_per_sec / b.events_per_sec))
        })
        .collect();
    if shared.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = shared.iter().map(|&(_, r)| r).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let median = sorted[sorted.len() / 2];
    let mut regressions = Vec::new();
    for (cell, ratio) in shared {
        if ratio < median * (1.0 - threshold) {
            regressions.push(format!(
                "{}: {:.0} ev/s, {:.0}% of baseline (matrix median {:.0}%)",
                cell.name,
                cell.events_per_sec,
                ratio * 100.0,
                median * 100.0
            ));
        }
    }
    regressions
}

/// Render the per-cell current/baseline events-per-second comparison as an
/// aligned table sorted worst-first (lowest ratio at the top), with the
/// matrix median as the reference line.  `sweep-check` prints this
/// unconditionally, pass or fail: the next anomalous cell should be visible
/// in CI logs directly, not buried in two JSON files.  Cells present on only
/// one side (matrix changes) are listed after the shared cells.
pub fn ratio_table(baseline: &SweepReport, current: &SweepReport) -> String {
    let base: std::collections::HashMap<&str, &SweepCellResult> = baseline
        .cells
        .iter()
        .map(|c| (c.name.as_str(), c))
        .collect();
    let mut shared: Vec<(&SweepCellResult, &SweepCellResult, f64)> = current
        .cells
        .iter()
        .filter_map(|cell| {
            let b = base.get(cell.name.as_str())?;
            (b.events_per_sec > 0.0).then(|| (cell, *b, cell.events_per_sec / b.events_per_sec))
        })
        .collect();
    shared.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("ratios are finite"));
    let mut out = String::new();
    if shared.is_empty() {
        out.push_str("no cells shared between baseline and current report\n");
    } else {
        let mut ratios: Vec<f64> = shared.iter().map(|&(_, _, r)| r).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let median = ratios[ratios.len() / 2];
        out.push_str(&format!(
            "== per-cell current/baseline events-per-second, worst first (median {:.0}%) ==\n",
            median * 100.0
        ));
        out.push_str(&format!(
            "{:55} {:>12} {:>12} {:>8}\n",
            "cell", "current", "baseline", "ratio"
        ));
        for (cur, b, ratio) in &shared {
            out.push_str(&format!(
                "{:55} {:>12.0} {:>12.0} {:>7.0}%\n",
                cur.name,
                cur.events_per_sec,
                b.events_per_sec,
                ratio * 100.0
            ));
        }
    }
    let current_names: std::collections::HashSet<&str> =
        current.cells.iter().map(|c| c.name.as_str()).collect();
    for cell in &current.cells {
        if !base.contains_key(cell.name.as_str()) {
            out.push_str(&format!(
                "{:55} {:>12.0} {:>12} {:>8}\n",
                cell.name, cell.events_per_sec, "-", "new"
            ));
        }
    }
    for cell in &baseline.cells {
        if !current_names.contains(cell.name.as_str()) {
            out.push_str(&format!(
                "{:55} {:>12} {:>12.0} {:>8}\n",
                cell.name, "-", cell.events_per_sec, "gone"
            ));
        }
    }
    out
}

/// Read a sweep report back from disk.
pub fn read_report(path: &Path) -> std::io::Result<SweepReport> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))
}

/// Render the report as an aligned text table for the terminal.
pub fn report_table(report: &SweepReport) -> String {
    let mut out = format!(
        "== sweep ({} cells, {} threads, {:.1} s wall, {:.0} events/s aggregate) ==\n",
        report.cell_count, report.threads, report.total_wall_s, report.aggregate_events_per_sec
    );
    for c in &report.cells {
        out.push_str(&format!(
            "{:52} {:6.1} sim-s  {:7.3} wall-s  {:9} ev  {:10.0} ev/s  {:7.2} Mbit/s\n",
            c.name, c.sim_s, c.wall_s, c.events, c.events_per_sec, c.mean_throughput_mbps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_every_schedule_family_and_is_unique() {
        let cells = sweep_matrix(true);
        assert!(cells.len() >= 10, "quick matrix too small: {}", cells.len());
        let mut names: Vec<String> = cells.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), cells.len(), "cell names must be unique");
        assert!(cells
            .iter()
            .any(|c| matches!(c.schedule, LinkScheduleSpec::Sinusoid { .. })));
        assert!(cells
            .iter()
            .any(|c| matches!(c.schedule, LinkScheduleSpec::Step { .. })));
        assert!(cells
            .iter()
            .any(|c| c.schedule == LinkScheduleSpec::Constant));
        // The full matrix is a strict superset in every dimension.
        let full = sweep_matrix(false);
        assert!(full.len() > cells.len() * 4);
    }

    #[test]
    fn quick_matrix_includes_multihop_cells() {
        let cells = sweep_matrix(true);
        let multihop: Vec<_> = cells.iter().filter(|c| c.path.hop_count() > 1).collect();
        assert!(
            multihop.len() >= 4,
            "quick sweep needs >= 4 multi-hop cells, found {}",
            multihop.len()
        );
        assert!(
            multihop.iter().any(|c| c.path.label().contains("mv")),
            "quick sweep needs a moving-bottleneck cell"
        );
    }

    #[test]
    fn quick_matrix_includes_new_combination_cells() {
        let cells = sweep_matrix(true);
        let names: Vec<String> = cells.iter().map(|c| c.name()).collect();
        // Spec-built combinations the legacy enum could not express, plus a
        // built-in trace, are part of the per-PR perf gate.
        assert!(
            names.iter().any(|n| n.starts_with("nimbus-reno@")),
            "{names:?}"
        );
        assert!(names.iter().any(|n| n.starts_with("nimbus-copa-estmu@")));
        assert!(names.iter().any(|n| n.contains("-vs-copa+cubic-")));
        assert!(names.iter().any(|n| n.contains("trace-cellular")));
        // The estimator axis rides in the perf gate too.
        assert!(names.iter().any(|n| n.starts_with("nimbus-estmu-probe1@")));
        assert!(names.iter().any(|n| n.starts_with("nimbus-estmu-zadapt@")));
        // And the population-scale fleet churn cell (1 Gbit/s spawner path).
        assert!(
            names
                .iter()
                .any(|n| n.contains("@1000M") && n.contains("-vs-fleet-poisson-l50-")),
            "{names:?}"
        );
    }

    #[test]
    fn scheme_axis_override_benchmarks_exactly_those_schemes() {
        let axis = vec![SchemeSpec::vegas()];
        let cells = sweep_matrix_with(true, Some(&axis));
        assert!(!cells.is_empty());
        assert!(cells.iter().all(|c| c.scheme == SchemeSpec::vegas()));
        // The default-axis extras are not appended for an explicit axis.
        assert!(cells.iter().all(|c| !c.name().contains("copa+cubic")));
    }

    #[test]
    fn perf_regressions_flag_only_genuine_slowdowns() {
        let cell = |name: &str, eps: f64| SweepCellResult {
            name: name.to_string(),
            sim_s: 15.0,
            wall_s: 1.0,
            events: 1000,
            events_per_sec: eps,
            sim_speedup: 15.0,
            mean_throughput_mbps: 40.0,
        };
        let report = |cells: Vec<SweepCellResult>| SweepReport {
            schema: "nimbus-sweep-v1".to_string(),
            quick: true,
            threads: 1,
            cell_count: cells.len(),
            total_wall_s: 1.0,
            total_events: 1000,
            aggregate_events_per_sec: 1000.0,
            cells,
        };
        let baseline = report(vec![
            cell("a", 1000.0),
            cell("b", 1000.0),
            cell("c", 1000.0),
            cell("d", 1000.0),
            cell("gone", 500.0),
        ]);
        // A uniformly 2x-slower machine: every ratio moves together, the
        // median absorbs it, no false positives.
        let slower_machine = report(vec![
            cell("a", 500.0),
            cell("b", 500.0),
            cell("c", 500.0),
            cell("d", 500.0),
        ]);
        assert!(perf_regressions(&baseline, &slower_machine, 0.3).is_empty());

        // One pathological cell lagging an otherwise-faster run is flagged;
        // cells absent from the baseline are ignored.
        let one_bad_cell = report(vec![
            cell("a", 1200.0),
            cell("b", 1150.0),
            cell("c", 1250.0),
            cell("d", 400.0),  // ~33% of the ~1.2 median: regression
            cell("new", 10.0), // not in baseline: ignored
        ]);
        let regs = perf_regressions(&baseline, &one_bad_cell, 0.3);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("d:"), "{}", regs[0]);
        // A loose-enough threshold clears it.
        assert!(perf_regressions(&baseline, &one_bad_cell, 0.7).is_empty());
    }

    #[test]
    fn ratio_table_sorts_worst_first_and_marks_matrix_changes() {
        let cell = |name: &str, eps: f64| SweepCellResult {
            name: name.to_string(),
            sim_s: 15.0,
            wall_s: 1.0,
            events: 1000,
            events_per_sec: eps,
            sim_speedup: 15.0,
            mean_throughput_mbps: 40.0,
        };
        let report = |cells: Vec<SweepCellResult>| SweepReport {
            schema: "nimbus-sweep-v1".to_string(),
            quick: true,
            threads: 1,
            cell_count: cells.len(),
            total_wall_s: 1.0,
            total_events: 1000,
            aggregate_events_per_sec: 1000.0,
            cells,
        };
        let baseline = report(vec![
            cell("fast", 1000.0),
            cell("slow", 1000.0),
            cell("gone", 800.0),
        ]);
        let current = report(vec![
            cell("fast", 2000.0),
            cell("slow", 250.0),
            cell("new", 500.0),
        ]);
        let table = ratio_table(&baseline, &current);
        // Worst ratio (25%) sorts above the best (200%).
        let slow_pos = table.find("slow").expect("slow cell listed");
        let fast_pos = table.find("fast").expect("fast cell listed");
        assert!(slow_pos < fast_pos, "worst cell must come first:\n{table}");
        assert!(table.contains("25%"), "{table}");
        assert!(table.contains("200%"), "{table}");
        // Cells on only one side are marked, not silently dropped.
        assert!(table.contains("new"), "{table}");
        assert!(table.contains("gone"), "{table}");
    }

    #[test]
    fn folded_timings_is_one_stack_line_per_cell_in_microseconds() {
        let report = SweepReport {
            schema: "nimbus-sweep-v1".to_string(),
            quick: true,
            threads: 1,
            cell_count: 2,
            total_wall_s: 1.75,
            total_events: 3000,
            aggregate_events_per_sec: 1714.0,
            cells: vec![
                SweepCellResult {
                    name: "cubic@48M-vs-alone-seed1".to_string(),
                    sim_s: 15.0,
                    wall_s: 0.5,
                    events: 1000,
                    events_per_sec: 2000.0,
                    sim_speedup: 30.0,
                    mean_throughput_mbps: 45.0,
                },
                SweepCellResult {
                    name: "nimbus@48M-step50@7-vs-cbr50-seed1".to_string(),
                    sim_s: 15.0,
                    wall_s: 1.25,
                    events: 2000,
                    events_per_sec: 1600.0,
                    sim_speedup: 12.0,
                    mean_throughput_mbps: 40.0,
                },
            ],
        };
        let folded = folded_timings(&report);
        assert_eq!(
            folded,
            "sweep;cubic@48M-vs-alone-seed1 500000\n\
             sweep;nimbus@48M-step50@7-vs-cbr50-seed1 1250000\n"
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = SweepReport {
            schema: "nimbus-sweep-v1".to_string(),
            quick: true,
            threads: 4,
            cell_count: 1,
            total_wall_s: 1.5,
            total_events: 1000,
            aggregate_events_per_sec: 666.7,
            cells: vec![SweepCellResult {
                name: "cubic@48M-vs-alone-seed1".to_string(),
                sim_s: 15.0,
                wall_s: 0.5,
                events: 1000,
                events_per_sec: 2000.0,
                sim_speedup: 30.0,
                mean_throughput_mbps: 45.0,
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].events, 1000);
        assert!(report_table(&back).contains("cubic@48M"));
    }
}
