//! Command-line entry point for regenerating the paper's tables and figures,
//! and for the parallel scenario-sweep benchmark.
//!
//! ```text
//! nimbus-experiments <experiment...|all|list> [--quick] [--out DIR]
//! nimbus-experiments sweep [--quick] [--threads N] [--out PATH] [--timings PATH] [--scheme SPEC]... [--ecn SPEC]
//! nimbus-experiments sweep-check --baseline PATH --current PATH [--threshold FRAC]
//! ```
//!
//! `--scheme` takes a [`SchemeSpec`](nimbus_experiments::SchemeSpec) string
//! — a bare CCA (`cubic`, `constant(24M)`) or a Nimbus wrapper composition
//! (`nimbus(competitive=reno,delay=copa,mu=learned)`) — and may be repeated
//! to replace the sweep's scheme axis.  `--ecn` takes an
//! [`EcnSpec`](nimbus_experiments::EcnSpec) string (`off`, `classic`,
//! `l4s`, `step(<duration>)`) and runs every cell with that marking
//! profile on the primary bottleneck.
//!
//! `sweep-check` fails (exit 1) when any cell's events/sec regressed more
//! than the threshold (default 0.3 = 30%) versus the baseline, unless the
//! `SWEEP_REGRESSION_OK` environment variable is set (for intentional
//! changes that re-baseline).

use nimbus_experiments::{
    run_experiment, EcnSpec, ExperimentResult, SchemeSpec, SweepConfig, ALL_EXPERIMENTS,
};
use std::path::PathBuf;

fn run_sweep_command(args: &[String]) -> ! {
    let mut cfg = SweepConfig {
        quick: args.iter().any(|a| a == "--quick"),
        ..SweepConfig::default()
    };
    // A flag present without its value operand is an error, not a silent no-op.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => cfg.threads = Some(n),
            _ => {
                eprintln!(
                    "invalid or missing --threads value: {}",
                    args.get(i + 1).map(String::as_str).unwrap_or("<none>")
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        match args.get(i + 1) {
            Some(out) => cfg.out = PathBuf::from(out),
            None => {
                eprintln!("--out requires a path");
                std::process::exit(2);
            }
        }
    }
    // Optional per-cell wall-time dump in flamegraph folded-stack format.
    let timings_path = match args.iter().position(|a| a == "--timings") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(PathBuf::from(p)),
            None => {
                eprintln!("--timings requires a path");
                std::process::exit(2);
            }
        },
        None => None,
    };
    // Repeated `--scheme SPEC` flags replace the matrix's scheme axis.
    let mut schemes: Vec<SchemeSpec> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--scheme" {
            match args.get(i + 1) {
                Some(text) => match text.parse::<SchemeSpec>() {
                    Ok(spec) => schemes.push(spec),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("--scheme requires a spec string, e.g. 'nimbus(competitive=reno)'");
                    std::process::exit(2);
                }
            }
        }
    }
    if !schemes.is_empty() {
        cfg.schemes = Some(schemes);
    }
    if let Some(i) = args.iter().position(|a| a == "--ecn") {
        match args.get(i + 1).map(|v| v.parse::<EcnSpec>()) {
            Some(Ok(ecn)) => cfg.ecn = Some(ecn),
            Some(Err(e)) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
            None => {
                eprintln!("--ecn requires a marking spec: off, classic, l4s, or step(<duration>)");
                std::process::exit(2);
            }
        }
    }
    match nimbus_experiments::run_sweep(&cfg) {
        Ok(report) => {
            println!("{}", nimbus_experiments::sweep::report_table(&report));
            println!("wrote {}", cfg.out.display());
            if let Some(path) = timings_path {
                let folded = nimbus_experiments::sweep::folded_timings(&report);
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("cannot create {}: {e}", parent.display());
                        std::process::exit(1);
                    }
                }
                match std::fs::write(&path, folded) {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run_sweep_check_command(args: &[String]) -> ! {
    let arg_value = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let baseline_path = PathBuf::from(
        arg_value("--baseline")
            .map(String::as_str)
            .unwrap_or("BENCH_sweep.json"),
    );
    let Some(current_path) = arg_value("--current").map(PathBuf::from) else {
        eprintln!("sweep-check requires --current PATH (a freshly written sweep report)");
        std::process::exit(2);
    };
    let threshold = match arg_value("--threshold") {
        Some(v) => {
            let t = v.parse::<f64>().unwrap_or(f64::NAN);
            // A fraction, not a percentage: `--threshold 30` would make the
            // gate silently unsatisfiable (ratio < 1 - 30), so reject it.
            if !(t > 0.0 && t < 1.0) {
                eprintln!("invalid --threshold {v}: expected a fraction in (0, 1), e.g. 0.3 = 30%");
                std::process::exit(2);
            }
            t
        }
        None => 0.3,
    };
    let read = |path: &PathBuf| {
        nimbus_experiments::sweep::read_report(path).unwrap_or_else(|e| {
            eprintln!("cannot read sweep report {}: {e}", path.display());
            std::process::exit(2);
        })
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);
    // Always show the full comparison, worst cell first: when a regression
    // does appear later, the trail starts in this CI log, not in the JSON.
    print!(
        "{}",
        nimbus_experiments::sweep::ratio_table(&baseline, &current)
    );
    let regressions = nimbus_experiments::sweep::perf_regressions(&baseline, &current, threshold);
    if regressions.is_empty() {
        println!(
            "sweep-check ok: no cell regressed more than {:.0}% vs {}",
            threshold * 100.0,
            baseline_path.display()
        );
        std::process::exit(0);
    }
    eprintln!(
        "sweep-check: {} cell(s) regressed more than {:.0}% vs {}:",
        regressions.len(),
        threshold * 100.0,
        baseline_path.display()
    );
    for r in &regressions {
        eprintln!("  {r}");
    }
    if std::env::var_os("SWEEP_REGRESSION_OK").is_some() {
        eprintln!("SWEEP_REGRESSION_OK set: accepting the regression (re-baseline intended)");
        std::process::exit(0);
    }
    eprintln!("set SWEEP_REGRESSION_OK=1 to accept an intentional change");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: nimbus-experiments <experiment...|all|list> [--quick] [--out DIR]");
        eprintln!(
            "       nimbus-experiments sweep [--quick] [--threads N] [--out PATH] [--timings PATH] [--scheme SPEC]... [--ecn SPEC]"
        );
        eprintln!(
            "       nimbus-experiments sweep-check --baseline PATH --current PATH [--threshold FRAC]"
        );
        eprintln!("scheme specs: bare CCAs (cubic, newreno, vegas, copa, bbr, vivace, compound,");
        eprintln!("  constant(<rate>)) or nimbus(competitive=cubic|reno, delay=basic|copa|vegas,");
        eprintln!("  mu=configured|learned, switch=auto|never)");
        eprintln!("ecn specs: off, classic, l4s, step(<duration>) e.g. step(5ms)");
        eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let name = args[0].clone();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(ExperimentResult::default_output_dir);

    if name == "sweep" {
        run_sweep_command(&args[1..]);
    }

    if name == "sweep-check" {
        run_sweep_check_command(&args[1..]);
    }

    if name == "list" {
        for e in ALL_EXPERIMENTS {
            println!("{e}");
        }
        return;
    }

    // Every leading non-flag argument is an experiment name, so one
    // invocation can regenerate a family: `l4s_pulse l4s_coexistence --quick`.
    let names: Vec<&str> = {
        let mut names = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {}
                "--out" => i += 1,
                a if a.starts_with("--") => {
                    eprintln!("unknown flag: {a}");
                    std::process::exit(2);
                }
                a => names.push(a),
            }
            i += 1;
        }
        names
    };
    let to_run: Vec<&str> = if names.contains(&"all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        names
    };

    let mut failed = false;
    for exp in to_run {
        let started = std::time::Instant::now();
        match run_experiment(exp, quick) {
            Some(result) => {
                println!("{}", result.to_table());
                match result.write_json(&out_dir) {
                    Ok(path) => println!("wrote {}", path.display()),
                    Err(e) => eprintln!("warning: could not write JSON for {exp}: {e}"),
                }
                if let Err(e) = result.write_csv(&out_dir) {
                    eprintln!("warning: could not write CSV for {exp}: {e}");
                }
                println!(
                    "({exp} finished in {:.1} s)\n",
                    started.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment: {exp}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
