//! # nimbus-experiments
//!
//! The experiment harness: one function per table/figure of the paper, each
//! building the corresponding scenario on the `nimbus-netsim` simulator,
//! running it, and returning (and printing) the same rows or series the paper
//! reports.
//!
//! Every experiment supports a `quick` flag that scales the run down (shorter
//! duration, fewer repetitions) so the whole suite — and the Criterion benches
//! wrapping it — stays tractable on a laptop; the full-size variants use the
//! paper's durations.
//!
//! Run experiments with the `nimbus-experiments` binary:
//!
//! ```text
//! cargo run -p nimbus-experiments --release -- fig01
//! cargo run -p nimbus-experiments --release -- all --quick
//! ```
//!
//! Results are printed as human-readable rows and written as JSON under
//! `target/experiments/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod output;
pub mod runner;
pub mod scheme;
pub mod sweep;
pub mod testkit;

pub use output::ExperimentResult;
pub use runner::{
    CrossFlowSpec, EcnSpec, FleetSpec, HopSpec, LinkScheduleSpec, PathSpec, ScenarioSpec,
    SingleFlowMetrics,
};
pub use scheme::{MuSpec, NimbusSpec, ParseSchemeError, SchemeSpec, SwitchSpec};
pub use sweep::{run_sweep, sweep_matrix, sweep_matrix_with, SweepConfig, SweepReport};
pub use testkit::{
    ecn_cells, estimator_cells, fleet_cells, legacy_single_bottleneck_cells, multihop_cells,
    paper_invariant_matrix, parallel_map, run_matrix, spec_combination_cells, Cell, CellOutcome,
    CrossTraffic, Invariants,
};

/// Names of every experiment the harness can regenerate, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig01",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "table1",
    "robustness",
    "cellular_estimators",
    "varying_mu",
    "varying_detector",
    "varying_step",
    "varying_estimator",
    "multihop_secondary",
    "multihop_moving",
    "multihop_midpath",
    "fleet_churn",
    "fleet_fct",
    "fleet_multiflow",
    "l4s_pulse",
    "l4s_mark_validation",
    "l4s_coexistence",
];

/// Run one experiment by name.  Returns the structured result.
pub fn run_experiment(name: &str, quick: bool) -> Option<ExperimentResult> {
    let result = match name {
        "fig01" => figures::intro::fig01(quick),
        "fig03" => figures::intro::fig03(quick),
        "fig04" => figures::intro::fig04(quick),
        "fig05" => figures::intro::fig05(quick),
        "fig06" => figures::intro::fig06(quick),
        "fig07" => figures::intro::fig07(),
        "fig08" => figures::eval::fig08(quick),
        "fig09" => figures::eval::fig09(quick),
        "fig10" => figures::eval::fig10(quick),
        "fig11" => figures::eval::fig11(quick),
        "fig12" => figures::eval::fig12(quick),
        "fig13" => figures::eval::fig13(quick),
        "fig14" => figures::robust::fig14(quick),
        "fig15" => figures::robust::fig15(quick),
        "fig16" => figures::multiflow::fig16(quick),
        "fig17" => figures::multiflow::fig17(quick),
        "fig18" => figures::internet::fig18(quick),
        "fig19" => figures::internet::fig19(quick),
        "fig20" => figures::internet::fig20(quick),
        "fig21" => figures::eval::fig21(quick),
        "fig22" => figures::robust::fig22(quick),
        "fig23" => figures::robust::fig23(quick),
        "fig24" => figures::robust::fig24(quick),
        "fig25" => figures::robust::fig25(quick),
        "fig26" => figures::robust::fig26(quick),
        "table1" => figures::robust::table1(quick),
        "robustness" => figures::robust::robustness_sweep(quick),
        "cellular_estimators" => figures::robust::cellular_estimators(quick),
        "varying_mu" => figures::varying::varying_mu(quick),
        "varying_detector" => figures::varying::varying_detector(quick),
        "varying_step" => figures::varying::varying_step(quick),
        "varying_estimator" => figures::varying::varying_estimator(quick),
        "multihop_secondary" => figures::multihop::multihop_secondary(quick),
        "multihop_moving" => figures::multihop::multihop_moving(quick),
        "multihop_midpath" => figures::multihop::multihop_midpath(quick),
        "fleet_churn" => figures::fleet::fleet_churn(quick),
        "fleet_fct" => figures::fleet::fleet_fct(quick),
        "fleet_multiflow" => figures::fleet::fleet_multiflow(quick),
        "l4s_pulse" => figures::l4s::l4s_pulse(quick),
        "l4s_mark_validation" => figures::l4s::l4s_mark_validation(quick),
        "l4s_coexistence" => figures::l4s::l4s_coexistence(quick),
        _ => return None,
    };
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_is_dispatchable() {
        // Only check dispatch (not execution) for the expensive ones: an
        // unknown name must return None, known names are all in the list.
        assert!(run_experiment("nonexistent", true).is_none());
        assert_eq!(ALL_EXPERIMENTS.len(), 41);
    }

    #[test]
    fn quick_fig07_runs() {
        // fig07 is purely analytic (the pulse waveform) and cheap.
        let r = run_experiment("fig07", true).unwrap();
        assert_eq!(r.name, "fig07");
        assert!(!r.series.is_empty());
    }
}
