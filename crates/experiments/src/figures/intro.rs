//! Figures 1, 3–7: the motivating example and the detector's building blocks.

use super::{fig1_cross_traffic, poisson_cross_flow};
use crate::output::ExperimentResult;
use crate::runner::{run_scheme_vs_cross, ScenarioSpec};
use crate::scheme::SchemeSpec;
use nimbus_core::{CrossTrafficEstimator, ElasticityConfig, ElasticityDetector};
use nimbus_dsp::{AsymmetricPulse, PulseGenerator, PulseShape, Spectrum};
use nimbus_transport::CcKind;

/// Fig. 1: Cubic vs a delay-controlling scheme vs Nimbus on a 48 Mbit/s link
/// with 60 s of elastic then 60 s of inelastic cross traffic.
pub fn fig01(quick: bool) -> ExperimentResult {
    let scale = if quick { 0.25 } else { 1.0 };
    let mut result = ExperimentResult::new(
        "fig01",
        "Cubic vs delay-control vs Nimbus under elastic then inelastic cross traffic (48 Mbit/s)",
        quick,
    );
    let duration = 180.0 * scale;
    for (key, scheme) in [
        ("cubic", SchemeSpec::cubic()),
        ("delay_control", SchemeSpec::nimbus_delay_only()),
        ("nimbus", SchemeSpec::nimbus()),
    ] {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 7,
            ..ScenarioSpec::fig1_48mbps(duration)
        };
        let cross = fig1_cross_traffic(scale, 24e6, 11);
        let out = run_scheme_vs_cross(&spec, scheme, None, cross, 2.0);
        let m = &out.flows[0];
        // The elastic phase is 30–90 (scaled), the inelastic phase 90–150.
        let elastic_window = (35.0 * scale, 88.0 * scale);
        let inelastic_window = (95.0 * scale, 148.0 * scale);
        let tput = |w: (f64, f64)| {
            m.throughput_series
                .iter()
                .filter(|(t, _)| *t >= w.0 && *t <= w.1)
                .map(|(_, v)| v)
                .sum::<f64>()
                / m.throughput_series
                    .iter()
                    .filter(|(t, _)| *t >= w.0 && *t <= w.1)
                    .count()
                    .max(1) as f64
        };
        let qd = |w: (f64, f64)| {
            let vals: Vec<f64> = m
                .queue_delay_series
                .iter()
                .filter(|(t, _)| *t >= w.0 && *t <= w.1)
                .map(|(_, v)| *v)
                .collect();
            nimbus_dsp::mean(&vals)
        };
        result.row(
            &format!("{key}_elastic_throughput_mbps"),
            tput(elastic_window),
        );
        result.row(
            &format!("{key}_inelastic_throughput_mbps"),
            tput(inelastic_window),
        );
        result.row(&format!("{key}_elastic_queue_delay_ms"), qd(elastic_window));
        result.row(
            &format!("{key}_inelastic_queue_delay_ms"),
            qd(inelastic_window),
        );
        result.add_series(
            &format!("{key}_throughput_mbps"),
            m.throughput_series.clone(),
        );
        result.add_series(
            &format!("{key}_queue_delay_ms"),
            m.queue_delay_series.clone(),
        );
        if scheme == SchemeSpec::nimbus() {
            result.row("nimbus_delay_mode_fraction", m.delay_mode_fraction);
        }
    }
    result
}

/// Fig. 3: the self-inflicted queueing delay of a Cubic flow looks the same
/// whether the cross traffic is elastic or inelastic, so instantaneous delay
/// measurements cannot reveal elasticity.
pub fn fig03(quick: bool) -> ExperimentResult {
    let scale = if quick { 0.25 } else { 1.0 };
    let mut result = ExperimentResult::new(
        "fig03",
        "Self-inflicted delay does not reveal elasticity (Cubic flow, Fig. 1a setup)",
        quick,
    );
    let duration = 180.0 * scale;
    let spec = ScenarioSpec {
        duration_s: duration,
        seed: 3,
        ..ScenarioSpec::fig1_48mbps(duration)
    };
    let cross = fig1_cross_traffic(scale, 24e6, 13);
    let out = run_scheme_vs_cross(&spec, SchemeSpec::cubic(), None, cross, 2.0);
    let m = &out.flows[0];
    // Self-inflicted delay ≈ total queueing delay × our share of throughput.
    let total_qd: Vec<(f64, f64)> = out
        .recorder
        .queue_bytes
        .t
        .iter()
        .zip(out.recorder.queue_bytes.v.iter())
        .map(|(t, bytes)| (*t, bytes * 8.0 / 48e6 * 1000.0))
        .collect();
    let elastic_window = (35.0 * scale, 88.0 * scale);
    let inelastic_window = (95.0 * scale, 148.0 * scale);
    let share = |w: (f64, f64)| {
        let own: Vec<f64> = m
            .throughput_series
            .iter()
            .filter(|(t, _)| *t >= w.0 && *t <= w.1)
            .map(|(_, v)| *v)
            .collect();
        nimbus_dsp::mean(&own) / 48.0
    };
    let qd_in = |w: (f64, f64)| {
        let vals: Vec<f64> = total_qd
            .iter()
            .filter(|(t, _)| *t >= w.0 && *t <= w.1)
            .map(|(_, v)| *v)
            .collect();
        nimbus_dsp::mean(&vals)
    };
    let self_elastic = share(elastic_window) * qd_in(elastic_window);
    let self_inelastic = share(inelastic_window) * qd_in(inelastic_window);
    result.row("total_delay_elastic_ms", qd_in(elastic_window));
    result.row("total_delay_inelastic_ms", qd_in(inelastic_window));
    result.row("self_inflicted_elastic_ms", self_elastic);
    result.row("self_inflicted_inelastic_ms", self_inelastic);
    // The paper's point: the two self-inflicted values are nearly identical.
    result.row(
        "self_inflicted_ratio",
        if self_inelastic > 0.0 {
            self_elastic / self_inelastic
        } else {
            0.0
        },
    );
    result.add_series("total_queue_delay_ms", total_qd);
    result.add_series("own_throughput_mbps", m.throughput_series.clone());
    result
}

/// Run a Nimbus pulser against a single kind of cross traffic and return the
/// ẑ(t) series plus the detector's η — shared by Figs. 4, 5 and 26.
fn z_series_against(
    elastic: bool,
    duration_s: f64,
    pulse_freq_hz: f64,
    seed: u64,
) -> (Vec<(f64, f64)>, f64) {
    let spec = ScenarioSpec {
        duration_s,
        seed,
        ..ScenarioSpec::default_96mbps(duration_s)
    };
    let mut scheme_cfg = SchemeSpec::nimbus()
        .nimbus_config(spec.link_rate_bps, seed)
        .unwrap();
    scheme_cfg.elasticity.pulse_freq_hz = pulse_freq_hz;
    let endpoint = Box::new(nimbus_sim::nimbus_flow(scheme_cfg, "nimbus"));
    let mut net = spec.build_network();
    let h = net.add_flow(
        nimbus_netsim::FlowConfig::primary("nimbus", nimbus_netsim::Time::from_secs_f64(0.05)),
        endpoint,
    );
    let cross = if elastic {
        super::elastic_cross_flow("cubic", CcKind::Cubic, 0.05, 0.0, None)
    } else {
        poisson_cross_flow("poisson", 48e6, 0.05, seed + 1, 0.0, None)
    };
    net.add_flow(cross.0, cross.1);
    let out = crate::runner::run_and_collect(net, &[(h, SchemeSpec::nimbus())], 2.0);
    let endpoint = &out.flows[0];
    let eta = endpoint
        .eta_series
        .last()
        .map(|(_, e)| *e)
        .unwrap_or(f64::NAN);
    // Reconstruct ẑ(t) from the recorder's ground-truth cross rate for the
    // series plot (the controller's internal estimate mirrors it).
    let z: Vec<(f64, f64)> = out
        .recorder
        .cross_rate_mbps
        .t
        .iter()
        .zip(out.recorder.cross_rate_mbps.v.iter())
        .map(|(t, v)| (*t, *v))
        .collect();
    (z, eta)
}

/// Fig. 4: the cross traffic's reaction to pulses — elastic traffic reacts,
/// inelastic traffic does not.
pub fn fig04(quick: bool) -> ExperimentResult {
    let duration = if quick { 20.0 } else { 40.0 };
    let mut result = ExperimentResult::new(
        "fig04",
        "Cross-traffic reaction to rate pulses (elastic reacts, inelastic does not)",
        quick,
    );
    let (z_elastic, eta_e) = z_series_against(true, duration, 5.0, 21);
    let (z_inelastic, eta_i) = z_series_against(false, duration, 5.0, 22);
    // Quantify the reaction as the standard deviation of z over the last
    // stretch of the run (the pulse-induced oscillation).
    let tail_std = |z: &[(f64, f64)]| {
        let vals: Vec<f64> = z
            .iter()
            .filter(|(t, _)| *t > duration * 0.5)
            .map(|(_, v)| *v)
            .collect();
        nimbus_dsp::stddev(&vals)
    };
    result.row("elastic_z_stddev_mbps", tail_std(&z_elastic));
    result.row("inelastic_z_stddev_mbps", tail_std(&z_inelastic));
    result.row("elastic_eta", eta_e);
    result.row("inelastic_eta", eta_i);
    result.add_series("z_elastic_mbps", z_elastic);
    result.add_series("z_inelastic_mbps", z_inelastic);
    result
}

/// Fig. 5: FFT of the cross-traffic rate — only elastic traffic shows a peak
/// at the pulse frequency.
pub fn fig05(quick: bool) -> ExperimentResult {
    let duration = if quick { 20.0 } else { 40.0 };
    let mut result = ExperimentResult::new(
        "fig05",
        "Cross-traffic FFT: elastic traffic peaks at f_p, inelastic does not",
        quick,
    );
    for (key, elastic, seed) in [("elastic", true, 31), ("inelastic", false, 32)] {
        let (z, eta) = z_series_against(elastic, duration, 5.0, seed);
        let tail: Vec<f64> = z
            .iter()
            .filter(|(t, _)| *t > duration - 5.0)
            .map(|(_, v)| *v)
            .collect();
        if tail.len() > 16 {
            // Recorder samples every 100 ms → 10 Hz sample rate.
            let spectrum = Spectrum::of_signal(&tail, 10.0, true);
            let series: Vec<(f64, f64)> = (0..spectrum.magnitudes.len())
                .map(|b| (spectrum.frequency_of_bin(b), spectrum.magnitudes[b]))
                .collect();
            result.add_series(&format!("fft_{key}"), series);
            result.row(&format!("{key}_peak_at_5hz"), spectrum.peak_near(5.0, 0.3));
        }
        result.row(&format!("{key}_eta"), eta);
    }
    result
}

/// Fig. 6: CDF of the elasticity metric η as the elastic fraction of the
/// cross traffic varies from 0% to 100%.
pub fn fig06(quick: bool) -> ExperimentResult {
    let duration = if quick { 25.0 } else { 60.0 };
    let mut result = ExperimentResult::new(
        "fig06",
        "CDF of elasticity metric vs elastic fraction of cross traffic",
        quick,
    );
    let total_cross = 48e6;
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    for &frac in &fractions {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 41 + (frac * 4.0) as u64,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let mut cross = Vec::new();
        if frac > 0.0 {
            // The elastic share: a backlogged Cubic flow (it will take what it
            // can; with the inelastic share fixed this approximates the mix).
            cross.push(super::elastic_cross_flow(
                "cubic",
                CcKind::Cubic,
                0.05,
                0.0,
                None,
            ));
        }
        if frac < 1.0 {
            cross.push(poisson_cross_flow(
                "poisson",
                total_cross * (1.0 - frac),
                0.05,
                spec.seed + 1,
                0.0,
                None,
            ));
        }
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 2.0);
        let etas: Vec<f64> = out.flows[0]
            .eta_series
            .iter()
            .filter(|(t, _)| *t > 6.0)
            .map(|(_, e)| *e)
            .collect();
        let label = format!("{:.0}%", frac * 100.0);
        let cdf = nimbus_dsp::Cdf::from_samples(&etas);
        result.add_series(&format!("eta_cdf_{label}"), cdf.curve(50));
        result.row(&format!("median_eta_{label}"), cdf.median());
    }
    result
}

/// Fig. 7: the asymmetric sinusoidal pulse waveform (analytic).
pub fn fig07() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig07",
        "Asymmetric sinusoidal pulse: +µ/4 half-sine for T/4, −µ/12 half-sine for 3T/4",
        false,
    );
    let mu = 96e6;
    let gen = PulseGenerator::asymmetric(5.0, mu / 4.0);
    let series: Vec<(f64, f64)> = (0..400)
        .map(|i| {
            let t = i as f64 * 0.001;
            (t, gen.offset_at(t) / 1e6)
        })
        .collect();
    result.add_series("pulse_offset_mbps", series);
    result.row("peak_mbps", mu / 4.0 / 1e6);
    result.row("trough_mbps", -(mu / 12.0) / 1e6);
    result.row(
        "mean_offset_mbps",
        AsymmetricPulse.mean_offset(5.0, mu / 4.0) / 1e6,
    );
    result.row("burst_fraction_of_mu_T", gen.burst_bits() / (mu * 0.2));
    result
}

/// Sanity helper used by integration tests: η computed offline on a synthetic
/// reacting/non-reacting ẑ series (keeps the detector usable without a full
/// simulation).
pub fn offline_eta(reacting: bool) -> f64 {
    let cfg = ElasticityConfig::default();
    let det = ElasticityDetector::new(cfg.clone());
    let est = CrossTrafficEstimator::with_known_mu(96e6, 10.0);
    let gen = PulseGenerator::asymmetric(cfg.pulse_freq_hz, 24e6);
    let n = (6.0 / cfg.sample_interval_s) as usize;
    let series: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 * cfg.sample_interval_s;
            let reaction = if reacting {
                -0.3 * gen.offset_at(t - 0.05)
            } else {
                0.0
            };
            let s = 40e6 + gen.offset_at(t);
            let z = 48e6 + reaction;
            let r = 96e6 * s / (s + z);
            est.estimate(s, r).unwrap_or(0.0)
        })
        .collect();
    det.eta(&series).map(|(eta, _, _)| eta).unwrap_or(0.0)
}
