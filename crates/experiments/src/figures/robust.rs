//! Figures 14, 15, 22–26, Table 1 and the buffer/RTT/AQM robustness sweep (§8.2, Appendices C–F).

use super::{cbr_cross_flow, elastic_cross_flow, poisson_cross_flow};
use crate::output::ExperimentResult;
use crate::runner::{run_and_collect, run_scheme_vs_cross, ScenarioSpec};
use crate::scheme::SchemeSpec;
use nimbus_core::Mode;
use nimbus_netsim::{FlowConfig, FlowEndpoint, Time};
use nimbus_transport::CcKind;

/// Classification accuracy of a Nimbus run given the ground truth ("the cross
/// traffic is elastic during the whole steady state" or not): fraction of
/// post-warmup detector verdicts that agree.
fn nimbus_accuracy(
    metrics: &crate::runner::SingleFlowMetrics,
    truth_elastic: bool,
    warmup_s: f64,
) -> f64 {
    let verdicts: Vec<bool> = metrics
        .eta_series
        .iter()
        .filter(|(t, _)| *t >= warmup_s)
        .map(|(_, eta)| *eta >= 2.0)
        .collect();
    if verdicts.is_empty() {
        return 0.0;
    }
    verdicts.iter().filter(|&&v| v == truth_elastic).count() as f64 / verdicts.len() as f64
}

/// Copa's "accuracy": fraction of time it is in the correct mode
/// (competitive when the competitor is buffer-filling, default otherwise).
fn copa_accuracy(
    out: &crate::runner::RunOutput,
    handle_idx: usize,
    truth_elastic: bool,
    warmup_s: f64,
    duration_s: f64,
) -> f64 {
    // Reconstruct Copa's mode over time from its mode log via the endpoint
    // downcast path used for Nimbus; Copa is embedded in a Sender, so fetch
    // the controller by name through the recorder label (the mode log is not
    // exposed); instead, approximate with queueing delay: Copa is effectively
    // in competitive mode when the standing queue stays high.  To stay honest
    // we instead measure the *outcome* the paper measures: the fraction of
    // time the queue behaviour matches the correct mode.
    let m = &out.flows[handle_idx];
    let samples: Vec<bool> = m
        .queue_delay_series
        .iter()
        .filter(|(t, _)| *t >= warmup_s && *t <= duration_s)
        .map(|(_, qd)| *qd > 25.0)
        .collect();
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .iter()
        .filter(|&&high_queue| high_queue == truth_elastic)
        .count() as f64
        / samples.len() as f64
}

/// Fig. 14: classification accuracy, Nimbus vs Copa.
/// Left: inelastic cross traffic occupying 30–90% of the link.
/// Right: one elastic NewReno competitor with RTT 1–4× the flow's RTT.
pub fn fig14(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "fig14",
        "Classification accuracy vs Copa: inelastic share sweep and cross-RTT sweep",
        quick,
    );
    let shares: Vec<f64> = if quick {
        vec![0.3, 0.6, 0.9]
    } else {
        vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    let mut nimbus_left = Vec::new();
    let mut copa_left = Vec::new();
    for &share in &shares {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 14,
            ..ScenarioSpec::default_96mbps(duration)
        };
        // Nimbus against CBR at `share` of the link.
        let cross = vec![cbr_cross_flow("cbr", share * 96e6, 0.05, 0.0, None)];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 6.0);
        let acc = nimbus_accuracy(&out.flows[0], false, 6.0);
        result.row(&format!("nimbus_accuracy_share{:.0}", share * 100.0), acc);
        nimbus_left.push((share, acc));

        // Copa against the same traffic.
        let cross = vec![cbr_cross_flow("cbr", share * 96e6, 0.05, 0.0, None)];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::copa(), None, cross, 6.0);
        let acc = copa_accuracy(&out, 0, false, 6.0, duration);
        result.row(&format!("copa_accuracy_share{:.0}", share * 100.0), acc);
        copa_left.push((share, acc));
    }
    result.add_series("nimbus_accuracy_vs_share", nimbus_left);
    result.add_series("copa_accuracy_vs_share", copa_left);

    let ratios: Vec<f64> = if quick {
        vec![1.0, 2.0, 4.0]
    } else {
        vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    };
    let mut nimbus_right = Vec::new();
    let mut copa_right = Vec::new();
    for &ratio in &ratios {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 15,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let cross = vec![elastic_cross_flow(
            "newreno",
            CcKind::NewReno,
            0.05 * ratio,
            0.0,
            None,
        )];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 8.0);
        let acc = nimbus_accuracy(&out.flows[0], true, 8.0);
        result.row(&format!("nimbus_accuracy_rttx{ratio}"), acc);
        nimbus_right.push((ratio, acc));

        let cross = vec![elastic_cross_flow(
            "newreno",
            CcKind::NewReno,
            0.05 * ratio,
            0.0,
            None,
        )];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::copa(), None, cross, 8.0);
        let acc = copa_accuracy(&out, 0, true, 8.0, duration);
        result.row(&format!("copa_accuracy_rttx{ratio}"), acc);
        copa_right.push((ratio, acc));
    }
    result.add_series("nimbus_accuracy_vs_rtt_ratio", nimbus_right);
    result.add_series("copa_accuracy_vs_rtt_ratio", copa_right);
    result
}

/// Fig. 15: detection accuracy vs the cross traffic's RTT (0.2×–4× the flow's)
/// for purely elastic, purely inelastic and mixed cross traffic.
pub fn fig15(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 120.0 };
    let mut result = ExperimentResult::new(
        "fig15",
        "Detection accuracy vs cross-traffic RTT (elastic / mix / inelastic)",
        quick,
    );
    let ratios: Vec<f64> = if quick {
        vec![0.2, 1.0, 4.0]
    } else {
        vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 4.0]
    };
    for &ratio in &ratios {
        let rtt = 0.05 * ratio;
        for (kind, truth_elastic) in [("elastic", true), ("mix", true), ("inelastic", false)] {
            let spec = ScenarioSpec {
                duration_s: duration,
                seed: 150 + (ratio * 10.0) as u64,
                ..ScenarioSpec::default_96mbps(duration)
            };
            let mut cross: Vec<(FlowConfig, Box<dyn FlowEndpoint>)> = Vec::new();
            match kind {
                "elastic" => {
                    cross.push(elastic_cross_flow("reno", CcKind::NewReno, rtt, 0.0, None))
                }
                "inelastic" => cross.push(poisson_cross_flow(
                    "poisson", 48e6, rtt, spec.seed, 0.0, None,
                )),
                _ => {
                    cross.push(elastic_cross_flow("reno", CcKind::NewReno, rtt, 0.0, None));
                    cross.push(poisson_cross_flow(
                        "poisson", 24e6, rtt, spec.seed, 0.0, None,
                    ));
                }
            }
            let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 8.0);
            let acc = nimbus_accuracy(&out.flows[0], truth_elastic, 8.0);
            result.row(&format!("{kind}_accuracy_rttx{ratio}"), acc);
        }
    }
    result
}

/// Fig. 22 (Appendix C): Nimbus and Cubic each competing against one BBR flow
/// across buffer sizes from 0.5 to 4 BDP.
pub fn fig22(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 120.0 };
    let mut result = ExperimentResult::new(
        "fig22",
        "Throughput against one BBR flow as the buffer varies (Nimbus vs Cubic)",
        quick,
    );
    let bdp_s = 0.05; // one BDP of buffering = 50 ms at the link rate
    let buffers: Vec<f64> = if quick {
        vec![0.5, 2.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0]
    };
    for &bdp in &buffers {
        for scheme in [SchemeSpec::nimbus(), SchemeSpec::cubic()] {
            let spec = ScenarioSpec {
                buffer_s: bdp * bdp_s,
                duration_s: duration,
                seed: 22,
                ..ScenarioSpec::default_96mbps(duration)
            };
            let cross = vec![elastic_cross_flow("bbr", CcKind::Bbr, 0.05, 0.0, None)];
            let out = run_scheme_vs_cross(&spec, scheme, None, cross, 6.0);
            result.row(
                &format!("{}_throughput_mbps_buffer{bdp}bdp", scheme.label()),
                out.flows[0].mean_throughput_mbps,
            );
        }
    }
    result
}

/// Fig. 23 (Appendix D.1): Copa vs Nimbus dynamics against CBR cross traffic
/// at 25% and 83% of the link.
pub fn fig23(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 60.0 };
    let mut result = ExperimentResult::new(
        "fig23",
        "Copa vs Nimbus against CBR cross traffic at 24 and 80 Mbit/s",
        quick,
    );
    for &(rate, tag) in &[(24e6, "24M"), (80e6, "80M")] {
        for scheme in [SchemeSpec::copa(), SchemeSpec::nimbus()] {
            let spec = ScenarioSpec {
                duration_s: duration,
                seed: 23,
                ..ScenarioSpec::default_96mbps(duration)
            };
            let cross = vec![cbr_cross_flow("cbr", rate, 0.05, 0.0, None)];
            let out = run_scheme_vs_cross(&spec, scheme, None, cross, 6.0);
            let m = &out.flows[0];
            result.row(
                &format!("{}_{tag}_throughput_mbps", m.label),
                m.mean_throughput_mbps,
            );
            result.row(
                &format!("{}_{tag}_queue_delay_ms", m.label),
                m.mean_queue_delay_ms,
            );
            result.add_series(
                &format!("{}_{tag}_queue_delay_series", m.label),
                m.queue_delay_series.clone(),
            );
        }
    }
    result
}

/// Fig. 24 (Appendix D.2): Copa vs Nimbus against a NewReno flow with the
/// same or 4× the RTT.
pub fn fig24(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 60.0 };
    let mut result = ExperimentResult::new(
        "fig24",
        "Copa vs Nimbus against elastic NewReno cross traffic at 1x and 4x RTT",
        quick,
    );
    for &(ratio, tag) in &[(1.0, "1x"), (4.0, "4x")] {
        for scheme in [SchemeSpec::copa(), SchemeSpec::nimbus()] {
            let spec = ScenarioSpec {
                duration_s: duration,
                seed: 24,
                ..ScenarioSpec::default_96mbps(duration)
            };
            let cross = vec![elastic_cross_flow(
                "newreno",
                CcKind::NewReno,
                0.05 * ratio,
                0.0,
                None,
            )];
            let out = run_scheme_vs_cross(&spec, scheme, None, cross, 6.0);
            let m = &out.flows[0];
            result.row(
                &format!("{}_{tag}_throughput_mbps", m.label),
                m.mean_throughput_mbps,
            );
            result.add_series(
                &format!("{}_{tag}_throughput_series", m.label),
                m.throughput_series.clone(),
            );
        }
    }
    result
}

/// Fig. 25 (Appendix E): accuracy heat map over pulse size × Nimbus's link
/// share × link rate.
pub fn fig25(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "fig25",
        "Accuracy vs pulse size, link share and link rate (mixed cross traffic)",
        quick,
    );
    let pulse_sizes: Vec<f64> = if quick {
        vec![0.125, 0.25]
    } else {
        vec![0.0625, 0.125, 0.25, 0.5]
    };
    let shares: Vec<f64> = if quick {
        vec![0.25, 0.5]
    } else {
        vec![0.125, 0.25, 0.5, 0.75]
    };
    let rates: Vec<f64> = if quick { vec![96e6] } else { vec![96e6, 192e6] };
    for &rate in &rates {
        for &pulse in &pulse_sizes {
            for &share in &shares {
                let spec = ScenarioSpec {
                    link_rate_bps: rate,
                    duration_s: duration,
                    seed: 25,
                    ..ScenarioSpec::default_96mbps(duration)
                };
                // Mixed cross traffic occupying (1 − share) of the link:
                // half elastic (one Reno flow) and half Poisson.
                let inelastic_rate = (1.0 - share) * rate * 0.5;
                let cross = vec![
                    elastic_cross_flow("reno", CcKind::NewReno, 0.05, 0.0, None),
                    poisson_cross_flow("poisson", inelastic_rate, 0.05, 251, 0.0, None),
                ];
                let mut net = spec.build_network();
                let cfg = SchemeSpec::nimbus()
                    .nimbus_config(rate, spec.seed)
                    .unwrap()
                    .with_pulse_amplitude(pulse);
                let h = net.add_flow(
                    FlowConfig::primary("nimbus", Time::from_secs_f64(spec.prop_rtt_s)),
                    Box::new(nimbus_sim::nimbus_flow(cfg, "nimbus")),
                );
                for (fc, ep) in cross {
                    net.add_flow(fc, ep);
                }
                let out = run_and_collect(net, &[(h, SchemeSpec::nimbus())], 8.0);
                let acc = nimbus_accuracy(&out.flows[0], true, 8.0);
                result.row(
                    &format!(
                        "accuracy_rate{}M_pulse{}_share{}",
                        (rate / 1e6) as u32,
                        pulse,
                        share
                    ),
                    acc,
                );
            }
        }
    }
    result
}

/// Fig. 26 (Appendix F): detecting the rate-based PCC-Vivace by lowering the
/// pulse frequency from 5 Hz to 2 Hz.
pub fn fig26(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "fig26",
        "Detecting PCC-Vivace: elasticity CDF at 5 Hz vs 2 Hz pulses",
        quick,
    );
    for &(freq, tag) in &[(5.0, "5hz"), (2.0, "2hz")] {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 26,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let mut cfg = SchemeSpec::nimbus()
            .nimbus_config(spec.link_rate_bps, spec.seed)
            .unwrap();
        cfg.elasticity.pulse_freq_hz = freq;
        let mut net = spec.build_network();
        let h = net.add_flow(
            FlowConfig::primary("nimbus", Time::from_secs_f64(spec.prop_rtt_s)),
            Box::new(nimbus_sim::nimbus_flow(cfg, "nimbus")),
        );
        let cross = elastic_cross_flow("vivace", CcKind::Vivace, 0.05, 0.0, None);
        net.add_flow(cross.0, cross.1);
        let out = run_and_collect(net, &[(h, SchemeSpec::nimbus())], 8.0);
        let etas: Vec<f64> = out.flows[0]
            .eta_series
            .iter()
            .filter(|(t, _)| *t > 8.0)
            .map(|(_, e)| *e)
            .collect();
        let cdf = nimbus_dsp::Cdf::from_samples(&etas);
        result.row(&format!("median_eta_{tag}"), cdf.median());
        result.row(
            &format!("fraction_classified_elastic_{tag}"),
            etas.iter().filter(|&&e| e >= 2.0).count() as f64 / etas.len().max(1) as f64,
        );
        result.add_series(&format!("eta_cdf_{tag}"), cdf.curve(50));
    }
    result
}

/// Table 1: the detector's classification of each cross-traffic type.
pub fn table1(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 60.0 };
    let mut result = ExperimentResult::new(
        "table1",
        "Classification of cross-traffic types by the elasticity detector",
        quick,
    );
    type CrossBuilder = Box<dyn Fn(u64) -> (FlowConfig, Box<dyn FlowEndpoint>)>;
    let cases: Vec<(&str, CrossBuilder, bool)> = vec![
        (
            "cubic",
            Box::new(|_s| elastic_cross_flow("cubic", CcKind::Cubic, 0.05, 0.0, None)),
            true,
        ),
        (
            "reno",
            Box::new(|_s| elastic_cross_flow("reno", CcKind::NewReno, 0.05, 0.0, None)),
            true,
        ),
        (
            "copa",
            Box::new(|_s| elastic_cross_flow("copa", CcKind::Copa, 0.05, 0.0, None)),
            true,
        ),
        (
            "vegas",
            Box::new(|_s| elastic_cross_flow("vegas", CcKind::Vegas, 0.05, 0.0, None)),
            true,
        ),
        (
            "bbr",
            Box::new(|_s| elastic_cross_flow("bbr", CcKind::Bbr, 0.05, 0.0, None)),
            true,
        ),
        (
            "pcc_vivace",
            Box::new(|_s| elastic_cross_flow("vivace", CcKind::Vivace, 0.05, 0.0, None)),
            false,
        ),
        (
            "const_stream",
            Box::new(|_s| cbr_cross_flow("cbr", 48e6, 0.05, 0.0, None)),
            false,
        ),
        (
            "app_limited",
            Box::new(|s| poisson_cross_flow("poisson", 30e6, 0.05, s, 0.0, None)),
            false,
        ),
    ];
    for (name, build, expected_elastic) in cases {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 100,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let cross = vec![build(spec.seed + 1)];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 8.0);
        let m = &out.flows[0];
        let elastic_frac = m
            .eta_series
            .iter()
            .filter(|(t, _)| *t > 8.0)
            .filter(|(_, e)| *e >= 2.0)
            .count() as f64
            / m.eta_series.iter().filter(|(t, _)| *t > 8.0).count().max(1) as f64;
        result.row(&format!("{name}_classified_elastic_fraction"), elastic_frac);
        result.row(
            &format!("{name}_expected_elastic"),
            if expected_elastic { 1.0 } else { 0.0 },
        );
    }
    result
}

/// §8.2 robustness sweep: buffer sizes, propagation RTTs and the PIE AQM.
pub fn robustness_sweep(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "robustness",
        "Detection accuracy across buffer sizes, RTTs and AQM (elastic / mixed / inelastic)",
        quick,
    );
    let buffers_bdp: Vec<f64> = if quick {
        vec![0.5, 2.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0, 4.0]
    };
    let rtts_ms: Vec<f64> = if quick {
        vec![50.0]
    } else {
        vec![25.0, 50.0, 75.0]
    };
    for &rtt_ms in &rtts_ms {
        for &buf in &buffers_bdp {
            for (kind, truth_elastic) in [("elastic", true), ("inelastic", false)] {
                let spec = ScenarioSpec {
                    buffer_s: buf * rtt_ms / 1000.0,
                    prop_rtt_s: rtt_ms / 1000.0,
                    duration_s: duration,
                    seed: 82,
                    ..ScenarioSpec::default_96mbps(duration)
                };
                let cross = if truth_elastic {
                    vec![elastic_cross_flow(
                        "reno",
                        CcKind::NewReno,
                        rtt_ms / 1000.0,
                        0.0,
                        None,
                    )]
                } else {
                    vec![poisson_cross_flow(
                        "poisson",
                        48e6,
                        rtt_ms / 1000.0,
                        83,
                        0.0,
                        None,
                    )]
                };
                let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 8.0);
                let acc = nimbus_accuracy(&out.flows[0], truth_elastic, 8.0);
                result.row(&format!("accuracy_{kind}_rtt{rtt_ms}ms_buf{buf}bdp"), acc);
            }
        }
    }
    // PIE AQM cases.
    for &(target, tag) in &[(0.0125, "pie12.5ms"), (0.05, "pie50ms")] {
        let spec = ScenarioSpec {
            pie_target_s: Some(target),
            duration_s: duration,
            seed: 84,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let cross = vec![elastic_cross_flow("reno", CcKind::NewReno, 0.05, 0.0, None)];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 8.0);
        result.row(
            &format!("accuracy_elastic_{tag}"),
            nimbus_accuracy(&out.flows[0], true, 8.0),
        );
        result.row(
            &format!("throughput_mbps_{tag}"),
            out.flows[0].mean_throughput_mbps,
        );
    }
    let _ = Mode::Delay; // referenced for documentation purposes
    result
}

/// The µ-estimation strategy axis on the cellular deep-fade trace (the
/// ROADMAP regime where the hardwired max filter deadlocks at the pacing
/// floor): plain learned µ, the probing estimator, and the BBR / Cubic
/// references.  The number that matters is throughput through the fades —
/// the max filter reads 0.12 Mbit/s while the probe epochs recover double
/// digits.
pub fn cellular_estimators(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "cellular_estimators",
        "µ-estimation strategies on the cellular deep-fade trace",
        quick,
    );
    for (spec_text, tag) in [
        ("nimbus(mu=learned)", "maxfilt"),
        ("nimbus(mu=learned(probe=1))", "probing"),
        ("nimbus(mu=learned(probe=1,gain=3))", "probing_g3"),
        ("bbr", "bbr"),
        ("cubic", "cubic"),
    ] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            schedule: crate::runner::LinkScheduleSpec::NamedTrace {
                name: "cellular".to_string(),
            },
            duration_s: duration,
            seed: 44,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let scheme: SchemeSpec = spec_text.parse().expect("estimator spec parses");
        let out = run_scheme_vs_cross(&spec, scheme, None, Vec::new(), 10.0);
        let m = &out.flows[0];
        result.row(&format!("throughput_mbps_{tag}"), m.mean_throughput_mbps);
        result.row(&format!("queue_delay_ms_{tag}"), m.mean_queue_delay_ms);
        if !m.mu_series.is_empty() {
            result.row(&format!("mu_error_{tag}"), m.mu_tracking_error);
            result.add_series(
                &format!("mu_estimate_mbps_{tag}"),
                m.mu_series.iter().map(|&(t, mu)| (t, mu / 1e6)).collect(),
            );
        }
        result.add_series(
            &format!("throughput_series_{tag}"),
            m.throughput_series.clone(),
        );
    }
    result
}
