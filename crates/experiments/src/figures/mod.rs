//! One module per group of figures, plus shared cross-traffic builders.

pub mod eval;
pub mod fleet;
pub mod internet;
pub mod intro;
pub mod l4s;
pub mod multiflow;
pub mod multihop;
pub mod robust;
pub mod varying;

use crate::runner::CrossFlowSpec;
use crate::scheme::SchemeSpec;
use nimbus_netsim::{FlowConfig, FlowEndpoint, Time};
use nimbus_transport::{
    CcKind, PathInfo, PoissonSource, ScriptedSource, Sender, SenderConfig, Source,
};

/// A backlogged elastic cross-flow using the given loss-based scheme.
/// `stop_s` terminates the flow at that time (the application goes away).
pub fn elastic_cross_flow(
    label: &str,
    kind: CcKind,
    rtt_s: f64,
    start_s: f64,
    stop_s: Option<f64>,
) -> (FlowConfig, Box<dyn FlowEndpoint>) {
    scheme_cross_flow(
        label,
        &SchemeSpec::Bare(kind),
        0.0,
        0,
        rtt_s,
        start_s,
        stop_s,
    )
}

/// A backlogged cross-flow running an arbitrary [`SchemeSpec`] — the
/// generalization of [`elastic_cross_flow`] that lets *any* scheme the
/// algebra can express (including Nimbus wrappers) act as cross traffic.
/// `mu_bps` is the nominal bottleneck rate handed to configured-µ wrappers
/// (ignored by bare CCAs) and `seed` drives any randomized behaviour.
/// Thin wrapper over [`CrossFlowSpec::build_labelled`], the single engine
/// behind every spec-described cross flow.
pub fn scheme_cross_flow(
    label: &str,
    spec: &SchemeSpec,
    mu_bps: f64,
    seed: u64,
    rtt_s: f64,
    start_s: f64,
    stop_s: Option<f64>,
) -> (FlowConfig, Box<dyn FlowEndpoint>) {
    let mut flow = CrossFlowSpec::new(*spec).starting_at(start_s);
    flow.rtt_s = rtt_s;
    flow.stop_s = stop_s;
    flow.build_labelled(label, mu_bps, seed)
}

/// An inelastic Poisson cross-traffic aggregate at `rate_bps`.
pub fn poisson_cross_flow(
    label: &str,
    rate_bps: f64,
    rtt_s: f64,
    seed: u64,
    start_s: f64,
    stop_s: Option<f64>,
) -> (FlowConfig, Box<dyn FlowEndpoint>) {
    let mut source = PoissonSource::new(rate_bps, 1500, seed);
    let mut sender_cfg = SenderConfig::labelled(label);
    if let Some(stop) = stop_s {
        source = source.until(Time::from_secs_f64(stop));
        sender_cfg = sender_cfg.stopping_at(Time::from_secs_f64(stop));
    }
    let cfg = FlowConfig::cross(label, Time::from_secs_f64(rtt_s), false)
        .starting_at(Time::from_secs_f64(start_s));
    let ep: Box<dyn FlowEndpoint> = Box::new(Sender::new(
        sender_cfg,
        CcKind::Unlimited.build(&PathInfo::new(1500)),
        Box::new(source),
    ));
    (cfg, ep)
}

/// An inelastic constant-bit-rate cross flow at `rate_bps`.
pub fn cbr_cross_flow(
    label: &str,
    rate_bps: f64,
    rtt_s: f64,
    start_s: f64,
    stop_s: Option<f64>,
) -> (FlowConfig, Box<dyn FlowEndpoint>) {
    let source: Box<dyn Source> = match stop_s {
        Some(stop) => Box::new(ScriptedSource::constant(rate_bps).until(Time::from_secs_f64(stop))),
        None => Box::new(ScriptedSource::constant(rate_bps)),
    };
    let mut sender_cfg = SenderConfig::labelled(label);
    if let Some(stop) = stop_s {
        sender_cfg = sender_cfg.stopping_at(Time::from_secs_f64(stop));
    }
    let cfg = FlowConfig::cross(label, Time::from_secs_f64(rtt_s), false)
        .starting_at(Time::from_secs_f64(start_s));
    let ep: Box<dyn FlowEndpoint> = Box::new(Sender::new(
        sender_cfg,
        CcKind::Unlimited.build(&PathInfo::new(1500)),
        source,
    ));
    (cfg, ep)
}

/// The Fig. 1 cross-traffic pattern on a scenario of the given duration:
/// one Cubic flow during `[elastic_start, elastic_end)`, a Poisson aggregate
/// at `inelastic_rate` during `[inelastic_start, inelastic_end)`.
pub fn fig1_cross_traffic(
    scale: f64,
    inelastic_rate_bps: f64,
    seed: u64,
) -> Vec<(FlowConfig, Box<dyn FlowEndpoint>)> {
    vec![
        elastic_cross_flow(
            "cubic-cross",
            CcKind::Cubic,
            0.05,
            30.0 * scale,
            Some(90.0 * scale),
        ),
        poisson_cross_flow(
            "poisson-cross",
            inelastic_rate_bps,
            0.05,
            seed,
            90.0 * scale,
            Some(150.0 * scale),
        ),
    ]
}
