//! Multi-bottleneck path experiments (beyond the paper's single-link
//! dumbbell).
//!
//! The paper's central claim is that elasticity can be detected *through* the
//! network from endpoint-visible signals; these experiments probe the regime
//! a single-link simulator cannot reach — the multi-queue effects catalogued
//! for delay-based congestion control by Hayes et al. (ETT 2011):
//!
//! * `multihop_secondary` — a fixed secondary bottleneck downstream of the
//!   nominal link: throughput must cap at the path minimum, and Nimbus must
//!   keep the *path* (sum over hops) queueing delay low where Cubic
//!   bufferbloats the tight hop;
//! * `multihop_moving` — anti-phase rate steps on hops 0 and 1 move the
//!   bottleneck mid-run while the path minimum stays constant: does the
//!   detector stay quiet as the standing queue migrates between hops?
//! * `multihop_midpath` — inelastic cross traffic entering at the interior
//!   bottleneck hop (not at the sender-side edge): the detector only sees the
//!   cross traffic's effect on its own ACK stream and must still classify it
//!   as inelastic.

use crate::figures::cbr_cross_flow;
use crate::output::ExperimentResult;
use crate::runner::{run_scheme_vs_cross, LinkScheduleSpec, PathSpec, ScenarioSpec};
use crate::scheme::SchemeSpec;

/// Fixed secondary bottleneck: hop 0 at 48 Mbit/s feeding a 28.8 Mbit/s
/// (60%) second hop.  Cubic vs Nimbus, alone on the path.
pub fn multihop_secondary(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "multihop_secondary",
        "Cubic vs Nimbus through a fixed 60% secondary bottleneck (2-hop path)",
        quick,
    );
    for scheme in [SchemeSpec::cubic(), SchemeSpec::nimbus()] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            path: PathSpec::with_secondary(0.6),
            duration_s: duration,
            seed: 41,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let out = run_scheme_vs_cross(&spec, scheme, None, Vec::new(), 10.0);
        let m = &out.flows[0];
        result.row(
            &format!("{}_throughput_mbps", m.label),
            m.mean_throughput_mbps,
        );
        result.row(
            &format!("{}_path_queue_delay_ms", m.label),
            m.mean_queue_delay_ms,
        );
        result.row(
            &format!("{}_delay_mode_fraction", m.label),
            m.delay_mode_fraction,
        );
        // Where did the standing queue live?  Per-hop mean occupancy (kB).
        for (hop, series) in out.recorder.hop_queue_bytes.iter().enumerate() {
            result.row(
                &format!("{}_hop{hop}_queue_kbytes", m.label),
                series.mean_in_range(10.0, duration) / 1e3,
            );
        }
        result.add_series(
            &format!("{}_throughput", m.label),
            m.throughput_series.clone(),
        );
    }
    result
}

/// Moving bottleneck: hop 0 steps 48 → 24 Mbit/s at mid-run while hop 1
/// steps 24 → 48 Mbit/s.  The path minimum is 24 Mbit/s throughout; only the
/// *location* of the bottleneck (and its standing queue) changes.
pub fn multihop_moving(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 80.0 };
    let swap_at = duration * 0.45;
    let mut result = ExperimentResult::new(
        "multihop_moving",
        "Moving bottleneck via anti-phase steps on hops 0 and 1 (constant path minimum)",
        quick,
    );
    for scheme in [SchemeSpec::cubic(), SchemeSpec::nimbus()] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Step {
                at_s: swap_at,
                factor: 0.5,
            },
            path: PathSpec::moving_bottleneck(0.5, swap_at),
            duration_s: duration,
            seed: 42,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let out = run_scheme_vs_cross(&spec, scheme, None, Vec::new(), 8.0);
        let m = &out.flows[0];
        let pre: Vec<f64> = m
            .throughput_series
            .iter()
            .filter(|(t, _)| *t > 8.0 && *t < swap_at)
            .map(|(_, v)| *v)
            .collect();
        let pre_mean = pre.iter().sum::<f64>() / pre.len().max(1) as f64;
        let post = m
            .throughput_series
            .iter()
            .filter(|(t, _)| *t > swap_at + 5.0)
            .map(|(_, v)| *v)
            .collect::<Vec<_>>();
        let post_mean = post.iter().sum::<f64>() / post.len().max(1) as f64;
        result.row(&format!("{}_pre_swap_mbps", m.label), pre_mean);
        result.row(&format!("{}_post_swap_mbps", m.label), post_mean);
        result.row(
            &format!("{}_delay_mode_fraction", m.label),
            m.delay_mode_fraction,
        );
        // The migrating standing queue, per hop, before and after the swap.
        for (hop, series) in out.recorder.hop_queue_bytes.iter().enumerate() {
            result.row(
                &format!("{}_hop{hop}_pre_swap_kbytes", m.label),
                series.mean_in_range(8.0, swap_at) / 1e3,
            );
            result.row(
                &format!("{}_hop{hop}_post_swap_kbytes", m.label),
                series.mean_in_range(swap_at + 5.0, duration) / 1e3,
            );
        }
        result.add_series(
            &format!("{}_throughput", m.label),
            m.throughput_series.clone(),
        );
    }
    result
}

/// Mid-path cross traffic: a 2-hop path whose second hop is the bottleneck,
/// with CBR cross traffic entering *at* that interior hop.  Nimbus must
/// classify it as inelastic (stay in delay mode) even though the cross
/// traffic never shares the first hop with the monitored flow.
pub fn multihop_midpath(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "multihop_midpath",
        "Nimbus vs CBR cross traffic entering at the interior bottleneck hop",
        quick,
    );
    for &(fraction, tag) in &[(0.3, "cbr30"), (0.5, "cbr50")] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            path: PathSpec::with_secondary(0.6),
            duration_s: duration,
            seed: 43,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let bottleneck_bps = spec.nominal_mu_bps();
        let (cfg, ep) = cbr_cross_flow(
            &format!("midpath-{tag}"),
            fraction * bottleneck_bps,
            0.03,
            0.0,
            None,
        );
        let cross = vec![(cfg.entering_at(1), ep)];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 10.0);
        let m = &out.flows[0];
        result.row(&format!("throughput_mbps_{tag}"), m.mean_throughput_mbps);
        result.row(&format!("delay_mode_fraction_{tag}"), m.delay_mode_fraction);
        result.row(&format!("path_queue_delay_ms_{tag}"), m.mean_queue_delay_ms);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_multihop_secondary_caps_at_path_minimum() {
        let r = multihop_secondary(true);
        // Both schemes must be capped by the 28.8 Mbit/s second hop.
        for scheme in ["cubic", "nimbus"] {
            let tput = r.get(&format!("{scheme}_throughput_mbps")).unwrap();
            assert!(
                tput > 20.0 && tput < 30.0,
                "{scheme} throughput {tput} not capped by the secondary bottleneck"
            );
        }
        // Cubic's standing queue lives at the tight hop 1, not hop 0.
        let h0 = r.get("cubic_hop0_queue_kbytes").unwrap();
        let h1 = r.get("cubic_hop1_queue_kbytes").unwrap();
        assert!(h1 > h0 * 5.0, "cubic queue at hop0 {h0} kB vs hop1 {h1} kB");
    }
}
