//! Fleet-churn experiments: open-loop flow populations at scale (§8.1
//! extended to population dynamics).
//!
//! Three questions the scenario matrix pins as invariants are quantified
//! here as full experiments:
//!
//! * [`fleet_churn`] — does constant arrival/departure churn read as
//!   elastic to a long-lived Nimbus flow?  (Measured: no — delay mode
//!   holds even at 1000+-flow scale over a 1 Gbit/s bottleneck.)
//! * [`fleet_fct`] — what do the churning flows themselves experience?
//!   Flow-completion-time distributions (p50/p95/p99 by mice/medium/
//!   elephant) for the same population sharing with Nimbus vs with Cubic.
//! * [`fleet_multiflow`] — do ~100 concurrent Nimbus flows with the
//!   multiflow protocol enabled converge to a fair pulse-frequency
//!   allocation?

use crate::output::ExperimentResult;
use crate::runner::{run_scheme_vs_cross, FleetSpec, ScenarioSpec};
use crate::scheme::SchemeSpec;
use nimbus_core::MultiflowConfig;
use nimbus_netsim::{FctBucket, FlowConfig, Time};

/// Append one FCT bucket's percentile rows under a `prefix`.
fn fct_rows(result: &mut ExperimentResult, prefix: &str, bucket: &FctBucket) {
    result.row(&format!("{prefix}_count"), bucket.count as f64);
    result.row(&format!("{prefix}_mean_s"), bucket.mean_s);
    result.row(&format!("{prefix}_p50_s"), bucket.p50_s);
    result.row(&format!("{prefix}_p95_s"), bucket.p95_s);
    result.row(&format!("{prefix}_p99_s"), bucket.p99_s);
}

/// Population-scale churn against a long-lived Nimbus flow: a 1 Gbit/s
/// bottleneck with a Poisson fleet at 50% offered load spawns flows at
/// ~550/s, so even the quick run churns through well over a thousand
/// arrivals and retirements.  The detector-stability claim: churn is not a
/// backlogged competitor — Nimbus must hold delay mode throughout.
pub fn fleet_churn(quick: bool) -> ExperimentResult {
    let duration = if quick { 8.0 } else { 30.0 };
    let mut result = ExperimentResult::new(
        "fleet_churn",
        "1000+-flow churn over 1 Gbit/s: Nimbus detector stability under arrival/departure dynamics",
        quick,
    );
    let spec = ScenarioSpec {
        link_rate_bps: 1e9,
        duration_s: duration,
        seed: 61,
        fleet: Some(FleetSpec::poisson(0.5)),
        ..ScenarioSpec::default_96mbps(duration)
    };
    let out = run_scheme_vs_cross(
        &spec,
        SchemeSpec::nimbus(),
        None,
        Vec::new(),
        duration * 0.25,
    );
    let m = &out.flows[0];
    result.row("monitored_throughput_mbps", m.mean_throughput_mbps);
    result.row("monitored_queue_delay_ms", m.mean_queue_delay_ms);
    result.row("delay_mode_fraction", m.delay_mode_fraction);
    result.row(
        "entered_competitive",
        m.mode_log
            .iter()
            .filter(|(_, mode)| mode == "competitive")
            .count() as f64,
    );
    result.row(
        "fleet_flows_completed",
        out.recorder.fct_stream().len() as f64,
    );
    result.row("events_processed", out.events_processed as f64);
    let summary = out.recorder.fct_summary();
    fct_rows(&mut result, "fct_all", &summary.all);
    result.add_series("monitored_throughput_series", m.throughput_series.clone());
    result.add_series("monitored_queue_delay_series", m.queue_delay_series.clone());
    result
}

/// FCT distributions for a churning population sharing the bottleneck with
/// a long-lived Nimbus flow vs a long-lived Cubic flow.  The identical
/// fleet (same arrival instants, sizes and controller seeds) runs against
/// both, so every FCT difference is attributable to the long-lived flow's
/// congestion control.
pub fn fleet_fct(quick: bool) -> ExperimentResult {
    let duration = if quick { 20.0 } else { 60.0 };
    let mut result = ExperimentResult::new(
        "fleet_fct",
        "Fleet FCT distributions (mice/medium/elephant percentiles): sharing with Nimbus vs with Cubic",
        quick,
    );
    for scheme in [SchemeSpec::nimbus(), SchemeSpec::cubic()] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            duration_s: duration,
            seed: 62,
            fleet: Some(FleetSpec::poisson(0.5)),
            ..ScenarioSpec::default_96mbps(duration)
        };
        let out = run_scheme_vs_cross(&spec, scheme, None, Vec::new(), duration * 0.2);
        let label = scheme.label();
        let m = &out.flows[0];
        result.row(
            &format!("{label}_monitored_throughput_mbps"),
            m.mean_throughput_mbps,
        );
        result.row(
            &format!("{label}_monitored_queue_delay_ms"),
            m.mean_queue_delay_ms,
        );
        let summary = out.recorder.fct_summary();
        fct_rows(&mut result, &format!("{label}_fct_all"), &summary.all);
        fct_rows(&mut result, &format!("{label}_fct_mice"), &summary.mice);
        fct_rows(&mut result, &format!("{label}_fct_medium"), &summary.medium);
        fct_rows(
            &mut result,
            &format!("{label}_fct_elephant"),
            &summary.elephant,
        );
    }
    result
}

/// Fairness among `n` concurrent Nimbus multiflow flows sharing one
/// bottleneck at 10 Mbit/s of fair share each, with a churning fleet or
/// alone.  Returns the per-flow steady-state rates.
fn run_multiflow_population(
    n: usize,
    link_rate_bps: f64,
    duration: f64,
    steady_start_s: f64,
    seed_base: u64,
) -> (Vec<f64>, Vec<f64>, f64) {
    let spec = ScenarioSpec {
        link_rate_bps,
        duration_s: duration,
        seed: seed_base,
        ..ScenarioSpec::default_96mbps(duration)
    };
    let mut net = spec.build_network();
    let mut handles = Vec::new();
    for i in 0..n {
        let cfg = SchemeSpec::nimbus_vegas()
            .nimbus_config(spec.link_rate_bps, seed_base + i as u64)
            .unwrap()
            .with_multiflow(MultiflowConfig::enabled());
        let endpoint = Box::new(nimbus_sim::nimbus_flow(cfg, &format!("nimbus-{i}")));
        let h = net.add_flow(
            FlowConfig::primary(&format!("nimbus-{i}"), Time::from_millis(50)),
            endpoint,
        );
        handles.push((h, SchemeSpec::nimbus_vegas()));
    }
    let out = crate::runner::run_and_collect(net, &handles, steady_start_s);
    let rates: Vec<f64> = out
        .flows
        .iter()
        .map(|m| m.mean_throughput_mbps)
        .filter(|v| v.is_finite())
        .collect();
    let delay_fracs: Vec<f64> = out.flows.iter().map(|m| m.delay_mode_fraction).collect();
    let qds: Vec<f64> = out
        .flows
        .iter()
        .map(|m| m.mean_queue_delay_ms)
        .filter(|v| v.is_finite())
        .collect();
    (rates, delay_fracs, nimbus_dsp::mean(&qds))
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 = perfectly fair.
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = rates.iter().sum();
    let sumsq: f64 = rates.iter().map(|r| r * r).sum();
    sum * sum / (rates.len() as f64 * sumsq)
}

/// Pulse-frequency allocation convergence at population scale: ~100
/// concurrent Nimbus flows (16 in quick mode) with the multiflow protocol
/// enabled share one bottleneck at 10 Mbit/s fair share each.  The paper's
/// §5 claim at 4 flows — fair sharing, coordinated pulsing — must survive
/// two orders of magnitude more participants.
///
/// Measured: the *allocation* converges at every scale (Jain ≥ 0.92 at
/// both 16 and 96 flows, aggregate ≥ 98% of µ), but the mode story flips
/// with population size.  At 16 flows each competitor is a macroscopic
/// slice of the link, the watcher/pulser coordination saturates, and the
/// whole population settles in competitive mode behind a standing queue;
/// at 96 flows statistical multiplexing smooths the other flows into an
/// inelastic-looking aggregate and every flow holds delay mode at ~5 ms of
/// queueing delay.  Scale *restores* the low-delay operating point.
pub fn fleet_multiflow(quick: bool) -> ExperimentResult {
    let n = if quick { 16 } else { 96 };
    let duration = if quick { 25.0 } else { 60.0 };
    let link_rate = n as f64 * 10e6;
    let mut result = ExperimentResult::new(
        "fleet_multiflow",
        "Pulse-frequency allocation convergence with ~100 concurrent Nimbus multiflow flows",
        quick,
    );
    let (rates, delay_fracs, mean_qd) =
        run_multiflow_population(n, link_rate, duration, duration * 0.4, 260);
    result.row("flows", n as f64);
    result.row("link_rate_mbps", link_rate / 1e6);
    result.row("jain_fairness_index", jain_index(&rates));
    result.row("aggregate_throughput_mbps", rates.iter().sum::<f64>());
    result.row(
        "min_flow_throughput_mbps",
        rates.iter().copied().fold(f64::INFINITY, f64::min),
    );
    result.row(
        "max_flow_throughput_mbps",
        rates.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    result.row("mean_delay_mode_fraction", nimbus_dsp::mean(&delay_fracs));
    result.row("mean_queue_delay_ms", mean_qd);
    result
}
