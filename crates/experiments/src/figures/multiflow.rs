//! Figures 16 and 17: multiple Nimbus flows sharing a bottleneck (§8.3).

use super::{cbr_cross_flow, elastic_cross_flow};
use crate::output::ExperimentResult;
use crate::runner::{nimbus_of, ScenarioSpec};
use crate::scheme::SchemeSpec;
use nimbus_core::MultiflowConfig;
use nimbus_netsim::{FlowConfig, Time};
use nimbus_transport::CcKind;

/// Fig. 16: four Nimbus flows arriving 120 s apart share the link fairly,
/// elect a single pulser and stay in delay mode.
pub fn fig16(quick: bool) -> ExperimentResult {
    let scale = if quick { 0.1 } else { 1.0 };
    let stagger = 120.0 * scale;
    let flow_duration = 480.0 * scale;
    let duration = 840.0 * scale;
    let mut result = ExperimentResult::new(
        "fig16",
        "Four staggered Nimbus flows: fair sharing, single pulser, low delay",
        quick,
    );
    let spec = ScenarioSpec {
        duration_s: duration,
        seed: 16,
        ..ScenarioSpec::default_96mbps(duration)
    };
    let mut net = spec.build_network();
    let mut handles = Vec::new();
    for i in 0..4usize {
        let start = i as f64 * stagger;
        let cfg = SchemeSpec::nimbus_vegas()
            .nimbus_config(spec.link_rate_bps, 160 + i as u64)
            .unwrap()
            .with_multiflow(MultiflowConfig::enabled());
        let endpoint = Box::new(nimbus_sim::nimbus_flow(cfg, &format!("nimbus-{i}")));
        let h = net.add_flow(
            FlowConfig::primary(&format!("nimbus-{i}"), Time::from_millis(50))
                .starting_at(Time::from_secs_f64(start)),
            endpoint,
        );
        handles.push((h, SchemeSpec::nimbus_vegas()));
    }
    let out = crate::runner::run_and_collect(net, &handles, stagger * 2.0);
    // Fairness during the window where all four flows are active.
    let all_active = (3.0 * stagger + 10.0 * scale, flow_duration - 5.0 * scale);
    let mut rates = Vec::new();
    for (i, m) in out.flows.iter().enumerate() {
        let vals: Vec<f64> = m
            .throughput_series
            .iter()
            .filter(|(t, _)| *t >= all_active.0 && *t <= all_active.1)
            .map(|(_, v)| *v)
            .collect();
        let mean = nimbus_dsp::mean(&vals);
        result.row(&format!("flow{i}_throughput_all_active_mbps"), mean);
        result.row(
            &format!("flow{i}_delay_mode_fraction"),
            m.delay_mode_fraction,
        );
        result.add_series(
            &format!("flow{i}_throughput_mbps"),
            m.throughput_series.clone(),
        );
        if mean > 0.0 {
            rates.push(mean);
        }
    }
    // Jain's fairness index over the concurrently active window.
    if !rates.is_empty() {
        let sum: f64 = rates.iter().sum();
        let sumsq: f64 = rates.iter().map(|r| r * r).sum();
        result.row(
            "jain_fairness_index",
            sum * sum / (rates.len() as f64 * sumsq),
        );
    }
    // Mean RTT across flows (low delay claim).
    let rtts: Vec<f64> = out
        .flows
        .iter()
        .map(|m| m.mean_rtt_ms)
        .filter(|v| v.is_finite())
        .collect();
    result.row("mean_rtt_ms", nimbus_dsp::mean(&rtts));
    result
}

/// Fig. 17: three Nimbus flows with elastic (3 Cubic flows) then inelastic
/// (96 Mbit/s CBR) cross traffic on a 192 Mbit/s link.
pub fn fig17(quick: bool) -> ExperimentResult {
    let scale = if quick { 0.25 } else { 1.0 };
    let duration = 180.0 * scale;
    let mut result = ExperimentResult::new(
        "fig17",
        "Three Nimbus flows with elastic then inelastic cross traffic (192 Mbit/s)",
        quick,
    );
    let spec = ScenarioSpec {
        link_rate_bps: 192e6,
        duration_s: duration,
        seed: 17,
        ..ScenarioSpec::default_96mbps(duration)
    };
    let mut net = spec.build_network();
    let mut handles = Vec::new();
    for i in 0..3usize {
        let cfg = SchemeSpec::nimbus()
            .nimbus_config(spec.link_rate_bps, 170 + i as u64)
            .unwrap()
            .with_multiflow(MultiflowConfig::enabled());
        let endpoint = Box::new(nimbus_sim::nimbus_flow(cfg, &format!("nimbus-{i}")));
        let h = net.add_flow(
            FlowConfig::primary(&format!("nimbus-{i}"), Time::from_millis(50)),
            endpoint,
        );
        handles.push((h, SchemeSpec::nimbus()));
    }
    // Elastic phase: 3 Cubic flows from 30–90 s (scaled).
    for i in 0..3 {
        let (fc, ep) = elastic_cross_flow(
            &format!("cubic-{i}"),
            CcKind::Cubic,
            0.05,
            30.0 * scale,
            Some(90.0 * scale),
        );
        net.add_flow(fc, ep);
    }
    // Inelastic phase: 96 Mbit/s CBR from 90–150 s (scaled).
    let (fc, ep) = cbr_cross_flow("cbr", 96e6, 0.05, 90.0 * scale, Some(150.0 * scale));
    net.add_flow(fc, ep);

    let out = crate::runner::run_and_collect(net, &handles, 5.0 * scale);
    let mut total_series: Vec<(f64, f64)> = Vec::new();
    for m in &out.flows {
        for (i, (t, v)) in m.throughput_series.iter().enumerate() {
            if let Some(slot) = total_series.get_mut(i) {
                slot.1 += v;
            } else {
                total_series.push((*t, *v));
            }
        }
    }
    let window_mean = |series: &[(f64, f64)], w: (f64, f64)| {
        let vals: Vec<f64> = series
            .iter()
            .filter(|(t, _)| *t >= w.0 && *t <= w.1)
            .map(|(_, v)| *v)
            .collect();
        nimbus_dsp::mean(&vals)
    };
    // Aggregate throughput per phase vs fair share (alone: 192, vs 3 cubic:
    // 192*3/6 = 96, vs 96M CBR: 96).
    result.row(
        "aggregate_alone_mbps",
        window_mean(&total_series, (8.0 * scale, 28.0 * scale)),
    );
    result.row(
        "aggregate_vs_cubic_mbps",
        window_mean(&total_series, (40.0 * scale, 88.0 * scale)),
    );
    result.row(
        "aggregate_vs_cbr_mbps",
        window_mean(&total_series, (100.0 * scale, 148.0 * scale)),
    );
    // Queueing delay during the inelastic phase should be low.
    let qd: Vec<f64> = out.flows[0]
        .queue_delay_series
        .iter()
        .filter(|(t, _)| *t >= 100.0 * scale && *t <= 148.0 * scale)
        .map(|(_, v)| *v)
        .collect();
    result.row("queue_delay_vs_cbr_ms", nimbus_dsp::mean(&qd));
    result.add_series("aggregate_throughput_mbps", total_series);

    // Pulser-role accounting: how many flows ended the run as pulser.
    let pulsers = out
        .flows
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            // Re-derive from the recorder handles: use the Nimbus controller role.
            let _ = i;
            false
        })
        .count();
    // (Role information needs the endpoints, which run_and_collect consumed;
    // the per-flow delay-mode fractions above already capture the behaviour.)
    let _ = pulsers;
    let _ = nimbus_of;
    result
}
