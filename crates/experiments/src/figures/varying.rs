//! Time-varying bottleneck experiments (beyond the paper's fixed-µ links).
//!
//! The paper's detector depends on a live estimate of the bottleneck rate µ
//! (§4.2) and claims robustness across network conditions; these experiments
//! probe exactly the regime the fixed-rate evaluation cannot reach:
//!
//! * `varying_mu` — how well the BBR-style max-filter µ estimator tracks a
//!   sinusoidally varying link;
//! * `varying_detector` — whether the elasticity detector stays quiet (delay
//!   mode) when the *link*, not the cross traffic, is what oscillates;
//! * `varying_step` — how quickly Cubic and Nimbus converge to a halved link
//!   rate;
//! * `varying_estimator` — the µ-estimation strategy axis on the ±10%
//!   sinusoid where the plain max filter loses delay mode: every
//!   learned-µ/ẑ-filter combination side by side.

use crate::output::ExperimentResult;
use crate::runner::{run_scheme_vs_cross, LinkScheduleSpec, ScenarioSpec};
use crate::scheme::SchemeSpec;

/// First time (seconds) after `after_s` at which the throughput series stays
/// within `tolerance` of `target` for a full second — the convergence point
/// after a rate transition.  NaN when it never converges.
fn convergence_time_s(series: &[(f64, f64)], after_s: f64, target: f64, tolerance: f64) -> f64 {
    let close: Vec<(f64, bool)> = series
        .iter()
        .filter(|(t, _)| *t >= after_s)
        .map(|&(t, v)| (t, (v - target).abs() <= tolerance))
        .collect();
    let series_end = match close.last() {
        Some(&(t, _)) => t,
        None => return f64::NAN,
    };
    for (i, &(t, ok)) in close.iter().enumerate() {
        if !ok {
            continue;
        }
        // A full second of evidence must exist: a band touch in the last few
        // samples of the run is not convergence.
        if t + 1.0 > series_end {
            break;
        }
        let window_ok = close
            .iter()
            .skip(i)
            .take_while(|(t2, _)| *t2 <= t + 1.0)
            .all(|&(_, o)| o);
        if window_ok {
            return t - after_s;
        }
    }
    f64::NAN
}

/// µ-tracking accuracy: a lone Nimbus flow that *learns* µ from its max
/// receive rate, on a ±25% sinusoidal link.
pub fn varying_mu(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "varying_mu",
        "Nimbus µ-estimate tracking a ±25% sinusoidal bottleneck (learned µ)",
        quick,
    );
    for &(period_s, tag) in &[(10.0, "p10"), (20.0, "p20")] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Sinusoid {
                amplitude_frac: 0.25,
                period_s,
            },
            duration_s: duration,
            seed: 31,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus_estmu(), None, Vec::new(), 15.0);
        let m = &out.flows[0];
        result.row(&format!("mu_tracking_error_{tag}"), m.mu_tracking_error);
        result.row(&format!("throughput_mbps_{tag}"), m.mean_throughput_mbps);
        result.add_series(
            &format!("mu_estimate_mbps_{tag}"),
            m.mu_series.iter().map(|&(t, mu)| (t, mu / 1e6)).collect(),
        );
        result.add_series(
            &format!("throughput_series_{tag}"),
            m.throughput_series.clone(),
        );
    }
    result
}

/// Detector stability: Nimbus alone on an oscillating link must not mistake
/// the link's own rate variation for elastic cross traffic.
///
/// The ±25% rows carry the PR 2 finding (plain Nimbus loses delay mode when
/// the link itself swings that hard); the `amp25_adaptive*` rows re-measure
/// that regime under the PR 5 µ-error-aware adaptive thresholds, with both
/// configured and learned µ.
pub fn varying_detector(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "varying_detector",
        "Detector stability alone on a ±25% oscillating bottleneck",
        quick,
    );
    for (spec_text, amplitude, tag) in [
        ("nimbus", 0.1, "amp10"),
        ("nimbus", 0.25, "amp25"),
        ("nimbus(zfilter=adaptive)", 0.25, "amp25_adaptive"),
        (
            "nimbus(mu=learned,zfilter=adaptive)",
            0.25,
            "amp25_adaptive_learned",
        ),
    ] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Sinusoid {
                amplitude_frac: amplitude,
                period_s: 10.0,
            },
            duration_s: duration,
            seed: 32,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let scheme: SchemeSpec = spec_text.parse().expect("detector spec parses");
        let out = run_scheme_vs_cross(&spec, scheme, None, Vec::new(), 10.0);
        let m = &out.flows[0];
        result.row(&format!("delay_mode_fraction_{tag}"), m.delay_mode_fraction);
        result.row(&format!("throughput_mbps_{tag}"), m.mean_throughput_mbps);
        let etas: Vec<f64> = m
            .eta_series
            .iter()
            .filter(|(t, _)| *t > 10.0)
            .map(|(_, e)| *e)
            .collect();
        let elastic_frac =
            etas.iter().filter(|&&e| e >= 2.0).count() as f64 / etas.len().max(1) as f64;
        result.row(&format!("spurious_elastic_fraction_{tag}"), elastic_frac);
        result.add_series(&format!("eta_series_{tag}"), m.eta_series.clone());
    }
    result
}

/// The estimator-strategy axis on the ±10% sinusoid (the ROADMAP regime
/// where every learned-µ wrapper loses delay mode): the plain max filter,
/// the µ-error-aware adaptive thresholds, the link-frequency notch, and the
/// probing estimator, with configured µ as the reference.
pub fn varying_estimator(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "varying_estimator",
        "µ-estimation strategies and ẑ filters alone on a ±10% sinusoidal bottleneck",
        quick,
    );
    for (spec_text, tag) in [
        ("nimbus", "configured"),
        ("nimbus(mu=learned)", "maxfilt"),
        ("nimbus(mu=learned,zfilter=adaptive)", "adaptive"),
        ("nimbus(mu=learned,zfilter=notch(freq=0.1))", "notch"),
        ("nimbus(mu=learned(probe=1))", "probing"),
    ] {
        let spec = ScenarioSpec {
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Sinusoid {
                amplitude_frac: 0.1,
                period_s: 10.0,
            },
            duration_s: duration,
            seed: 43,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let scheme: SchemeSpec = spec_text.parse().expect("estimator spec parses");
        let out = run_scheme_vs_cross(&spec, scheme, None, Vec::new(), 10.0);
        let m = &out.flows[0];
        result.row(&format!("delay_mode_fraction_{tag}"), m.delay_mode_fraction);
        result.row(&format!("throughput_mbps_{tag}"), m.mean_throughput_mbps);
        result.row(&format!("queue_delay_ms_{tag}"), m.mean_queue_delay_ms);
        result.row(&format!("mu_error_{tag}"), m.mu_tracking_error);
        result.add_series(&format!("eta_series_{tag}"), m.eta_series.clone());
    }
    result
}

/// Rate step: Cubic vs Nimbus as the link halves from 96 to 48 Mbit/s.
pub fn varying_step(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 80.0 };
    let step_at = duration * 0.45;
    let mut result = ExperimentResult::new(
        "varying_step",
        "Cubic vs Nimbus under a 96 -> 48 Mbit/s rate step",
        quick,
    );
    for scheme in [SchemeSpec::cubic(), SchemeSpec::nimbus()] {
        let spec = ScenarioSpec {
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Step {
                at_s: step_at,
                factor: 0.5,
            },
            duration_s: duration,
            seed: 33,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let out = run_scheme_vs_cross(&spec, scheme, None, Vec::new(), step_at + 5.0);
        let m = &out.flows[0];
        let pre: Vec<f64> = m
            .throughput_series
            .iter()
            .filter(|(t, _)| *t > 8.0 && *t < step_at)
            .map(|(_, v)| *v)
            .collect();
        let pre_mean = pre.iter().sum::<f64>() / pre.len().max(1) as f64;
        result.row(&format!("{}_pre_step_mbps", m.label), pre_mean);
        result.row(
            &format!("{}_post_step_mbps", m.label),
            m.mean_throughput_mbps,
        );
        result.row(
            &format!("{}_convergence_s", m.label),
            convergence_time_s(&m.throughput_series, step_at, 48.0, 12.0),
        );
        result.add_series(
            &format!("{}_throughput", m.label),
            m.throughput_series.clone(),
        );
        result.add_series(&format!("{}_rtt", m.label), m.rtt_series.clone());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_detection_finds_the_settle_point() {
        // Throughput holds 96 until t=10, dips, then settles at 48 from t=12.
        let mut series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.1, 96.0)).collect();
        series.extend((100..120).map(|i| (i as f64 * 0.1, 70.0)));
        series.extend((120..200).map(|i| (i as f64 * 0.1, 48.0)));
        let c = convergence_time_s(&series, 10.0, 48.0, 5.0);
        assert!((c - 2.0).abs() < 0.2, "convergence {c}");
        // Never converging yields NaN.
        let flat: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.1, 96.0)).collect();
        assert!(convergence_time_s(&flat, 1.0, 48.0, 5.0).is_nan());
    }
}
