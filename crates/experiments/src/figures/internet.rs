//! Figures 18–20: performance on (synthetic) Internet paths (§8.4, Appendix A).
//!
//! The paper measured 25 real paths between EC2 instances and residential
//! hosts.  We substitute a suite of 25 synthetic path profiles spanning the
//! same regimes (deep-buffered clean paths, shallow/policed paths, lossy
//! paths, varying RTTs and rates) — see DESIGN.md for the substitution
//! rationale.  Cross traffic on each path is a light WAN-like mix.

use crate::output::ExperimentResult;
use crate::runner::{run_scheme_vs_cross, EcnSpec, ScenarioSpec};
use crate::scheme::SchemeSpec;
use nimbus_dsp::Cdf;
use nimbus_traffic::{WanWorkload, WanWorkloadConfig};

/// One synthetic Internet path profile.
#[derive(Debug, Clone, Copy)]
pub struct PathProfile {
    /// Identifier (1..=25).
    pub id: usize,
    /// Bottleneck rate, bits/s.
    pub rate_bps: f64,
    /// Propagation RTT, seconds.
    pub rtt_s: f64,
    /// Buffer, seconds of line rate.
    pub buffer_s: f64,
    /// Random loss probability.
    pub loss: f64,
    /// Cross-traffic offered load as a fraction of the link.
    pub cross_load: f64,
}

/// The 25-path suite: 5 server regions × 5 client profiles.
pub fn path_suite() -> Vec<PathProfile> {
    let mut paths = Vec::new();
    let regions = [
        ("california", 0.080),
        ("ireland", 0.100),
        ("frankfurt", 0.095),
        ("london", 0.090),
        ("paris", 0.085),
    ];
    let clients: [(f64, f64, f64, f64); 5] = [
        // (rate, buffer_s, loss, cross_load)
        (50e6, 0.20, 0.0, 0.2),   // deep-buffered cable
        (95e6, 0.10, 0.0, 0.3),   // FTTH
        (25e6, 0.15, 0.0, 0.4),   // DSL
        (30e6, 0.03, 0.005, 0.2), // shallow buffer + light loss (policed)
        (60e6, 0.05, 0.001, 0.5), // busy shared link
    ];
    let mut id = 0;
    for (_region, rtt) in regions {
        for (rate, buffer, loss, cross) in clients {
            id += 1;
            paths.push(PathProfile {
                id,
                rate_bps: rate,
                rtt_s: rtt,
                buffer_s: buffer,
                loss,
                cross_load: cross,
            });
        }
    }
    paths
}

fn run_path(
    path: &PathProfile,
    scheme: SchemeSpec,
    duration_s: f64,
) -> crate::runner::SingleFlowMetrics {
    let spec = ScenarioSpec {
        link_rate_bps: path.rate_bps,
        schedule: crate::runner::LinkScheduleSpec::Constant,
        buffer_s: path.buffer_s,
        prop_rtt_s: path.rtt_s,
        duration_s,
        seed: 1800 + path.id as u64,
        pie_target_s: None,
        loss_probability: path.loss,
        path: crate::runner::PathSpec::single(),
        cross_flows: Vec::new(),
        fleet: None,
        ecn: EcnSpec::Off,
    };
    let wl = WanWorkload::generate(WanWorkloadConfig {
        base_rtt_s: path.rtt_s,
        seed: 1900 + path.id as u64,
        ..WanWorkloadConfig::default_for_link(path.rate_bps, path.cross_load, duration_s)
    });
    let out = run_scheme_vs_cross(&spec, scheme, None, wl.instantiate(), duration_s * 0.15);
    out.flows.into_iter().next().unwrap()
}

/// Fig. 18: three example paths (deep-buffered ×2, lossy/policed ×1) —
/// throughput vs mean delay per scheme.
pub fn fig18(quick: bool) -> ExperimentResult {
    let duration = if quick { 30.0 } else { 60.0 };
    let mut result = ExperimentResult::new(
        "fig18",
        "Three example Internet paths: throughput vs mean delay per scheme",
        quick,
    );
    let suite = path_suite();
    // Path A: deep-buffered; Path B: FTTH; Path C: shallow + loss.
    let examples = [("A", suite[0]), ("B", suite[1]), ("C", suite[3])];
    let schemes = if quick {
        vec![SchemeSpec::nimbus(), SchemeSpec::cubic()]
    } else {
        vec![
            SchemeSpec::nimbus(),
            SchemeSpec::cubic(),
            SchemeSpec::bbr(),
            SchemeSpec::vegas(),
        ]
    };
    for (tag, path) in examples {
        for scheme in &schemes {
            let m = run_path(&path, *scheme, duration);
            result.row(
                &format!("path{tag}_{}_throughput_mbps", m.label),
                m.mean_throughput_mbps,
            );
            result.row(&format!("path{tag}_{}_mean_rtt_ms", m.label), m.mean_rtt_ms);
        }
    }
    result
}

/// Fig. 19: CDFs of throughput and RTT across the paths with queueing.
pub fn fig19(quick: bool) -> ExperimentResult {
    let duration = if quick { 20.0 } else { 60.0 };
    let mut result = ExperimentResult::new(
        "fig19",
        "Across paths with queueing: throughput and RTT distributions per scheme",
        quick,
    );
    let suite = path_suite();
    let paths: Vec<&PathProfile> = if quick {
        suite.iter().filter(|p| p.loss == 0.0).take(4).collect()
    } else {
        suite.iter().filter(|p| p.loss == 0.0).collect()
    };
    let schemes = if quick {
        vec![SchemeSpec::nimbus(), SchemeSpec::cubic()]
    } else {
        vec![
            SchemeSpec::nimbus(),
            SchemeSpec::cubic(),
            SchemeSpec::bbr(),
            SchemeSpec::vegas(),
        ]
    };
    for scheme in &schemes {
        let mut tputs = Vec::new();
        let mut rtts = Vec::new();
        for path in &paths {
            let m = run_path(path, *scheme, duration);
            tputs.push(m.mean_throughput_mbps);
            rtts.push(m.mean_rtt_ms);
        }
        let label = scheme.label();
        result.row(
            &format!("{label}_mean_throughput_mbps"),
            nimbus_dsp::mean(&tputs),
        );
        result.row(&format!("{label}_mean_rtt_ms"), nimbus_dsp::mean(&rtts));
        result.add_series(
            &format!("{label}_throughput_cdf"),
            Cdf::from_samples(&tputs).curve(20),
        );
        result.add_series(
            &format!("{label}_rtt_cdf"),
            Cdf::from_samples(&rtts).curve(20),
        );
    }
    result
}

/// Fig. 20 (Appendix A): Cubic vs the delay-control algorithm alone over many
/// runs of one path — inelastic cross traffic is common, so a delay-based
/// scheme often matches Cubic's throughput at far lower delay.
pub fn fig20(quick: bool) -> ExperimentResult {
    let duration = if quick { 20.0 } else { 60.0 };
    let runs = if quick { 4 } else { 20 };
    let mut result = ExperimentResult::new(
        "fig20",
        "Cubic vs delay-control over repeated runs of one residential path",
        quick,
    );
    let base = path_suite()[0];
    for scheme in [SchemeSpec::cubic(), SchemeSpec::nimbus_delay_only()] {
        let mut tputs = Vec::new();
        let mut delays = Vec::new();
        for run in 0..runs {
            let mut path = base;
            path.id = 100 + run;
            // Cross load varies run to run (mostly inelastic mixes).
            path.cross_load = 0.15 + 0.05 * (run % 4) as f64;
            let m = run_path(&path, scheme, duration);
            tputs.push(m.mean_throughput_mbps);
            delays.push(m.mean_rtt_ms);
        }
        let label = scheme.label();
        result.row(
            &format!("{label}_mean_throughput_mbps"),
            nimbus_dsp::mean(&tputs),
        );
        result.row(&format!("{label}_mean_rtt_ms"), nimbus_dsp::mean(&delays));
        result.add_series(
            &format!("{label}_scatter"),
            delays
                .iter()
                .zip(tputs.iter())
                .map(|(d, t)| (*d, *t))
                .collect(),
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_suite_has_25_paths_spanning_regimes() {
        let suite = path_suite();
        assert_eq!(suite.len(), 25);
        assert!(suite.iter().any(|p| p.loss > 0.0), "need lossy paths");
        assert!(
            suite.iter().any(|p| p.buffer_s >= 0.2),
            "need deep-buffered paths"
        );
        assert!(
            suite.iter().any(|p| p.buffer_s <= 0.03),
            "need shallow paths"
        );
        let ids: std::collections::BTreeSet<usize> = suite.iter().map(|p| p.id).collect();
        assert_eq!(ids.len(), 25);
    }
}
