//! Figures 8–13 and 21: the main emulation evaluation (§5, §8.1).

use super::elastic_cross_flow;
use crate::output::ExperimentResult;
use crate::runner::{run_and_collect, run_scheme_vs_cross, ScenarioSpec};
use crate::scheme::SchemeSpec;
use nimbus_dsp::Cdf;
use nimbus_netsim::{FlowConfig, FlowEndpoint, Time};
use nimbus_traffic::{PhaseSchedule, VideoQuality, VideoSource, WanWorkload, WanWorkloadConfig};
use nimbus_transport::{CcKind, PathInfo, Sender, SenderConfig};

/// Fig. 8: the nine-phase scripted scenario on a 96 Mbit/s link, comparing
/// the mode-switching protocols against every baseline.
pub fn fig08(quick: bool) -> ExperimentResult {
    let scale = if quick { 0.2 } else { 1.0 };
    let mut result = ExperimentResult::new(
        "fig08",
        "Scripted elastic/inelastic phases (96 Mbit/s): throughput, delay and fair share per scheme",
        quick,
    );
    let schedule = PhaseSchedule::fig8();
    let duration = schedule.end_s * scale;
    let schemes: Vec<SchemeSpec> = if quick {
        vec![
            SchemeSpec::nimbus(),
            SchemeSpec::cubic(),
            SchemeSpec::copa(),
        ]
    } else {
        let mut s = SchemeSpec::headline_set();
        s.push(SchemeSpec::nimbus_copa());
        s.push(SchemeSpec::compound());
        s
    };
    for scheme in schemes {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 8,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let mut cross: Vec<(FlowConfig, Box<dyn FlowEndpoint>)> = Vec::new();
        // Poisson aggregate following the scripted schedule (scaled in time).
        let scripted: Vec<(Time, f64)> = schedule
            .poisson_schedule()
            .into_iter()
            .map(|(t, r)| (Time::from_secs_f64(t.as_secs_f64() * scale), r))
            .collect();
        cross.push((
            FlowConfig::cross("poisson-phases", Time::from_millis(50), false),
            Box::new(Sender::new(
                SenderConfig::labelled("poisson-phases"),
                CcKind::Unlimited.build(&PathInfo::new(1500)),
                Box::new(nimbus_transport::ScriptedSource::scheduled(scripted)),
            )),
        ));
        // Long-running Cubic flows per the schedule.
        for (i, (start, end)) in schedule.cubic_flow_intervals().into_iter().enumerate() {
            cross.push(elastic_cross_flow(
                &format!("cubic-{i}"),
                CcKind::Cubic,
                0.05,
                start * scale,
                Some(end * scale),
            ));
        }
        let out = run_scheme_vs_cross(&spec, scheme, None, cross, 2.0);
        let m = &out.flows[0];
        result.row(
            &format!("{}_mean_throughput_mbps", m.label),
            m.mean_throughput_mbps,
        );
        result.row(
            &format!("{}_mean_queue_delay_ms", m.label),
            m.mean_queue_delay_ms,
        );
        // Fair-share tracking error: mean |throughput − fair share| over time.
        let err: Vec<f64> = m
            .throughput_series
            .iter()
            .map(|(t, v)| (v - schedule.fair_share_mbps(t / scale, 96e6, 1)).abs())
            .collect();
        result.row(
            &format!("{}_fair_share_error_mbps", m.label),
            nimbus_dsp::mean(&err),
        );
        result.add_series(
            &format!("{}_throughput_mbps", m.label),
            m.throughput_series.clone(),
        );
        result.add_series(
            &format!("{}_queue_delay_ms", m.label),
            m.queue_delay_series.clone(),
        );
        if scheme.is_nimbus() {
            result.row(
                &format!("{}_delay_mode_fraction", m.label),
                m.delay_mode_fraction,
            );
        }
    }
    // The reference fair-share line.
    let fair: Vec<(f64, f64)> = (0..(duration as usize))
        .map(|t| {
            (
                t as f64,
                schedule.fair_share_mbps(t as f64 / scale, 96e6, 1),
            )
        })
        .collect();
    result.add_series("fair_share_mbps", fair);
    result
}

/// Build the CAIDA-like WAN cross traffic for a given load and duration.
fn wan_cross(
    link_rate_bps: f64,
    load: f64,
    duration_s: f64,
    seed: u64,
) -> Vec<(FlowConfig, Box<dyn FlowEndpoint>)> {
    let cfg = WanWorkloadConfig {
        seed,
        ..WanWorkloadConfig::default_for_link(link_rate_bps, load, duration_s)
    };
    WanWorkload::generate(cfg).instantiate()
}

/// Fig. 9: throughput and RTT CDFs against WAN (CAIDA-like) cross traffic at 50% load.
pub fn fig09(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 120.0 };
    let mut result = ExperimentResult::new(
        "fig09",
        "WAN cross traffic at 50% load: throughput and RTT distributions per scheme",
        quick,
    );
    let schemes = if quick {
        vec![
            SchemeSpec::nimbus(),
            SchemeSpec::cubic(),
            SchemeSpec::vegas(),
        ]
    } else {
        SchemeSpec::headline_set()
    };
    for scheme in schemes {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 9,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let cross = wan_cross(spec.link_rate_bps, 0.5, duration, 90);
        let out = run_scheme_vs_cross(&spec, scheme, None, cross, 5.0);
        let m = &out.flows[0];
        let rtt_cdf = Cdf::from_samples(&m.rtt_samples_ms);
        let tput_cdf = Cdf::from_samples(&m.throughput_samples_mbps);
        result.row(&format!("{}_median_rtt_ms", m.label), rtt_cdf.median());
        result.row(
            &format!("{}_mean_throughput_mbps", m.label),
            m.mean_throughput_mbps,
        );
        result.add_series(&format!("{}_rtt_cdf", m.label), rtt_cdf.curve(50));
        result.add_series(&format!("{}_throughput_cdf", m.label), tput_cdf.curve(50));
    }
    result
}

/// Fig. 10: Copa's throughput drops against elastic cross flows; Nimbus's does not.
pub fn fig10(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 90.0 };
    let mut result = ExperimentResult::new(
        "fig10",
        "Copa vs Nimbus throughput in the presence of large elastic cross flows",
        quick,
    );
    for scheme in [SchemeSpec::nimbus(), SchemeSpec::copa()] {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 10,
            ..ScenarioSpec::default_96mbps(duration)
        };
        // One long-lived elastic flow arrives mid-experiment.
        let mut cross = wan_cross(spec.link_rate_bps, 0.3, duration, 100);
        cross.push(elastic_cross_flow(
            "elephant",
            CcKind::Cubic,
            0.05,
            duration * 0.3,
            None,
        ));
        let out = run_scheme_vs_cross(&spec, scheme, None, cross, 5.0);
        let m = &out.flows[0];
        // Throughput during the elephant period.
        let during: Vec<f64> = m
            .throughput_series
            .iter()
            .filter(|(t, _)| *t > duration * 0.4)
            .map(|(_, v)| *v)
            .collect();
        result.row(
            &format!("{}_throughput_vs_elephant_mbps", m.label),
            nimbus_dsp::mean(&during),
        );
        result.add_series(
            &format!("{}_throughput_mbps", m.label),
            m.throughput_series.clone(),
        );
    }
    result
}

/// Fig. 11: DASH video cross traffic (4K elastic-ish, 1080p inelastic).
pub fn fig11(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 120.0 };
    let mut result = ExperimentResult::new(
        "fig11",
        "Video cross traffic: throughput vs mean delay per scheme (4K and 1080p)",
        quick,
    );
    let schemes = if quick {
        vec![
            SchemeSpec::nimbus(),
            SchemeSpec::cubic(),
            SchemeSpec::vegas(),
        ]
    } else {
        SchemeSpec::headline_set()
    };
    for quality in [VideoQuality::Uhd4k, VideoQuality::Fhd1080p] {
        for scheme in &schemes {
            let spec = ScenarioSpec {
                link_rate_bps: 48e6,
                duration_s: duration,
                seed: 11,
                ..ScenarioSpec::fig1_48mbps(duration)
            };
            let video: (FlowConfig, Box<dyn FlowEndpoint>) = (
                FlowConfig::cross(
                    &format!("video-{}", quality.label()),
                    Time::from_millis(50),
                    quality == VideoQuality::Uhd4k,
                ),
                Box::new(Sender::new(
                    SenderConfig::labelled("video"),
                    CcKind::Cubic.build(&PathInfo::new(1500)),
                    Box::new(VideoSource::new(quality, duration)),
                )),
            );
            let out = run_scheme_vs_cross(&spec, *scheme, None, vec![video], 5.0);
            let m = &out.flows[0];
            let key = format!("{}_{}", quality.label(), m.label);
            result.row(&format!("{key}_throughput_mbps"), m.mean_throughput_mbps);
            result.row(&format!("{key}_mean_rtt_ms"), m.mean_rtt_ms);
        }
    }
    result
}

/// Fig. 12: the elasticity metric tracks the true elastic fraction of the WAN
/// workload; report the resulting classification accuracy.
pub fn fig12(quick: bool) -> ExperimentResult {
    let duration = if quick { 60.0 } else { 200.0 };
    let mut result = ExperimentResult::new(
        "fig12",
        "Elasticity metric vs ground-truth elastic fraction (WAN workload); detector accuracy",
        quick,
    );
    let spec = ScenarioSpec {
        duration_s: duration,
        seed: 12,
        ..ScenarioSpec::default_96mbps(duration)
    };
    let cross = wan_cross(spec.link_rate_bps, 0.5, duration, 120);
    let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 5.0);
    let m = &out.flows[0];
    // Ground truth per interval from the recorder; detector verdicts from the
    // controller.  A period is "elastic" if more than 30% of cross bytes came
    // from flows large enough to be ACK-clocked.
    let truth: Vec<(f64, f64)> = out
        .recorder
        .elastic_fraction
        .t
        .iter()
        .zip(out.recorder.elastic_fraction.v.iter())
        .map(|(t, v)| (*t, *v))
        .collect();
    let mut acc = nimbus_dsp::stats::ClassificationAccuracy::default();
    for (t, eta) in &m.eta_series {
        if *t < 6.0 {
            continue;
        }
        // Ground truth averaged over the preceding detector window.
        let window: Vec<f64> = truth
            .iter()
            .filter(|(tt, _)| *tt <= *t && *tt >= *t - 5.0)
            .map(|(_, v)| *v)
            .collect();
        let truth_elastic = nimbus_dsp::mean(&window) > 0.3;
        acc.record(truth_elastic, *eta >= 2.0);
    }
    result.row("detector_accuracy", acc.accuracy());
    result.row("elastic_recall", acc.elastic_accuracy());
    result.row("inelastic_recall", acc.inelastic_accuracy());
    result.row("decisions", acc.total() as f64);
    result.add_series("elastic_fraction_truth", truth);
    result.add_series("eta", m.eta_series.clone());
    result
}

/// Fig. 13: throughput/RTT CDFs at 50% and 90% offered load, for two pulse sizes.
pub fn fig13(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 120.0 };
    let mut result = ExperimentResult::new(
        "fig13",
        "Effect of offered load (50%/90%) and pulse size (0.125µ/0.25µ)",
        quick,
    );
    for &load in &[0.5, 0.9] {
        for &pulse in &[0.125, 0.25] {
            let spec = ScenarioSpec {
                duration_s: duration,
                seed: 13,
                ..ScenarioSpec::default_96mbps(duration)
            };
            let cross = wan_cross(spec.link_rate_bps, load, duration, 130);
            let mut net = spec.build_network();
            let cfg = SchemeSpec::nimbus()
                .nimbus_config(spec.link_rate_bps, spec.seed)
                .unwrap()
                .with_pulse_amplitude(pulse);
            let h = net.add_flow(
                FlowConfig::primary("nimbus", Time::from_secs_f64(spec.prop_rtt_s)),
                Box::new(nimbus_sim::nimbus_flow(cfg, "nimbus")),
            );
            for (fc, ep) in cross {
                net.add_flow(fc, ep);
            }
            let out = run_and_collect(net, &[(h, SchemeSpec::nimbus())], 5.0);
            let m = &out.flows[0];
            let key = format!("load{}_pulse{}", (load * 100.0) as u32, pulse);
            result.row(&format!("{key}_throughput_mbps"), m.mean_throughput_mbps);
            result.row(&format!("{key}_mean_rtt_ms"), m.mean_rtt_ms);
            result.row(&format!("{key}_delay_mode_fraction"), m.delay_mode_fraction);
        }
        // Cubic and Vegas references per load.
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 13,
            ..ScenarioSpec::default_96mbps(duration)
        };
        for scheme in [SchemeSpec::cubic(), SchemeSpec::vegas()] {
            let cross = wan_cross(spec.link_rate_bps, load, duration, 130);
            let out = run_scheme_vs_cross(&spec, scheme, None, cross, 5.0);
            let m = &out.flows[0];
            result.row(
                &format!("load{}_{}_throughput_mbps", (load * 100.0) as u32, m.label),
                m.mean_throughput_mbps,
            );
            result.row(
                &format!("load{}_{}_mean_rtt_ms", (load * 100.0) as u32, m.label),
                m.mean_rtt_ms,
            );
        }
    }
    result
}

/// Fig. 21 (Appendix B): p95 flow completion times of the WAN cross-flows by
/// size bucket, under each scheme.
pub fn fig21(quick: bool) -> ExperimentResult {
    let duration = if quick { 40.0 } else { 120.0 };
    let mut result = ExperimentResult::new(
        "fig21",
        "p95 FCT of cross-flows by flow size, per scheme (WAN workload)",
        quick,
    );
    let schemes = if quick {
        vec![SchemeSpec::nimbus(), SchemeSpec::cubic()]
    } else {
        SchemeSpec::headline_set()
    };
    let buckets: [(u64, u64, &str); 4] = [
        (0, 15_000, "15KB"),
        (15_000, 150_000, "150KB"),
        (150_000, 1_500_000, "1.5MB"),
        (1_500_000, u64::MAX, ">1.5MB"),
    ];
    for scheme in schemes {
        let spec = ScenarioSpec {
            duration_s: duration,
            seed: 21,
            ..ScenarioSpec::default_96mbps(duration)
        };
        let cross = wan_cross(spec.link_rate_bps, 0.5, duration, 210);
        let out = run_scheme_vs_cross(&spec, scheme, None, cross, 5.0);
        let fcts = out.recorder.completed_fcts();
        for (lo, hi, label) in buckets {
            let bucket: Vec<f64> = fcts
                .iter()
                .filter(|(sz, _)| *sz > lo && *sz <= hi)
                .map(|(_, fct)| *fct)
                .collect();
            if !bucket.is_empty() {
                result.row(
                    &format!("{}_p95_fct_{label}_s", scheme.label()),
                    nimbus_dsp::percentile(&bucket, 95.0),
                );
            }
        }
        result.row(
            &format!("{}_completed_cross_flows", scheme.label()),
            fcts.len() as f64,
        );
    }
    result
}
