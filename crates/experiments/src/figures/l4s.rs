//! ECN / L4S experiments: the marking AQM profiles, the DCTCP reaction,
//! and elasticity detection when congestion arrives as CE marks instead of
//! drops or delay.
//!
//! Three questions the ECN scenario matrix ([`crate::testkit::ecn_cells`])
//! pins as invariants are quantified here as full experiments:
//!
//! * [`l4s_pulse`] — does the Nimbus pulse survive a shallow-marking
//!   queue?  (Measured: yes — delay mode ignores CE, so the ±25% µ pulse
//!   and the FFT detector behind it are unchanged under every marking
//!   profile; what changes is only the congestion signal the *competitor*
//!   sees.)
//! * [`l4s_mark_validation`] — can ẑ cross-validate against the mark rate
//!   faster than one FFT window?  (Measured: yes — a DCTCP competitor on a
//!   classic-ECN queue starves the probe flow below the FFT's sample rate,
//!   but the windowed mark fraction plus the starved flow's own ẑ ≈ µ
//!   reading flip the controller within seconds of warm-up, where the pure
//!   FFT path never fires at all.)
//! * [`l4s_coexistence`] — does `nimbus(competitive=dctcp)` coexist with
//!   DCTCP on a classic-ECN queue?  (Measured: yes, at roughly half the
//!   link; the default loss-dialect competitive mode on a mark-per-window
//!   L4S queue does not.)

use crate::output::ExperimentResult;
use crate::runner::{run_scheme_vs_cross, EcnSpec, ScenarioSpec, SingleFlowMetrics};
use crate::scheme::SchemeSpec;
use nimbus_core::TcpScheme;

/// Time of the first switch into competitive mode, or `-1.0` if the flow
/// held delay mode for the whole run.
fn first_flip_s(m: &SingleFlowMetrics) -> f64 {
    m.mode_log
        .iter()
        .find(|(_, mode)| mode == "competitive")
        .map(|&(t, _)| t)
        .unwrap_or(-1.0)
}

/// The 48 Mbit/s single-bottleneck scenario every ECN experiment runs on.
fn ecn_scenario(duration_s: f64, seed: u64, ecn: EcnSpec) -> ScenarioSpec {
    ScenarioSpec {
        link_rate_bps: 48e6,
        duration_s,
        seed,
        ecn,
        ..ScenarioSpec::default_96mbps(duration_s)
    }
}

/// Pulse survival across marking profiles: the same solo Nimbus flow on a
/// drop-tail, a classic-marking, and an L4S step queue.  Delay mode treats
/// CE as telemetry, not congestion, so the operating point (throughput,
/// ~12 ms queue from the delay target, delay-mode fraction 1.0) must be
/// identical across all three — the pulse keeps probing and the detector
/// keeps returning verdicts even when every packet comes back marked.
pub fn l4s_pulse(quick: bool) -> ExperimentResult {
    let duration = if quick { 12.0 } else { 30.0 };
    let mut result = ExperimentResult::new(
        "l4s_pulse",
        "Solo Nimbus pulse survival on drop-tail vs classic-ECN vs L4S step queues",
        quick,
    );
    for ecn in [EcnSpec::Off, EcnSpec::Classic, EcnSpec::l4s()] {
        let spec = ecn_scenario(duration, 62, ecn);
        let out = run_scheme_vs_cross(
            &spec,
            SchemeSpec::nimbus(),
            None,
            Vec::new(),
            duration * 0.25,
        );
        let m = &out.flows[0];
        let tag = if ecn.is_enabled() {
            ecn.label().trim_start_matches('-').to_string()
        } else {
            "off".to_string()
        };
        result.row(&format!("{tag}_throughput_mbps"), m.mean_throughput_mbps);
        result.row(&format!("{tag}_queue_delay_ms"), m.mean_queue_delay_ms);
        result.row(&format!("{tag}_delay_mode_fraction"), m.delay_mode_fraction);
        result.row(
            &format!("{tag}_detector_verdicts"),
            m.eta_series.len() as f64,
        );
        result.row(
            &format!("{tag}_marked_packets"),
            out.recorder.hop_marked_packets.iter().sum::<u64>() as f64,
        );
        result.row(
            &format!("{tag}_dropped_packets"),
            out.recorder.hop_dropped_packets.iter().sum::<u64>() as f64,
        );
        if ecn == EcnSpec::l4s() {
            result.add_series("l4s_throughput_series", m.throughput_series.clone());
            result.add_series("l4s_queue_delay_series", m.queue_delay_series.clone());
        }
    }
    result
}

/// Mark-rate cross-validation speed: `nimbus(competitive=dctcp)` against a
/// DCTCP competitor that parks a classic-ECN queue at the marking
/// threshold.  The probe flow starves below the FFT detector's sample
/// rate (the 500-sample window never fills, so the pure-FFT path returns
/// no verdicts at all), and the run contrasts the same scenario with ECN
/// off: with marks, the windowed mark fraction cross-validates ẑ and the
/// flip lands within a couple of seconds of the warm-up gate — faster
/// than a full FFT window of post-arrival data, which is the claim.
pub fn l4s_mark_validation(quick: bool) -> ExperimentResult {
    let duration = if quick { 25.0 } else { 45.0 };
    let mut result = ExperimentResult::new(
        "l4s_mark_validation",
        "Mark-rate cross-validated mode flip vs FFT starvation on a classic-ECN queue",
        quick,
    );
    let fft_window_s = nimbus_core::NimbusConfig::default_for_link(48e6)
        .elasticity
        .fft_duration_s;
    result.row("fft_window_s", fft_window_s);
    for (tag, ecn) in [("off", EcnSpec::Off), ("ecn", EcnSpec::Classic)] {
        let spec = ecn_scenario(duration, 2, ecn);
        let cross = super::scheme_cross_flow(
            "dctcp-cross",
            &SchemeSpec::dctcp(),
            spec.nominal_mu_bps(),
            spec.seed.wrapping_mul(67).wrapping_add(11),
            0.05,
            0.0,
            None,
        );
        let out = run_scheme_vs_cross(
            &spec,
            SchemeSpec::nimbus().with_competitive(TcpScheme::Dctcp),
            None,
            vec![cross],
            duration / 3.0,
        );
        let m = &out.flows[0];
        result.row(&format!("{tag}_first_flip_s"), first_flip_s(m));
        result.row(&format!("{tag}_throughput_mbps"), m.mean_throughput_mbps);
        result.row(&format!("{tag}_queue_delay_ms"), m.mean_queue_delay_ms);
        result.row(&format!("{tag}_delay_mode_fraction"), m.delay_mode_fraction);
        result.row(
            &format!("{tag}_detector_verdicts"),
            m.eta_series.len() as f64,
        );
        result.add_series(
            &format!("{tag}_throughput_series"),
            m.throughput_series.clone(),
        );
    }
    result
}

/// The coexistence matrix behind the Prague question: who shares fairly
/// with whom on a marking queue.  Three pairings, one row group each:
/// `nimbus(competitive=dctcp)` vs DCTCP on classic ECN (the tentpole —
/// fair share), plain DCTCP vs an ECT Cubic on classic ECN (the scheme
/// handles loss-dialect competitors), and default Nimbus vs DCTCP on an
/// L4S step queue (delay mode's ~12 ms target sits far above the 1 ms
/// threshold, so the competitor sees CE on every packet and concedes the
/// link — the documented compliance gap, kept visible here).
pub fn l4s_coexistence(quick: bool) -> ExperimentResult {
    let duration = if quick { 20.0 } else { 45.0 };
    let mut result = ExperimentResult::new(
        "l4s_coexistence",
        "ECN coexistence matrix: nimbus(competitive=dctcp), DCTCP and ECT Cubic on marking queues",
        quick,
    );
    let pairs: [(&str, SchemeSpec, SchemeSpec, EcnSpec); 3] = [
        (
            "nimbus_dctcp_vs_dctcp_classic",
            SchemeSpec::nimbus().with_competitive(TcpScheme::Dctcp),
            SchemeSpec::dctcp(),
            EcnSpec::Classic,
        ),
        (
            "dctcp_vs_cubic_classic",
            SchemeSpec::dctcp(),
            SchemeSpec::cubic(),
            EcnSpec::Classic,
        ),
        (
            "nimbus_vs_dctcp_l4s",
            SchemeSpec::nimbus(),
            SchemeSpec::dctcp(),
            EcnSpec::l4s(),
        ),
    ];
    for (tag, scheme, competitor, ecn) in pairs {
        let spec = ecn_scenario(duration, 2, ecn);
        let cross = super::scheme_cross_flow(
            &format!("{}-cross", competitor.label()),
            &competitor,
            spec.nominal_mu_bps(),
            spec.seed.wrapping_mul(67).wrapping_add(11),
            0.05,
            0.0,
            None,
        );
        let out = run_scheme_vs_cross(&spec, scheme, None, vec![cross], duration / 3.0);
        let m = &out.flows[0];
        result.row(&format!("{tag}_throughput_mbps"), m.mean_throughput_mbps);
        result.row(&format!("{tag}_queue_delay_ms"), m.mean_queue_delay_ms);
        result.row(&format!("{tag}_delay_mode_fraction"), m.delay_mode_fraction);
        result.row(&format!("{tag}_first_flip_s"), first_flip_s(m));
        result.row(
            &format!("{tag}_marked_packets"),
            out.recorder.hop_marked_packets.iter().sum::<u64>() as f64,
        );
    }
    result
}
